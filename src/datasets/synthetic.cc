#include "datasets/synthetic.h"

#include <array>
#include <map>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace colscope::datasets {

namespace {

/// One shared attribute concept: alias spellings (index 0 = canonical),
/// vendor type, and which entity table it belongs to.
struct ConceptSpec {
  std::array<const char*, 3> aliases;
  const char* type;
  int entity;  // Index into kEntities.
};

/// Entity tables with per-schema alias spellings.
struct EntitySpec {
  std::array<const char*, 3> aliases;
};

constexpr EntitySpec kEntities[] = {
    {{"customers", "clients", "partners"}},
    {{"orders", "purchases", "salesorders"}},
    {{"products", "items", "articles"}},
    {{"shipments", "deliveries", "dispatches"}},
};

constexpr ConceptSpec kConcepts[] = {
    {{"customer_id", "client_id", "buyer_id"}, "INT", 0},
    {{"customer_name", "client_name", "buyer_name"}, "VARCHAR", 0},
    {{"email", "mail", "email_address"}, "VARCHAR", 0},
    {{"phone", "telephone", "mobile"}, "VARCHAR", 0},
    {{"street", "address", "addr"}, "VARCHAR", 0},
    {{"city", "town", "locality"}, "VARCHAR", 0},
    {{"country", "nation", "country_name"}, "VARCHAR", 0},
    {{"postal_code", "zip", "postcode"}, "VARCHAR", 0},
    {{"order_id", "purchase_id", "salesorder_id"}, "INT", 1},
    {{"order_date", "purchase_date", "order_datetime"}, "DATE", 1},
    {{"order_status", "purchase_status", "status"}, "VARCHAR", 1},
    {{"order_amount", "purchase_total", "gross_amount"}, "DECIMAL", 1},
    {{"product_id", "item_id", "article_id"}, "INT", 2},
    {{"product_name", "item_name", "article_name"}, "VARCHAR", 2},
    {{"price", "cost", "unit_price"}, "DECIMAL", 2},
    {{"quantity", "qty", "item_count"}, "INT", 2},
    {{"product_description", "item_description", "article_text"}, "TEXT", 2},
    {{"shipment_id", "delivery_id", "dispatch_id"}, "INT", 3},
    {{"delivery_address", "shipment_address", "dispatch_street"}, "VARCHAR",
     3},
    {{"delivery_date", "shipment_date", "dispatch_date"}, "DATE", 3},
};

/// Disjoint out-of-vocabulary word pools for unlinkable attributes; each
/// schema draws from its own domain so private elements do not
/// accidentally align across schemas.
constexpr const char* kPrivatePools[][8] = {
    {"glacier", "moraine", "crevasse", "serac", "firn", "nunatak", "cirque",
     "arete"},
    {"quasar", "pulsar", "nebula", "parallax", "redshift", "magnetar",
     "blazar", "corona"},
    {"enzyme", "ribosome", "codon", "plasmid", "chromatin", "ligase",
     "operon", "intron"},
    {"gearbox", "camshaft", "flywheel", "manifold", "piston", "crankpin",
     "tappet", "solenoid"},
    {"sonata", "cadenza", "arpeggio", "ostinato", "tremolo", "glissando",
     "rubato", "fermata"},
    {"basalt", "gneiss", "schist", "rhyolite", "gabbro", "pumice",
     "obsidian", "breccia"},
};
constexpr size_t kNumPrivatePools = std::size(kPrivatePools);

}  // namespace

size_t SyntheticVocabularySize() { return std::size(kConcepts); }

MatchingScenario BuildSyntheticScenario(const SyntheticOptions& options) {
  COLSCOPE_CHECK(options.num_schemas >= 2);
  const size_t concepts =
      std::min(options.shared_concepts, SyntheticVocabularySize());
  Rng rng(options.seed);

  // For every schema decide, per concept: present? which alias?
  // alias_of[s][c] = -1 (absent) or alias index in [0, 3).
  std::vector<std::vector<int>> alias_of(
      options.num_schemas, std::vector<int>(concepts, -1));
  for (size_t s = 0; s < options.num_schemas; ++s) {
    for (size_t c = 0; c < concepts; ++c) {
      if (rng.NextDouble() < options.dropout_probability) continue;
      alias_of[s][c] = (rng.NextDouble() < options.alias_probability)
                           ? 1 + static_cast<int>(rng.NextBounded(2))
                           : 0;
    }
  }
  // Guarantee every concept appears in at least two schemas, otherwise
  // dropout could silently remove annotations.
  for (size_t c = 0; c < concepts; ++c) {
    size_t present = 0;
    for (size_t s = 0; s < options.num_schemas; ++s) {
      present += alias_of[s][c] >= 0;
    }
    for (size_t s = 0; present < 2 && s < options.num_schemas; ++s) {
      if (alias_of[s][c] < 0) {
        alias_of[s][c] = 0;
        ++present;
      }
    }
  }
  // Entity table aliases per schema.
  std::vector<std::vector<int>> table_alias(
      options.num_schemas, std::vector<int>(std::size(kEntities), 0));
  for (size_t s = 0; s < options.num_schemas; ++s) {
    for (size_t e = 0; e < std::size(kEntities); ++e) {
      table_alias[s][e] = (rng.NextDouble() < options.alias_probability)
                              ? 1 + static_cast<int>(rng.NextBounded(2))
                              : 0;
    }
  }

  MatchingScenario scenario;
  scenario.name = StrFormat("Synthetic(k=%zu,c=%zu,p=%zu)",
                            options.num_schemas, concepts,
                            options.private_per_schema);

  std::vector<schema::Schema> schemas;
  for (size_t s = 0; s < options.num_schemas; ++s) {
    schema::Schema out(StrFormat("SYN%zu", s));
    // Entity tables with their present shared concepts.
    std::vector<schema::Table> tables(std::size(kEntities));
    for (size_t e = 0; e < std::size(kEntities); ++e) {
      tables[e].name = kEntities[e].aliases[table_alias[s][e]];
    }
    for (size_t c = 0; c < concepts; ++c) {
      if (alias_of[s][c] < 0) continue;
      const ConceptSpec& spec = kConcepts[c];
      schema::Attribute attr;
      attr.name = spec.aliases[alias_of[s][c]];
      attr.table_name = tables[spec.entity].name;
      attr.raw_type = spec.type;
      attr.type = schema::ParseDataType(spec.type);
      tables[spec.entity].attributes.push_back(std::move(attr));
    }
    // Private (unlinkable) attributes: half appended to entity tables,
    // half in a private side table.
    const char* const* pool = kPrivatePools[s % kNumPrivatePools];
    schema::Table side;
    side.name = StrFormat("%s_ledger", pool[0]);
    for (size_t p = 0; p < options.private_per_schema; ++p) {
      schema::Attribute attr;
      attr.name = StrFormat("%s_%s", pool[rng.NextBounded(8)],
                            pool[rng.NextBounded(8)]);
      attr.raw_type = (p % 2 == 0) ? "VARCHAR" : "DECIMAL";
      attr.type = schema::ParseDataType(attr.raw_type);
      schema::Table& target =
          (p % 2 == 0) ? tables[p % std::size(kEntities)] : side;
      attr.table_name = target.name;
      // Avoid accidental duplicate names inside one table.
      attr.name += StrFormat("_%zu", p);
      target.attributes.push_back(std::move(attr));
    }
    for (auto& table : tables) {
      if (!table.attributes.empty()) {
        COLSCOPE_CHECK(out.AddTable(std::move(table)).ok());
      }
    }
    if (!side.attributes.empty()) {
      COLSCOPE_CHECK(out.AddTable(std::move(side)).ok());
    }
    schemas.push_back(std::move(out));
  }
  scenario.set = schema::SchemaSet(std::move(schemas));

  // Ground truth: full pairwise closure of co-occurring shared concepts
  // (II when both schemas use the same alias, IS otherwise), plus entity
  // table pairs whenever the two tables share >= 1 linked concept.
  for (size_t a = 0; a < options.num_schemas; ++a) {
    for (size_t b = a + 1; b < options.num_schemas; ++b) {
      std::map<int, bool> entity_linked;  // entity -> any attr pair?
      for (size_t c = 0; c < concepts; ++c) {
        if (alias_of[a][c] < 0 || alias_of[b][c] < 0) continue;
        const ConceptSpec& spec = kConcepts[c];
        const schema::Schema& sa = scenario.set.schema(static_cast<int>(a));
        const schema::Schema& sb = scenario.set.schema(static_cast<int>(b));
        auto ra = scenario.set.Resolve(
            sa.name(),
            std::string(kEntities[spec.entity].aliases[table_alias[a][spec.entity]]) +
                "." + spec.aliases[alias_of[a][c]]);
        auto rb = scenario.set.Resolve(
            sb.name(),
            std::string(kEntities[spec.entity].aliases[table_alias[b][spec.entity]]) +
                "." + spec.aliases[alias_of[b][c]]);
        COLSCOPE_CHECK(ra.ok() && rb.ok());
        const LinkType type = (alias_of[a][c] == alias_of[b][c])
                                  ? LinkType::kInterIdentical
                                  : LinkType::kInterSubTyped;
        COLSCOPE_CHECK(scenario.truth.Add(type, *ra, *rb).ok());
        entity_linked[spec.entity] = true;
      }
      for (const auto& [entity, linked] : entity_linked) {
        if (!linked) continue;
        auto ta = scenario.set.Resolve(
            scenario.set.schema(static_cast<int>(a)).name(),
            kEntities[entity].aliases[table_alias[a][entity]]);
        auto tb = scenario.set.Resolve(
            scenario.set.schema(static_cast<int>(b)).name(),
            kEntities[entity].aliases[table_alias[b][entity]]);
        COLSCOPE_CHECK(ta.ok() && tb.ok());
        const LinkType type =
            (table_alias[a][entity] == table_alias[b][entity])
                ? LinkType::kInterIdentical
                : LinkType::kInterSubTyped;
        COLSCOPE_CHECK(scenario.truth.Add(type, *ta, *tb).ok());
      }
    }
  }
  return scenario;
}

}  // namespace colscope::datasets
