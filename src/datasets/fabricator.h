#ifndef COLSCOPE_DATASETS_FABRICATOR_H_
#define COLSCOPE_DATASETS_FABRICATOR_H_

#include <cstdint>

#include "datasets/linkage.h"
#include "schema/schema.h"

namespace colscope::datasets {

/// Valentine-style dataset-pair fabrication (Koutras et al., ICDE 2021 —
/// the matching-evaluation framework the paper cites). From one source
/// table, fabricates a pair of derived tables whose relationship falls
/// into one of Valentine's four categories, with exact ground truth:
///
///   kUnionable            — both sides keep (noisily renamed) copies of
///                           ALL attributes: horizontal split.
///   kViewUnionable        — the sides keep overlapping but different
///                           attribute subsets: vertical + horizontal.
///   kJoinable             — the sides share a key and a fraction of
///                           attributes: vertical split with key kept.
///   kSemanticallyJoinable — like kJoinable, but every shared attribute
///                           is renamed with synonyms / noise, so only
///                           semantics (not strings) connect them.
enum class FabricationKind {
  kUnionable,
  kViewUnionable,
  kJoinable,
  kSemanticallyJoinable,
};

const char* FabricationKindToString(FabricationKind kind);

struct FabricatorOptions {
  FabricationKind kind = FabricationKind::kUnionable;
  /// Probability a kept attribute is renamed on side B.
  double rename_probability = 0.5;
  /// Fraction of attributes each side keeps for the *-unionable splits.
  double keep_fraction = 0.7;
  uint64_t seed = 0xfab;
};

/// Fabricates a matching scenario (two schemas + exact ground truth)
/// from `source` (its first table is used). The source's instance
/// samples, types, and constraints are carried into both sides.
MatchingScenario FabricatePair(const schema::Table& source,
                               const FabricatorOptions& options);

}  // namespace colscope::datasets

#endif  // COLSCOPE_DATASETS_FABRICATOR_H_
