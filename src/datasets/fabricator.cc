#include "datasets/fabricator.h"

#include <array>
#include <map>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace colscope::datasets {

namespace {

/// Synonym swaps applied during "noisy" renaming — Valentine's
/// approximate renaming, restricted to meaning-preserving rewrites.
constexpr std::array<std::pair<const char*, const char*>, 14> kSynonyms = {{
    {"customer", "client"},
    {"customers", "clients"},
    {"name", "title"},
    {"city", "town"},
    {"street", "road"},
    {"phone", "telephone"},
    {"email", "mail"},
    {"id", "nr"},
    {"number", "num"},
    {"date", "day"},
    {"price", "cost"},
    {"amount", "total"},
    {"status", "state"},
    {"country", "nation"},
}};

/// Drops interior vowels: "number" -> "nmbr" (Valentine's abbreviation
/// noise).
std::string Abbreviate(const std::string& token) {
  if (token.size() < 4) return token;
  std::string out;
  out.push_back(token.front());
  for (size_t i = 1; i + 1 < token.size(); ++i) {
    const char c = token[i];
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') continue;
    out.push_back(c);
  }
  out.push_back(token.back());
  return out;
}

/// Noisy rename of a snake_case-ish identifier: synonym-swap each token
/// where the table has one, abbreviate otherwise (coin flip per token).
std::string NoisyRename(const std::string& name, Rng& rng) {
  std::string out;
  std::string token;
  auto flush = [&]() {
    if (token.empty()) return;
    const std::string lower = ToLowerAscii(token);
    std::string replacement = token;
    bool swapped = false;
    for (const auto& [from, to] : kSynonyms) {
      if (lower == from) {
        replacement = to;
        swapped = true;
        break;
      }
    }
    if (!swapped && rng.NextDouble() < 0.5) {
      replacement = Abbreviate(lower);
    }
    out += replacement;
    token.clear();
  };
  for (char c : name) {
    if (c == '_') {
      flush();
      out.push_back('_');
    } else {
      token.push_back(c);
    }
  }
  flush();
  return out;
}

/// Index of a key column: the PRIMARY KEY if any, else column 0.
size_t KeyColumn(const schema::Table& source) {
  for (size_t i = 0; i < source.attributes.size(); ++i) {
    if (source.attributes[i].constraint == schema::Constraint::kPrimaryKey) {
      return i;
    }
  }
  return 0;
}

}  // namespace

const char* FabricationKindToString(FabricationKind kind) {
  switch (kind) {
    case FabricationKind::kUnionable:
      return "unionable";
    case FabricationKind::kViewUnionable:
      return "view-unionable";
    case FabricationKind::kJoinable:
      return "joinable";
    case FabricationKind::kSemanticallyJoinable:
      return "semantically-joinable";
  }
  return "unknown";
}

MatchingScenario FabricatePair(const schema::Table& source,
                               const FabricatorOptions& options) {
  COLSCOPE_CHECK_MSG(!source.attributes.empty(),
                     "source table needs attributes");
  Rng rng(options.seed);
  const size_t n = source.attributes.size();
  const size_t key = KeyColumn(source);

  // Decide which side keeps which source column.
  std::vector<bool> keep_a(n, true);
  std::vector<bool> keep_b(n, true);
  switch (options.kind) {
    case FabricationKind::kUnionable:
      break;  // Both keep everything.
    case FabricationKind::kViewUnionable: {
      for (size_t i = 0; i < n; ++i) {
        keep_a[i] = rng.NextDouble() < options.keep_fraction;
        keep_b[i] = rng.NextDouble() < options.keep_fraction;
      }
      // Guarantee a non-empty overlap (the key column).
      keep_a[key] = true;
      keep_b[key] = true;
      break;
    }
    case FabricationKind::kJoinable:
    case FabricationKind::kSemanticallyJoinable: {
      // Vertical split: A gets the first half, B the second; both keep
      // the key.
      for (size_t i = 0; i < n; ++i) {
        const bool first_half = i < (n + 1) / 2;
        keep_a[i] = first_half;
        keep_b[i] = !first_half;
      }
      keep_a[key] = true;
      keep_b[key] = true;
      break;
    }
  }

  // Rename policy on side B: always rename shared attributes for
  // kSemanticallyJoinable; probabilistic noisy rename otherwise.
  const bool always_rename =
      options.kind == FabricationKind::kSemanticallyJoinable;

  schema::Schema schema_a("A");
  schema::Schema schema_b("B");
  schema::Table table_a;
  table_a.name = source.name;
  schema::Table table_b;
  table_b.name = always_rename ? NoisyRename(source.name, rng)
                               : source.name;
  // Source column -> (position in A, position in B, renamed?); -1 when
  // a side dropped the column.
  struct Placement {
    int pos_a = -1;
    int pos_b = -1;
    bool renamed = false;
  };
  std::map<size_t, Placement> placements;

  for (size_t i = 0; i < n; ++i) {
    if (keep_a[i]) {
      schema::Attribute attr = source.attributes[i];
      attr.table_name = table_a.name;
      placements[i].pos_a = static_cast<int>(table_a.attributes.size());
      table_a.attributes.push_back(std::move(attr));
    }
    if (keep_b[i]) {
      schema::Attribute attr = source.attributes[i];
      if (always_rename || rng.NextDouble() < options.rename_probability) {
        std::string renamed = NoisyRename(attr.name, rng);
        // kSemanticallyJoinable promises NO verbatim shared names; force
        // a visible change when the noisy rename was a no-op.
        if (always_rename && renamed == attr.name) {
          renamed = attr.name + "_alt";
        }
        placements[i].renamed = renamed != attr.name;
        attr.name = renamed;
      }
      attr.table_name = table_b.name;
      placements[i].pos_b = static_cast<int>(table_b.attributes.size());
      table_b.attributes.push_back(std::move(attr));
    }
  }
  COLSCOPE_CHECK(schema_a.AddTable(std::move(table_a)).ok());
  COLSCOPE_CHECK(schema_b.AddTable(std::move(table_b)).ok());

  MatchingScenario scenario;
  scenario.name = StrFormat("Fabricated(%s)",
                            FabricationKindToString(options.kind));
  scenario.set = schema::SchemaSet({schema_a, schema_b});

  // Ground truth: table pair + every column kept by both sides.
  const schema::Schema& sa = scenario.set.schema(0);
  const schema::Schema& sb = scenario.set.schema(1);
  const bool table_identical = sa.tables()[0].name == sb.tables()[0].name;
  COLSCOPE_CHECK(scenario.truth
                     .Add(table_identical ? LinkType::kInterIdentical
                                          : LinkType::kInterSubTyped,
                          schema::TableRef(0, 0), schema::TableRef(1, 0))
                     .ok());
  for (const auto& [index, placement] : placements) {
    if (placement.pos_a < 0 || placement.pos_b < 0) continue;
    const LinkType type = placement.renamed ? LinkType::kInterSubTyped
                                            : LinkType::kInterIdentical;
    COLSCOPE_CHECK(
        scenario.truth
            .Add(type, schema::AttributeRef(0, 0, placement.pos_a),
                 schema::AttributeRef(1, 0, placement.pos_b))
            .ok());
  }
  return scenario;
}

}  // namespace colscope::datasets
