#include "datasets/toy.h"

#include "common/check.h"
#include "schema/ddl_parser.h"

namespace colscope::datasets {

namespace {

constexpr char kS1Ddl[] = R"sql(
CREATE TABLE CLIENT (
  CID      NUMBER PRIMARY KEY,
  NAME     VARCHAR(80),
  ADDRESS  VARCHAR(200),
  PHONE    VARCHAR(30)
);
)sql";

constexpr char kS2Ddl[] = R"sql(
CREATE TABLE CUSTOMER (
  CID         INT PRIMARY KEY,
  FIRST_NAME  VARCHAR(40),
  LAST_NAME   VARCHAR(40),
  DOB         DATE
);
CREATE TABLE SHIPMENTS (
  SID            INT PRIMARY KEY,
  CID            INT REFERENCES CUSTOMER(CID),
  DELIVERY_TIME  DATETIME,
  ADDRESS        VARCHAR(200)
);
)sql";

constexpr char kS3Ddl[] = R"sql(
CREATE TABLE CONTACTS (
  CID    INT PRIMARY KEY,
  CNAME  VARCHAR(80),
  CITY   VARCHAR(60)
);
)sql";

constexpr char kS4Ddl[] = R"sql(
CREATE TABLE CAR (
  CID      INT PRIMARY KEY,
  CNAME    VARCHAR(80),
  YEAR     INT,
  COUNTRY  VARCHAR(40)
);
)sql";

schema::Schema MustParse(const char* ddl, const char* name) {
  Result<schema::Schema> parsed = schema::ParseDdl(ddl, name);
  COLSCOPE_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

void MustAdd(MatchingScenario& sc, LinkType type, const char* schema_a,
             const char* path_a, const char* schema_b, const char* path_b) {
  Status st = sc.truth.Add(sc.set, type, schema_a, path_a, schema_b, path_b);
  COLSCOPE_CHECK_MSG(st.ok(), st.ToString().c_str());
}

}  // namespace

MatchingScenario BuildToyScenario() {
  MatchingScenario sc;
  sc.name = "Figure1";
  std::vector<schema::Schema> schemas;
  schemas.push_back(MustParse(kS1Ddl, "S1"));
  schemas.push_back(MustParse(kS2Ddl, "S2"));
  schemas.push_back(MustParse(kS3Ddl, "S3"));
  schemas.push_back(MustParse(kS4Ddl, "S4"));
  sc.set = schema::SchemaSet(std::move(schemas));

  constexpr LinkType kII = LinkType::kInterIdentical;
  constexpr LinkType kIS = LinkType::kInterSubTyped;

  // Tables.
  MustAdd(sc, kII, "S1", "CLIENT", "S2", "CUSTOMER");
  MustAdd(sc, kII, "S1", "CLIENT", "S3", "CONTACTS");
  MustAdd(sc, kII, "S2", "CUSTOMER", "S3", "CONTACTS");
  MustAdd(sc, kIS, "S1", "CLIENT", "S2", "SHIPMENTS");
  MustAdd(sc, kIS, "S2", "SHIPMENTS", "S3", "CONTACTS");

  // Identifiers.
  MustAdd(sc, kII, "S1", "CLIENT.CID", "S2", "CUSTOMER.CID");
  MustAdd(sc, kII, "S1", "CLIENT.CID", "S3", "CONTACTS.CID");
  MustAdd(sc, kII, "S2", "CUSTOMER.CID", "S3", "CONTACTS.CID");
  MustAdd(sc, kIS, "S1", "CLIENT.CID", "S2", "SHIPMENTS.CID");
  MustAdd(sc, kIS, "S2", "SHIPMENTS.CID", "S3", "CONTACTS.CID");

  // Names: NAME <-> CNAME is identical after lexical normalization;
  // FIRST_NAME / LAST_NAME are splits of NAME (Section 2.1).
  MustAdd(sc, kII, "S1", "CLIENT.NAME", "S3", "CONTACTS.CNAME");
  MustAdd(sc, kIS, "S1", "CLIENT.NAME", "S2", "CUSTOMER.FIRST_NAME");
  MustAdd(sc, kIS, "S1", "CLIENT.NAME", "S2", "CUSTOMER.LAST_NAME");
  MustAdd(sc, kIS, "S2", "CUSTOMER.FIRST_NAME", "S3", "CONTACTS.CNAME");
  MustAdd(sc, kIS, "S2", "CUSTOMER.LAST_NAME", "S3", "CONTACTS.CNAME");

  // Addresses: ADDRESS <-> CITY is the sub-typed split of Figure 1.
  MustAdd(sc, kII, "S1", "CLIENT.ADDRESS", "S2", "SHIPMENTS.ADDRESS");
  MustAdd(sc, kIS, "S1", "CLIENT.ADDRESS", "S3", "CONTACTS.CITY");
  MustAdd(sc, kIS, "S2", "SHIPMENTS.ADDRESS", "S3", "CONTACTS.CITY");

  return sc;
}

}  // namespace colscope::datasets
