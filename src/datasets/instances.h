#ifndef COLSCOPE_DATASETS_INSTANCES_H_
#define COLSCOPE_DATASETS_INSTANCES_H_

#include <cstdint>

#include "schema/schema.h"
#include "schema/schema_set.h"

namespace colscope::datasets {

/// Attaches synthetic instance-value samples to every attribute of
/// `schema`, drawn from per-concept value pools (names, cities,
/// countries, e-mails, dates, prices, ...) selected by the attribute's
/// tokenized name and falling back to type-generic values. Deterministic
/// for a fixed seed. This simulates the data-market "sample rows"
/// setting of Section 2.3 so the instance-serialization trade-off can be
/// studied without access to the original databases (DESIGN.md,
/// Substitution 2).
void AttachSyntheticSamples(schema::Schema& schema, uint64_t seed,
                            size_t samples_per_attribute = 3);

/// Convenience: attaches samples to every schema of a set.
void AttachSyntheticSamples(schema::SchemaSet& set, uint64_t seed,
                            size_t samples_per_attribute = 3);

}  // namespace colscope::datasets

#endif  // COLSCOPE_DATASETS_INSTANCES_H_
