#ifndef COLSCOPE_DATASETS_SALES3_H_
#define COLSCOPE_DATASETS_SALES3_H_

#include "datasets/linkage.h"
#include "schema/schema.h"

namespace colscope::datasets {

/// "Sales3": a second, independent multi-source scenario built from
/// three classic public sales schemas — TPC-H (normalized, 8 tables),
/// Northwind (application-style, 11 tables), and the Star Schema
/// Benchmark (denormalized, 5 tables). Not part of the paper's
/// evaluation; used to check that collaborative scoping's behaviour
/// generalizes beyond OC3/OC3-FO (bench_ablation_generalization).
/// Ground-truth linkages are annotated for the obvious correspondences
/// (customers / orders / line items / parts / suppliers and their key
/// attributes); warehouse-specific and app-specific elements
/// (nation/region graph, Northwind HR tables, SSB date dimension) are
/// unlinkable overhead.
schema::Schema LoadTpchSchema();
schema::Schema LoadNorthwindSchema();
schema::Schema LoadSsbSchema();

const char* TpchDdl();
const char* NorthwindDdl();
const char* SsbDdl();

/// The three-schema scenario with annotated ground truth.
MatchingScenario BuildSales3Scenario();

}  // namespace colscope::datasets

#endif  // COLSCOPE_DATASETS_SALES3_H_
