#ifndef COLSCOPE_DATASETS_CSV_LOADER_H_
#define COLSCOPE_DATASETS_CSV_LOADER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "schema/schema.h"

namespace colscope::datasets {

/// Options for CSV schema extraction.
struct CsvLoadOptions {
  /// Table name for the loaded CSV (one CSV = one table).
  std::string table_name = "table";
  char delimiter = ',';
  /// How many data rows to attach as instance samples per attribute
  /// (0 = metadata only).
  size_t max_sample_rows = 3;
};

/// Extracts a single-table Schema from CSV text, Valentine-dataset
/// style: the header row provides the attribute names; data types are
/// inferred from the sampled data rows (integer / decimal / date /
/// string); the first `max_sample_rows` values are attached as instance
/// samples (usable with SerializeOptions::include_instance_samples).
/// Handles quoted fields with embedded delimiters and "" escapes.
Result<schema::Schema> LoadCsvSchema(std::string_view csv,
                                     std::string schema_name,
                                     const CsvLoadOptions& options = {});

/// Splits one CSV line into fields (exposed for tests).
std::vector<std::string> SplitCsvLine(std::string_view line,
                                      char delimiter = ',');

/// Infers the data-type family of a set of value strings: kInteger if
/// all parse as integers, kDecimal if all parse as numbers, kDate for
/// YYYY-MM-DD shapes, else kString. Empty values are ignored; all-empty
/// yields kString.
schema::DataType InferDataType(const std::vector<std::string>& values);

}  // namespace colscope::datasets

#endif  // COLSCOPE_DATASETS_CSV_LOADER_H_
