#ifndef COLSCOPE_DATASETS_CSV_LOADER_H_
#define COLSCOPE_DATASETS_CSV_LOADER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "schema/schema.h"

namespace colscope::datasets {

/// Options for CSV schema extraction.
struct CsvLoadOptions {
  /// Table name for the loaded CSV (one CSV = one table).
  std::string table_name = "table";
  char delimiter = ',';
  /// How many data rows to attach as instance samples per attribute
  /// (0 = metadata only).
  size_t max_sample_rows = 3;
};

/// Extracts a single-table Schema from CSV text, Valentine-dataset
/// style: the header row provides the attribute names; data types are
/// inferred from the sampled data rows (integer / decimal / date /
/// string); the first `max_sample_rows` values are attached as instance
/// samples (usable with SerializeOptions::include_instance_samples).
/// Handles quoted fields with embedded delimiters and "" escapes.
///
/// Malformed CSV is an InvalidArgument whose message pinpoints the
/// problem with a 1-based line number (the header is line 1) and the
/// column counts involved: ragged rows report "line N has X columns,
/// header has Y"; a quote left open at end of line reports "line N:
/// unterminated quoted field". CRLF line endings are accepted.
Result<schema::Schema> LoadCsvSchema(std::string_view csv,
                                     std::string schema_name,
                                     const CsvLoadOptions& options = {});

/// Splits one CSV line into fields (exposed for tests). When
/// `unterminated_quote` is non-null it is set to whether the line ended
/// inside an open quoted field (the fields parsed so far are still
/// returned).
std::vector<std::string> SplitCsvLine(std::string_view line,
                                      char delimiter = ',',
                                      bool* unterminated_quote = nullptr);

/// Infers the data-type family of a set of value strings: kInteger if
/// all parse as integers, kDecimal if all parse as numbers, kDate for
/// YYYY-MM-DD shapes, else kString. Empty values are ignored; all-empty
/// yields kString.
schema::DataType InferDataType(const std::vector<std::string>& values);

}  // namespace colscope::datasets

#endif  // COLSCOPE_DATASETS_CSV_LOADER_H_
