#include "datasets/csv_loader.h"

#include <cctype>

#include "common/strings.h"

namespace colscope::datasets {

std::vector<std::string> SplitCsvLine(std::string_view line,
                                      char delimiter,
                                      bool* unterminated_quote) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');  // Escaped quote.
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  if (unterminated_quote != nullptr) *unterminated_quote = quoted;
  return fields;
}

namespace {

bool LooksLikeInteger(std::string_view value) {
  size_t i = (value[0] == '-' || value[0] == '+') ? 1 : 0;
  if (i >= value.size()) return false;
  for (; i < value.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(value[i]))) return false;
  }
  return true;
}

bool LooksLikeDecimal(std::string_view value) {
  size_t i = (value[0] == '-' || value[0] == '+') ? 1 : 0;
  bool digit = false, dot = false;
  for (; i < value.size(); ++i) {
    const char c = value[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digit;
}

bool LooksLikeDate(std::string_view value) {
  // YYYY-MM-DD (also accepts / separators).
  if (value.size() != 10) return false;
  for (size_t i = 0; i < 10; ++i) {
    if (i == 4 || i == 7) {
      if (value[i] != '-' && value[i] != '/') return false;
    } else if (!std::isdigit(static_cast<unsigned char>(value[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

schema::DataType InferDataType(const std::vector<std::string>& values) {
  bool any = false;
  bool all_int = true, all_num = true, all_date = true;
  for (const std::string& raw : values) {
    const std::string_view value = StripAsciiWhitespace(raw);
    if (value.empty()) continue;
    any = true;
    all_int = all_int && LooksLikeInteger(value);
    all_num = all_num && (LooksLikeInteger(value) || LooksLikeDecimal(value));
    all_date = all_date && LooksLikeDate(value);
  }
  if (!any) return schema::DataType::kString;
  if (all_date) return schema::DataType::kDate;
  if (all_int) return schema::DataType::kInteger;
  if (all_num) return schema::DataType::kDecimal;
  return schema::DataType::kString;
}

Result<schema::Schema> LoadCsvSchema(std::string_view csv,
                                     std::string schema_name,
                                     const CsvLoadOptions& options) {
  // Split into lines (tolerate trailing newline and CRLF).
  std::vector<std::string> lines;
  std::string current;
  for (char c : csv) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  if (lines.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }

  bool unterminated = false;
  const std::vector<std::string> header =
      SplitCsvLine(lines[0], options.delimiter, &unterminated);
  if (unterminated) {
    return Status::InvalidArgument(
        "line 1: unterminated quoted field in header");
  }
  if (header.empty() || (header.size() == 1 && header[0].empty())) {
    return Status::InvalidArgument("CSV header row (line 1) is empty");
  }

  // Collect sampled values per column for typing + instance samples.
  std::vector<std::vector<std::string>> columns(header.size());
  size_t sampled = 0;
  for (size_t row = 1;
       row < lines.size() && sampled < std::max<size_t>(
                                 options.max_sample_rows, 8);
       ++row) {
    if (StripAsciiWhitespace(lines[row]).empty()) continue;
    const std::vector<std::string> fields =
        SplitCsvLine(lines[row], options.delimiter, &unterminated);
    // Error positions are 1-based physical line numbers (the header is
    // line 1), matching what an editor or `sed -n Np` shows.
    if (unterminated) {
      return Status::InvalidArgument(StrFormat(
          "line %zu: unterminated quoted field", row + 1));
    }
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu columns, header has %zu columns",
                    row + 1, fields.size(), header.size()));
    }
    for (size_t c = 0; c < header.size(); ++c) {
      columns[c].push_back(fields[c]);
    }
    ++sampled;
  }

  schema::Schema out(std::move(schema_name));
  schema::Table table;
  table.name = options.table_name;
  for (size_t c = 0; c < header.size(); ++c) {
    schema::Attribute attr;
    attr.name = std::string(StripAsciiWhitespace(header[c]));
    if (attr.name.empty()) {
      return Status::InvalidArgument(
          StrFormat("line 1: column %zu has an empty name", c + 1));
    }
    attr.table_name = table.name;
    attr.type = InferDataType(columns[c]);
    attr.raw_type = schema::DataTypeToString(attr.type);
    const size_t keep = std::min(options.max_sample_rows, columns[c].size());
    attr.samples.assign(columns[c].begin(),
                        columns[c].begin() + static_cast<long>(keep));
    table.attributes.push_back(std::move(attr));
  }
  COLSCOPE_RETURN_IF_ERROR(out.AddTable(std::move(table)));
  return out;
}

}  // namespace colscope::datasets
