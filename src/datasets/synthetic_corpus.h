#ifndef COLSCOPE_DATASETS_SYNTHETIC_CORPUS_H_
#define COLSCOPE_DATASETS_SYNTHETIC_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datasets/linkage.h"

namespace colscope::datasets {

/// Parameters of the scalable corpus generator (`colscope gen-corpus`).
/// Unlike SyntheticOptions — capped at one fixed vocabulary — the corpus
/// generator tiles an (entity x field) concept grid with numbered
/// variants, so schemas, tables, and attributes all scale to arbitrary
/// counts while renames keep drawing from the lexicon's synonym groups
/// (renamed columns stay close in signature space, like Valentine's
/// fabricated pairs). Everything — structure, names, instance values,
/// ground truth — is a pure function of these options; the same seed
/// reproduces the corpus byte for byte at any thread count.
struct CorpusOptions {
  size_t num_schemas = 6;
  size_t tables_per_schema = 4;
  /// Attributes per table (every table has exactly this many: dropped
  /// shared concepts are replaced by private, unlinkable attributes).
  size_t attrs_per_table = 8;
  /// Instance rows emitted per table CSV.
  size_t rows_per_table = 8;
  /// Probability a schema spells a concept with a synonym alias instead
  /// of the canonical name (controlled column renames -> IS linkages).
  double rename_probability = 0.4;
  /// Probability an attribute's vendor type drifts to a sibling type
  /// (INT -> BIGINT, VARCHAR -> TEXT, ...).
  double type_drift_probability = 0.2;
  /// Probability a schema replaces a shared concept with a private
  /// attribute (unlinkable overhead, like real multi-source sets).
  double dropout_probability = 0.1;
  /// Probability an emitted CSV value carries a typo (noisy instances).
  double value_noise_probability = 0.1;
  uint64_t seed = 0xC0905;
};

/// One rendered corpus artifact (a DDL script or a table CSV).
struct CorpusFile {
  std::string name;
  std::string contents;
};

/// A fully rendered corpus: the in-memory matching scenario (schema set
/// + ground truth), the DDL/CSV files, and the ground-truth label file.
struct SyntheticCorpus {
  MatchingScenario scenario;
  /// Per schema: `<SCHEMA>.sql`, then one `<SCHEMA>__<table>.csv` per
  /// table, in flattened schema order.
  std::vector<CorpusFile> files;
  /// Tab-separated ground truth ("type  SCHEMA.path  SCHEMA.path"), one
  /// linkage per line, preceded by `#` header lines echoing the options.
  std::string labels_tsv;
};

/// Entity (table-concept) and field (attribute-concept) vocabulary
/// sizes; table/attribute counts beyond them reuse concepts with
/// numbered variants.
size_t CorpusEntityVocabularySize();
size_t CorpusFieldVocabularySize();

/// Generates the full corpus (scenario + rendered files + labels).
SyntheticCorpus BuildSyntheticCorpus(const CorpusOptions& options);

/// Generates only the matching scenario — identical to
/// `BuildSyntheticCorpus(options).scenario` (structure and instance
/// values draw from independent seeded streams, so skipping the file
/// rendering cannot shift the structure). Benches use this to sweep
/// corpus size without paying for CSV rendering.
MatchingScenario BuildCorpusScenario(const CorpusOptions& options);

}  // namespace colscope::datasets

#endif  // COLSCOPE_DATASETS_SYNTHETIC_CORPUS_H_
