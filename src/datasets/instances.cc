#include "datasets/instances.h"

#include <array>

#include "common/rng.h"
#include "common/strings.h"
#include "text/hashing.h"
#include "text/lexicon.h"
#include "text/tokenize.h"

namespace colscope::datasets {

namespace {

struct ValuePool {
  const char* concept_name;  // Matches text::Lexicon concept names.
  std::array<const char*, 6> values;
};

/// Value pools keyed by the lexicon concept of an attribute-name token.
/// Concepts shared across schemas draw from the same pool, so identical
/// semantics get overlapping samples (the mechanism behind the paper's
/// footnote-2 similarity shifts).
constexpr ValuePool kPools[] = {
    {"firstname",
     {"Michael", "Sarah", "James", "Ana", "Wei", "Fatima"}},
    {"lastname", {"Scott", "Bluth", "Nguyen", "Garcia", "Kim", "Olsen"}},
    {"name",
     {"Michael Scott", "Ana Garcia", "Wei Chen", "Sarah Olsen",
      "James Kim", "Fatima Noor"}},
    {"city", {"Berlin", "Paris", "Oslo", "Nantes", "Boston", "Kyoto"}},
    {"street",
     {"54 Rue Royale", "Erzgebirgsweg 11", "912 Oak St", "Via Monte 3",
      "Am Ring 7", "Calle Luna 21"}},
    {"address",
     {"54 Rue Royale Nantes", "912 Oak St Boston", "Am Ring 7 Berlin",
      "Via Monte 3 Rome", "Calle Luna 21 Madrid", "Erzgebirgsweg 11 Kln"}},
    {"country", {"France", "Germany", "Norway", "Japan", "USA", "Spain"}},
    {"region", {"MA", "NRW", "Viken", "Kansai", "IdF", "Madrid"}},
    {"postal", {"44000", "02115", "0150", "604-8001", "10117", "28004"}},
    {"email",
     {"m.scott@dm.com", "ana@garcia.io", "wei.chen@mail.cn",
      "s.olsen@nor.no", "jkim@corp.kr", "f.noor@example.org"}},
    {"phone",
     {"+33 2 40 41 42", "+49 221 555", "+1 617 555 0101", "+81 75 222",
      "+47 22 33 44", "+34 91 555"}},
    {"web",
     {"www.dm.com", "garcia.io", "chen.example.cn", "olsen.no", "corp.kr",
      "noor.org"}},
    {"date",
     {"2024-01-15", "2023-11-02", "2024-06-30", "2022-03-08", "2024-12-24",
      "2023-07-19"}},
    {"datetime",
     {"2024-01-15 10:22:31", "2023-11-02 08:00:00", "2024-06-30 23:59:01",
      "2022-03-08 12:30:45", "2024-12-24 18:00:00", "2023-07-19 07:15:00"}},
    {"year", {"2019", "2020", "2021", "2022", "2023", "2024"}},
    {"price", {"19.99", "340.00", "7.25", "1299.00", "54.10", "0.99"}},
    {"amount", {"1034.50", "88.00", "12999.99", "410.75", "5.00", "670.20"}},
    {"quantity", {"1", "3", "12", "140", "7", "25"}},
    {"status",
     {"OPEN", "SHIPPED", "CANCELLED", "COMPLETE", "PENDING", "REFUSED"}},
    {"id", {"10234", "10911", "20007", "31555", "40018", "57311"}},
    {"number", {"103", "1748", "292", "8800", "415", "67"}},
    {"code", {"S10_1678", "S18_2248", "S24_2000", "S12_1099", "S700_2824",
              "S32_4485"}},
    {"description",
     {"durable die-cast model", "limited edition", "hand finished",
      "classic replica", "premium series", "collector grade"}},
    {"driver",
     {"hamilton", "verstappen", "leclerc", "alonso", "norris", "sainz"}},
    {"constructor",
     {"ferrari", "mclaren", "red_bull", "mercedes", "williams", "sauber"}},
    {"circuit",
     {"monza", "spa", "suzuka", "silverstone", "interlagos", "zandvoort"}},
    {"nationality",
     {"British", "Dutch", "Monegasque", "Spanish", "German", "Brazilian"}},
};

const ValuePool* FindPool(const std::string& concept_name) {
  for (const ValuePool& pool : kPools) {
    if (concept_name == pool.concept_name) return &pool;
  }
  return nullptr;
}

/// Type-generic fallbacks when no concept pool applies.
const char* FallbackValue(schema::DataType type, uint64_t pick) {
  static constexpr const char* kStrings[] = {"alpha", "bravo", "delta",
                                             "omega", "sigma", "kappa"};
  static constexpr const char* kNumbers[] = {"7", "42", "128", "5", "900",
                                             "13"};
  static constexpr const char* kDecimals[] = {"1.5", "99.95", "0.25",
                                              "410.00", "7.77", "3.14"};
  static constexpr const char* kDates[] = {"2024-05-05", "2023-09-09",
                                           "2022-12-01", "2024-02-29",
                                           "2021-06-21", "2020-10-10"};
  switch (type) {
    case schema::DataType::kInteger:
      return kNumbers[pick % 6];
    case schema::DataType::kDecimal:
      return kDecimals[pick % 6];
    case schema::DataType::kDate:
    case schema::DataType::kDateTime:
      return kDates[pick % 6];
    default:
      return kStrings[pick % 6];
  }
}

}  // namespace

void AttachSyntheticSamples(schema::Schema& schema, uint64_t seed,
                            size_t samples_per_attribute) {
  const text::Lexicon& lexicon = text::DefaultSchemaLexicon();
  for (schema::Table& table : schema.mutable_tables()) {
    for (schema::Attribute& attr : table.attributes) {
      attr.samples.clear();
      // Choose the pool of the first attribute-name token that has one;
      // prefer later (more specific) tokens: "order_date" -> date pool.
      const ValuePool* pool = nullptr;
      const auto tokens = text::TokenizeIdentifier(attr.name);
      for (auto it = tokens.rbegin(); it != tokens.rend() && !pool; ++it) {
        pool = FindPool(lexicon.Lookup(*it).concept_name);
      }
      Rng rng(text::HashCombine(text::Hash64(attr.name + attr.table_name),
                                seed));
      for (size_t s = 0; s < samples_per_attribute; ++s) {
        const uint64_t pick = rng.NextUint64();
        attr.samples.push_back(pool != nullptr
                                   ? pool->values[pick % pool->values.size()]
                                   : FallbackValue(attr.type, pick));
      }
    }
  }
}

void AttachSyntheticSamples(schema::SchemaSet& set, uint64_t seed,
                            size_t samples_per_attribute) {
  // SchemaSet owns its schemas by value; rebuild with samples attached.
  std::vector<schema::Schema> schemas = set.schemas();
  for (size_t s = 0; s < schemas.size(); ++s) {
    AttachSyntheticSamples(schemas[s], seed + s, samples_per_attribute);
  }
  set = schema::SchemaSet(std::move(schemas));
}

}  // namespace colscope::datasets
