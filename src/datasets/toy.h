#ifndef COLSCOPE_DATASETS_TOY_H_
#define COLSCOPE_DATASETS_TOY_H_

#include "datasets/linkage.h"

namespace colscope::datasets {

/// The four-schema running example of Figure 1: S1 CLIENT, S2 CUSTOMER +
/// SHIPMENTS, S3 CONTACTS, and the entirely unrelated S4 CAR (Formula One
/// car info). 24 elements of which 15 are linkable — the paper's 60%
/// unlinkable overhead. Used in the quickstart example and unit tests.
MatchingScenario BuildToyScenario();

}  // namespace colscope::datasets

#endif  // COLSCOPE_DATASETS_TOY_H_
