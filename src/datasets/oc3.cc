#include "datasets/oc3.h"

#include "common/check.h"
#include "schema/ddl_parser.h"

namespace colscope::datasets {

namespace {

schema::Schema MustParse(const char* ddl, const char* name) {
  Result<schema::Schema> parsed = schema::ParseDdl(ddl, name);
  COLSCOPE_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

/// Shorthand used by the annotation tables below.
struct LinkSpec {
  LinkType type;
  const char* schema_a;
  const char* path_a;
  const char* schema_b;
  const char* path_b;
};

constexpr LinkType kII = LinkType::kInterIdentical;
constexpr LinkType kIS = LinkType::kInterSubTyped;

/// Oracle <-> MySQL: 14 inter-identical + 22 inter-sub-typed (Table 3).
const LinkSpec kOracleMySql[] = {
    // Inter-identical tables.
    {kII, "OC-Oracle", "CUSTOMERS", "OC-MySQL", "customers"},
    {kII, "OC-Oracle", "ORDERS", "OC-MySQL", "orders"},
    {kII, "OC-Oracle", "PRODUCTS", "OC-MySQL", "products"},
    {kII, "OC-Oracle", "ORDER_ITEMS", "OC-MySQL", "orderdetails"},
    // Inter-identical attributes.
    {kII, "OC-Oracle", "CUSTOMERS.CUSTOMER_ID", "OC-MySQL",
     "customers.customerNumber"},
    {kII, "OC-Oracle", "ORDERS.ORDER_ID", "OC-MySQL", "orders.orderNumber"},
    {kII, "OC-Oracle", "ORDERS.ORDER_STATUS", "OC-MySQL", "orders.status"},
    {kII, "OC-Oracle", "ORDERS.CUSTOMER_ID", "OC-MySQL",
     "orders.customerNumber"},
    {kII, "OC-Oracle", "ORDER_ITEMS.ORDER_ID", "OC-MySQL",
     "orderdetails.orderNumber"},
    {kII, "OC-Oracle", "ORDER_ITEMS.PRODUCT_ID", "OC-MySQL",
     "orderdetails.productCode"},
    {kII, "OC-Oracle", "ORDER_ITEMS.QUANTITY", "OC-MySQL",
     "orderdetails.quantityOrdered"},
    {kII, "OC-Oracle", "ORDER_ITEMS.UNIT_PRICE", "OC-MySQL",
     "orderdetails.priceEach"},
    {kII, "OC-Oracle", "PRODUCTS.PRODUCT_NAME", "OC-MySQL",
     "products.productName"},
    {kII, "OC-Oracle", "PRODUCTS.PRODUCT_ID", "OC-MySQL",
     "products.productCode"},
    // Inter-sub-typed: partially overlapping semantics.
    {kIS, "OC-Oracle", "ORDERS.ORDER_DATETIME", "OC-MySQL",
     "orders.orderDate"},
    {kIS, "OC-Oracle", "ORDER_ITEMS.LINE_ITEM_ID", "OC-MySQL",
     "orderdetails.orderLineNumber"},
    // FULL_NAME splits into contact first/last name and overlaps with the
    // company-level customerName.
    {kIS, "OC-Oracle", "CUSTOMERS.FULL_NAME", "OC-MySQL",
     "customers.contactFirstName"},
    {kIS, "OC-Oracle", "CUSTOMERS.FULL_NAME", "OC-MySQL",
     "customers.contactLastName"},
    {kIS, "OC-Oracle", "CUSTOMERS.FULL_NAME", "OC-MySQL",
     "customers.customerName"},
    {kIS, "OC-Oracle", "PRODUCTS.UNIT_PRICE", "OC-MySQL",
     "products.buyPrice"},
    // Compound address attributes split into the normalized address parts.
    {kIS, "OC-Oracle", "SHIPMENTS.DELIVERY_ADDRESS", "OC-MySQL",
     "customers.addressLine2"},
    {kIS, "OC-Oracle", "STORES", "OC-MySQL", "offices"},
    {kIS, "OC-Oracle", "STORES.PHYSICAL_ADDRESS", "OC-MySQL",
     "offices.addressLine1"},
    {kIS, "OC-Oracle", "STORES.PHYSICAL_ADDRESS", "OC-MySQL",
     "offices.city"},
    {kIS, "OC-Oracle", "STORES.PHYSICAL_ADDRESS", "OC-MySQL",
     "offices.state"},
    {kIS, "OC-Oracle", "STORES.PHYSICAL_ADDRESS", "OC-MySQL",
     "offices.postalCode"},
    {kIS, "OC-Oracle", "STORES.PHYSICAL_ADDRESS", "OC-MySQL",
     "offices.country"},
    {kIS, "OC-Oracle", "SHIPMENTS.DELIVERY_ADDRESS", "OC-MySQL",
     "customers.addressLine1"},
    {kIS, "OC-Oracle", "SHIPMENTS.DELIVERY_ADDRESS", "OC-MySQL",
     "customers.city"},
    {kIS, "OC-Oracle", "SHIPMENTS.DELIVERY_ADDRESS", "OC-MySQL",
     "customers.postalCode"},
    {kIS, "OC-Oracle", "SHIPMENTS.DELIVERY_ADDRESS", "OC-MySQL",
     "customers.country"},
    {kIS, "OC-Oracle", "SHIPMENTS.DELIVERY_ADDRESS", "OC-MySQL",
     "customers.state"},
    // One-to-many table linkages via shared customer ids and locations
    // (the CLIENT <-> SHIPMENTS pattern of Figure 1).
    {kIS, "OC-Oracle", "SHIPMENTS", "OC-MySQL", "customers"},
    {kIS, "OC-Oracle", "SHIPMENTS", "OC-MySQL", "orders"},
    {kIS, "OC-Oracle", "SHIPMENTS.CUSTOMER_ID", "OC-MySQL",
     "customers.customerNumber"},
    {kIS, "OC-Oracle", "SHIPMENTS.SHIPMENT_STATUS", "OC-MySQL",
     "orders.status"},
};

/// Oracle <-> HANA: 10 inter-identical + 8 inter-sub-typed (Table 3).
const LinkSpec kOracleHana[] = {
    {kII, "OC-Oracle", "CUSTOMERS", "OC-HANA", "BUSINESSPARTNERS"},
    {kII, "OC-Oracle", "PRODUCTS", "OC-HANA", "PRODUCTS"},
    {kII, "OC-Oracle", "ORDERS", "OC-HANA", "SALESORDERS"},
    {kII, "OC-Oracle", "CUSTOMERS.CUSTOMER_ID", "OC-HANA",
     "BUSINESSPARTNERS.PARTNER_ID"},
    {kII, "OC-Oracle", "CUSTOMERS.EMAIL_ADDRESS", "OC-HANA",
     "BUSINESSPARTNERS.EMAIL_ADDRESS"},
    {kII, "OC-Oracle", "PRODUCTS.PRODUCT_ID", "OC-HANA",
     "PRODUCTS.PRODUCT_ID"},
    {kII, "OC-Oracle", "PRODUCTS.UNIT_PRICE", "OC-HANA", "PRODUCTS.PRICE"},
    {kII, "OC-Oracle", "PRODUCTS.PRODUCT_DETAILS", "OC-HANA",
     "PRODUCTS.PRODUCT_DESCRIPTION"},
    {kII, "OC-Oracle", "ORDERS.ORDER_ID", "OC-HANA",
     "SALESORDERS.SALESORDER_ID"},
    {kII, "OC-Oracle", "ORDERS.CUSTOMER_ID", "OC-HANA",
     "SALESORDERS.PARTNER_ID"},
    {kIS, "OC-Oracle", "CUSTOMERS.FULL_NAME", "OC-HANA",
     "BUSINESSPARTNERS.COMPANY_NAME"},
    {kIS, "OC-Oracle", "STORES.WEB_ADDRESS", "OC-HANA",
     "BUSINESSPARTNERS.WEB_ADDRESS"},
    {kIS, "OC-Oracle", "STORES.PHYSICAL_ADDRESS", "OC-HANA",
     "BUSINESSPARTNERS.STREET"},
    {kIS, "OC-Oracle", "STORES.PHYSICAL_ADDRESS", "OC-HANA",
     "BUSINESSPARTNERS.CITY"},
    {kIS, "OC-Oracle", "SHIPMENTS.DELIVERY_ADDRESS", "OC-HANA",
     "BUSINESSPARTNERS.CITY"},
    {kIS, "OC-Oracle", "SHIPMENTS.DELIVERY_ADDRESS", "OC-HANA",
     "BUSINESSPARTNERS.POSTAL_CODE"},
    {kIS, "OC-Oracle", "SHIPMENTS", "OC-HANA", "BUSINESSPARTNERS"},
    {kIS, "OC-Oracle", "STORES", "OC-HANA", "BUSINESSPARTNERS"},
};

/// MySQL <-> HANA: 15 inter-identical + 1 inter-sub-typed (Table 3).
const LinkSpec kMySqlHana[] = {
    {kII, "OC-MySQL", "customers", "OC-HANA", "BUSINESSPARTNERS"},
    {kII, "OC-MySQL", "products", "OC-HANA", "PRODUCTS"},
    {kII, "OC-MySQL", "orders", "OC-HANA", "SALESORDERS"},
    {kII, "OC-MySQL", "customers.customerNumber", "OC-HANA",
     "BUSINESSPARTNERS.PARTNER_ID"},
    {kII, "OC-MySQL", "customers.phone", "OC-HANA",
     "BUSINESSPARTNERS.PHONE_NUMBER"},
    {kII, "OC-MySQL", "customers.city", "OC-HANA", "BUSINESSPARTNERS.CITY"},
    {kII, "OC-MySQL", "customers.state", "OC-HANA",
     "BUSINESSPARTNERS.REGION"},
    {kII, "OC-MySQL", "customers.postalCode", "OC-HANA",
     "BUSINESSPARTNERS.POSTAL_CODE"},
    {kII, "OC-MySQL", "customers.country", "OC-HANA",
     "BUSINESSPARTNERS.COUNTRY"},
    {kII, "OC-MySQL", "customers.addressLine1", "OC-HANA",
     "BUSINESSPARTNERS.STREET"},
    {kII, "OC-MySQL", "products.productCode", "OC-HANA",
     "PRODUCTS.PRODUCT_ID"},
    {kII, "OC-MySQL", "products.buyPrice", "OC-HANA", "PRODUCTS.PRICE"},
    {kII, "OC-MySQL", "products.productDescription", "OC-HANA",
     "PRODUCTS.PRODUCT_DESCRIPTION"},
    {kII, "OC-MySQL", "orders.orderNumber", "OC-HANA",
     "SALESORDERS.SALESORDER_ID"},
    {kII, "OC-MySQL", "orders.customerNumber", "OC-HANA",
     "SALESORDERS.PARTNER_ID"},
    // classicmodels' customerName is a company name, so it only partially
    // matches the partner-level COMPANY_NAME.
    {kIS, "OC-MySQL", "customers.customerName", "OC-HANA",
     "BUSINESSPARTNERS.COMPANY_NAME"},
};

void AddAll(MatchingScenario& scenario, const LinkSpec* specs, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    const LinkSpec& s = specs[i];
    Status st = scenario.truth.Add(scenario.set, s.type, s.schema_a, s.path_a,
                                   s.schema_b, s.path_b);
    COLSCOPE_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
}

MatchingScenario BuildScenario(bool include_formula_one) {
  MatchingScenario scenario;
  scenario.name = include_formula_one ? "OC3-FO" : "OC3";
  std::vector<schema::Schema> schemas;
  schemas.push_back(LoadOracleSchema());
  schemas.push_back(LoadMySqlSchema());
  schemas.push_back(LoadHanaSchema());
  if (include_formula_one) schemas.push_back(LoadFormulaOneSchema());
  scenario.set = schema::SchemaSet(std::move(schemas));

  AddAll(scenario, kOracleMySql, std::size(kOracleMySql));
  AddAll(scenario, kOracleHana, std::size(kOracleHana));
  AddAll(scenario, kMySqlHana, std::size(kMySqlHana));
  // The Formula One schema contributes no linkages (Table 2: 0 linkable).
  return scenario;
}

}  // namespace

schema::Schema LoadOracleSchema() {
  return MustParse(OracleDdl(), "OC-Oracle");
}

schema::Schema LoadMySqlSchema() { return MustParse(MySqlDdl(), "OC-MySQL"); }

schema::Schema LoadHanaSchema() { return MustParse(HanaDdl(), "OC-HANA"); }

schema::Schema LoadFormulaOneSchema() {
  return MustParse(FormulaOneDdl(), "FormulaOne");
}

MatchingScenario BuildOc3Scenario() { return BuildScenario(false); }

MatchingScenario BuildOc3FoScenario() { return BuildScenario(true); }

}  // namespace colscope::datasets
