#include "datasets/synthetic_corpus.h"

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "schema/ddl_writer.h"
#include "schema/schema.h"

namespace colscope::datasets {

namespace {

/// What a field's instance values look like in the emitted CSVs.
enum class ValueKind {
  kSequence,
  kName,
  kCode,
  kEmail,
  kPhone,
  kStreet,
  kCity,
  kCountry,
  kPostal,
  kDate,
  kDateTime,
  kStatus,
  kMoney,
  kCount,
  kRate,
  kText,
};

/// One attribute-level concept: synonym spellings (index 0 = canonical,
/// drawn from the lexicon's synonym groups so renamed columns stay close
/// in signature space), canonical vendor type, and value shape.
struct FieldSpec {
  std::array<const char*, 3> aliases;
  const char* type;
  ValueKind kind;
};

/// Table-level concepts with synonym spellings.
struct EntitySpec {
  std::array<const char*, 3> aliases;
};

constexpr EntitySpec kEntities[] = {
    {{"customers", "clients", "partners"}},
    {{"orders", "purchases", "salesorders"}},
    {{"products", "items", "articles"}},
    {{"shipments", "deliveries", "dispatches"}},
    {{"payments", "invoices", "settlements"}},
    {{"employees", "staff", "personnel"}},
    {{"vendors", "suppliers", "merchants"}},
    {{"stores", "shops", "outlets"}},
};

constexpr FieldSpec kFields[] = {
    {{"id", "identifier", "record_key"}, "INT", ValueKind::kSequence},
    {{"name", "title", "label"}, "VARCHAR", ValueKind::kName},
    {{"code", "reference_code", "short_code"}, "VARCHAR", ValueKind::kCode},
    {{"email", "mail", "email_address"}, "VARCHAR", ValueKind::kEmail},
    {{"phone", "telephone", "contact_number"}, "VARCHAR", ValueKind::kPhone},
    {{"street", "address_line", "road"}, "VARCHAR", ValueKind::kStreet},
    {{"city", "town", "locality"}, "VARCHAR", ValueKind::kCity},
    {{"country", "nation", "country_name"}, "VARCHAR", ValueKind::kCountry},
    {{"postal_code", "zip", "postcode"}, "VARCHAR", ValueKind::kPostal},
    {{"created_date", "creation_day", "created_on"}, "DATE", ValueKind::kDate},
    {{"updated_at", "modified_at", "update_timestamp"}, "DATETIME",
     ValueKind::kDateTime},
    {{"status", "state", "stage"}, "VARCHAR", ValueKind::kStatus},
    {{"amount", "total", "gross_value"}, "DECIMAL", ValueKind::kMoney},
    {{"quantity", "qty", "unit_count"}, "INT", ValueKind::kCount},
    {{"rate", "percentage", "ratio"}, "DECIMAL", ValueKind::kRate},
    {{"notes", "description", "comment_text"}, "TEXT", ValueKind::kText},
};

/// Disjoint out-of-vocabulary pools for the private (dropped-concept)
/// attributes; each schema cycles through its own domain so private
/// elements do not accidentally align across schemas.
constexpr const char* kPrivatePools[][8] = {
    {"halyard", "spinnaker", "bowline", "mizzen", "gunwale", "keelson",
     "capstan", "forestay"},
    {"cirrus", "stratus", "derecho", "haboob", "graupel", "virga",
     "mistral", "foehn"},
    {"jacquard", "selvage", "warp_beam", "heddle", "bobbin", "shuttle",
     "treadle", "reed_hook"},
    {"braise", "julienne", "sousvide", "roux", "mirepoix", "confit",
     "veloute", "chiffonade"},
    {"perihelion", "syzygy", "apogee", "libration", "occultation",
     "analemma", "zenith", "nadir"},
    {"feldspar", "olivine", "zircon", "garnet", "biotite", "epidote",
     "apatite", "kyanite"},
};
constexpr size_t kNumPrivatePools = std::size(kPrivatePools);

/// Sibling vendor types a canonical type can drift to across schemas.
const char* DriftedType(const char* canonical, Rng& rng) {
  struct DriftRule {
    const char* from;
    std::array<const char*, 2> to;
  };
  static constexpr DriftRule kRules[] = {
      {"INT", {"BIGINT", "SMALLINT"}},
      {"VARCHAR", {"TEXT", "NVARCHAR"}},
      {"DATE", {"DATETIME", "TIMESTAMP"}},
      {"DATETIME", {"TIMESTAMP", "DATE"}},
      {"DECIMAL", {"NUMERIC", "FLOAT"}},
      {"TEXT", {"VARCHAR", "CLOB"}},
  };
  for (const DriftRule& rule : kRules) {
    if (std::string_view(rule.from) == canonical) {
      return rule.to[rng.NextBounded(2)];
    }
  }
  return canonical;
}

/// One planned attribute slot: either a shared concept (field index into
/// kFields + rendered spelling) or a private unlinkable attribute.
struct AttrPlan {
  bool shared = false;
  size_t field = 0;  // kFields index; meaningful only when shared.
  std::string name;
  std::string raw_type;
  schema::Constraint constraint = schema::Constraint::kNone;
};

struct TablePlan {
  std::string name;
  std::vector<AttrPlan> attrs;
};

/// The structural plan: every name, type, and dropout decision, plus
/// the scenario built from it. Drawn from Rng(seed) in one fixed
/// sequential pass — instance values use an independent stream, so the
/// plan is identical whether or not files get rendered.
struct CorpusPlan {
  std::vector<std::vector<TablePlan>> tables;  // [schema][table]
  MatchingScenario scenario;
};

std::string VariantName(const char* alias, size_t variant) {
  return variant == 0 ? std::string(alias)
                      : StrFormat("%s_%zu", alias, variant);
}

CorpusPlan BuildPlan(const CorpusOptions& options) {
  COLSCOPE_CHECK(options.num_schemas >= 2);
  COLSCOPE_CHECK(options.tables_per_schema >= 1);
  COLSCOPE_CHECK(options.attrs_per_table >= 1);
  Rng rng(options.seed);

  CorpusPlan plan;
  plan.tables.resize(options.num_schemas);
  for (size_t s = 0; s < options.num_schemas; ++s) {
    const char* const* pool = kPrivatePools[s % kNumPrivatePools];
    auto& tables = plan.tables[s];
    tables.resize(options.tables_per_schema);
    for (size_t t = 0; t < options.tables_per_schema; ++t) {
      const EntitySpec& entity = kEntities[t % std::size(kEntities)];
      const size_t table_variant = t / std::size(kEntities);
      const int table_alias =
          (rng.NextDouble() < options.rename_probability)
              ? 1 + static_cast<int>(rng.NextBounded(2))
              : 0;
      tables[t].name = VariantName(entity.aliases[table_alias], table_variant);
      tables[t].attrs.resize(options.attrs_per_table);
      for (size_t a = 0; a < options.attrs_per_table; ++a) {
        AttrPlan& attr = tables[t].attrs[a];
        if (rng.NextDouble() < options.dropout_probability) {
          // Dropped: a private attribute keeps the table shape but is
          // unlinkable — the corpus' unlinkable-overhead axis.
          attr.shared = false;
          attr.name = StrFormat("%s_%s_%zu", pool[rng.NextBounded(8)],
                                pool[rng.NextBounded(8)], a);
          attr.raw_type = (a % 2 == 0) ? "VARCHAR" : "DECIMAL";
          continue;
        }
        const size_t field = a % std::size(kFields);
        const size_t attr_variant = a / std::size(kFields);
        const FieldSpec& spec = kFields[field];
        const int alias = (rng.NextDouble() < options.rename_probability)
                              ? 1 + static_cast<int>(rng.NextBounded(2))
                              : 0;
        attr.shared = true;
        attr.field = field;
        attr.name = VariantName(spec.aliases[alias], attr_variant);
        attr.raw_type =
            (rng.NextDouble() < options.type_drift_probability)
                ? DriftedType(spec.type, rng)
                : spec.type;
        if (a == 0 && spec.kind == ValueKind::kSequence) {
          attr.constraint = schema::Constraint::kPrimaryKey;
        }
      }
    }
  }

  // Materialize the schema set.
  std::vector<schema::Schema> schemas;
  schemas.reserve(options.num_schemas);
  for (size_t s = 0; s < options.num_schemas; ++s) {
    schema::Schema out(StrFormat("SYN%03zu", s));
    for (const TablePlan& table_plan : plan.tables[s]) {
      schema::Table table;
      table.name = table_plan.name;
      for (const AttrPlan& attr_plan : table_plan.attrs) {
        schema::Attribute attr;
        attr.name = attr_plan.name;
        attr.table_name = table.name;
        attr.raw_type = attr_plan.raw_type;
        attr.type = schema::ParseDataType(attr.raw_type);
        attr.constraint = attr_plan.constraint;
        table.attributes.push_back(std::move(attr));
      }
      COLSCOPE_CHECK(out.AddTable(std::move(table)).ok());
    }
    schemas.push_back(std::move(out));
  }
  plan.scenario.name = StrFormat(
      "Corpus(k=%zu,t=%zu,a=%zu,seed=%llu)", options.num_schemas,
      options.tables_per_schema, options.attrs_per_table,
      static_cast<unsigned long long>(options.seed));
  plan.scenario.set = schema::SchemaSet(std::move(schemas));

  // Ground truth. The plan layout is positional — table t / slot a name
  // the same concept in every schema — so refs are direct and the
  // pairwise closure needs no name resolution: a slot shared in both
  // schemas is a linkage (II when spelled identically, IS otherwise),
  // and two tables link when they share at least one linked slot.
  for (size_t sa = 0; sa < options.num_schemas; ++sa) {
    for (size_t sb = sa + 1; sb < options.num_schemas; ++sb) {
      for (size_t t = 0; t < options.tables_per_schema; ++t) {
        const TablePlan& ta = plan.tables[sa][t];
        const TablePlan& tb = plan.tables[sb][t];
        bool any_linked = false;
        for (size_t a = 0; a < options.attrs_per_table; ++a) {
          if (!ta.attrs[a].shared || !tb.attrs[a].shared) continue;
          const LinkType type = (ta.attrs[a].name == tb.attrs[a].name)
                                    ? LinkType::kInterIdentical
                                    : LinkType::kInterSubTyped;
          COLSCOPE_CHECK(
              plan.scenario.truth
                  .Add(type,
                       schema::AttributeRef(static_cast<int>(sa),
                                            static_cast<int>(t),
                                            static_cast<int>(a)),
                       schema::AttributeRef(static_cast<int>(sb),
                                            static_cast<int>(t),
                                            static_cast<int>(a)))
                  .ok());
          any_linked = true;
        }
        if (!any_linked) continue;
        const LinkType type = (ta.name == tb.name)
                                  ? LinkType::kInterIdentical
                                  : LinkType::kInterSubTyped;
        COLSCOPE_CHECK(plan.scenario.truth
                           .Add(type,
                                schema::TableRef(static_cast<int>(sa),
                                                 static_cast<int>(t)),
                                schema::TableRef(static_cast<int>(sb),
                                                 static_cast<int>(t)))
                           .ok());
      }
    }
  }
  return plan;
}

const char* Pick(Rng& rng, const std::vector<const char*>& pool) {
  return pool[rng.NextBounded(pool.size())];
}

std::string MakeValue(ValueKind kind, size_t table_index, size_t row,
                      Rng& rng) {
  static const std::vector<const char*> kNames = {
      "alice", "bruno", "carla", "dmitri", "elena", "farid", "greta", "hiro",
      "ines", "jonas", "keiko", "liam", "mara", "nadia", "otto", "priya"};
  static const std::vector<const char*> kCities = {
      "lisbon", "oslo", "kyoto", "quito", "perth", "tunis", "leipzig",
      "galway", "varna", "cusco", "bergen", "matera"};
  static const std::vector<const char*> kCountries = {
      "portugal", "norway", "japan", "ecuador", "australia", "tunisia",
      "germany", "ireland", "bulgaria", "peru"};
  static const std::vector<const char*> kStreets = {
      "elm street", "oak avenue", "birch lane", "cedar road", "maple way",
      "willow court"};
  static const std::vector<const char*> kStatuses = {
      "open", "closed", "pending", "shipped", "cancelled", "paid"};
  static const std::vector<const char*> kWords = {
      "ledger", "ration", "cobalt", "meridian", "quartz", "harbor",
      "lantern", "velvet", "orchid", "timber", "saffron", "granite"};
  static const std::vector<const char*> kDomains = {
      "example.org", "mail.test", "corp.example", "data.test"};
  switch (kind) {
    case ValueKind::kSequence:
      return StrFormat("%zu", 1000 * (table_index + 1) + row + 1);
    case ValueKind::kName:
      return Pick(rng, kNames);
    case ValueKind::kCode:
      return StrFormat("%c%c-%04llu",
                       static_cast<char>('A' + rng.NextBounded(26)),
                       static_cast<char>('A' + rng.NextBounded(26)),
                       static_cast<unsigned long long>(rng.NextBounded(10000)));
    case ValueKind::kEmail:
      return StrFormat("%s@%s", Pick(rng, kNames), Pick(rng, kDomains));
    case ValueKind::kPhone:
      return StrFormat("+%llu-%03llu-%04llu",
                       static_cast<unsigned long long>(1 + rng.NextBounded(89)),
                       static_cast<unsigned long long>(rng.NextBounded(1000)),
                       static_cast<unsigned long long>(rng.NextBounded(10000)));
    case ValueKind::kStreet:
      return StrFormat("%llu %s",
                       static_cast<unsigned long long>(1 + rng.NextBounded(99)),
                       Pick(rng, kStreets));
    case ValueKind::kCity:
      return Pick(rng, kCities);
    case ValueKind::kCountry:
      return Pick(rng, kCountries);
    case ValueKind::kPostal:
      return StrFormat("%05llu",
                       static_cast<unsigned long long>(rng.NextBounded(100000)));
    case ValueKind::kDate:
      return StrFormat("20%02llu-%02llu-%02llu",
                       static_cast<unsigned long long>(rng.NextBounded(30)),
                       static_cast<unsigned long long>(1 + rng.NextBounded(12)),
                       static_cast<unsigned long long>(1 + rng.NextBounded(28)));
    case ValueKind::kDateTime:
      return StrFormat("20%02llu-%02llu-%02llu %02llu:%02llu:%02llu",
                       static_cast<unsigned long long>(rng.NextBounded(30)),
                       static_cast<unsigned long long>(1 + rng.NextBounded(12)),
                       static_cast<unsigned long long>(1 + rng.NextBounded(28)),
                       static_cast<unsigned long long>(rng.NextBounded(24)),
                       static_cast<unsigned long long>(rng.NextBounded(60)),
                       static_cast<unsigned long long>(rng.NextBounded(60)));
    case ValueKind::kStatus:
      return Pick(rng, kStatuses);
    case ValueKind::kMoney:
      return StrFormat("%llu.%02llu",
                       static_cast<unsigned long long>(rng.NextBounded(10000)),
                       static_cast<unsigned long long>(rng.NextBounded(100)));
    case ValueKind::kCount:
      return StrFormat("%llu",
                       static_cast<unsigned long long>(rng.NextBounded(500)));
    case ValueKind::kRate:
      return StrFormat("0.%02llu",
                       static_cast<unsigned long long>(rng.NextBounded(100)));
    case ValueKind::kText:
      return StrFormat("%s %s", Pick(rng, kWords), Pick(rng, kWords));
  }
  return "";
}

/// Typo injection: duplicates or deletes one character. Values contain
/// no delimiters or quotes, and mutations introduce none, so the CSVs
/// stay well-formed.
std::string ApplyNoise(std::string value, Rng& rng) {
  if (value.empty()) return value;
  const size_t pos = rng.NextBounded(value.size());
  if (rng.NextBounded(2) == 0) {
    value.insert(value.begin() + static_cast<long>(pos), value[pos]);
  } else if (value.size() > 1) {
    value.erase(value.begin() + static_cast<long>(pos));
  }
  return value;
}

}  // namespace

size_t CorpusEntityVocabularySize() { return std::size(kEntities); }
size_t CorpusFieldVocabularySize() { return std::size(kFields); }

MatchingScenario BuildCorpusScenario(const CorpusOptions& options) {
  return BuildPlan(options).scenario;
}

SyntheticCorpus BuildSyntheticCorpus(const CorpusOptions& options) {
  CorpusPlan plan = BuildPlan(options);
  SyntheticCorpus corpus;

  // Instance values draw from their own stream so skipping the
  // rendering (BuildCorpusScenario) cannot shift the structure.
  Rng value_rng(options.seed ^ 0x9E3779B97F4A7C15ull);
  for (size_t s = 0; s < options.num_schemas; ++s) {
    const schema::Schema& sch = plan.scenario.set.schema(static_cast<int>(s));
    corpus.files.push_back(
        {StrFormat("%s.sql", sch.name().c_str()), schema::WriteDdl(sch)});
    for (size_t t = 0; t < plan.tables[s].size(); ++t) {
      const TablePlan& table = plan.tables[s][t];
      std::string csv;
      for (size_t a = 0; a < table.attrs.size(); ++a) {
        if (a > 0) csv += ',';
        csv += table.attrs[a].name;
      }
      csv += '\n';
      for (size_t row = 0; row < options.rows_per_table; ++row) {
        for (size_t a = 0; a < table.attrs.size(); ++a) {
          const AttrPlan& attr = table.attrs[a];
          const ValueKind kind =
              attr.shared ? kFields[attr.field].kind : ValueKind::kText;
          std::string value = MakeValue(kind, t, row, value_rng);
          if (value_rng.NextDouble() < options.value_noise_probability) {
            value = ApplyNoise(std::move(value), value_rng);
          }
          if (a > 0) csv += ',';
          csv += value;
        }
        csv += '\n';
      }
      corpus.files.push_back(
          {StrFormat("%s__%s.csv", sch.name().c_str(), table.name.c_str()),
           std::move(csv)});
    }
  }

  std::string labels;
  labels += "# colscope gen-corpus v1\n";
  labels += StrFormat(
      "# schemas=%zu tables_per_schema=%zu attrs_per_table=%zu "
      "rows_per_table=%zu\n",
      options.num_schemas, options.tables_per_schema, options.attrs_per_table,
      options.rows_per_table);
  labels += StrFormat(
      "# rename=%g drift=%g dropout=%g noise=%g seed=%llu\n",
      options.rename_probability, options.type_drift_probability,
      options.dropout_probability, options.value_noise_probability,
      static_cast<unsigned long long>(options.seed));
  labels += "# type\telement_a\telement_b\n";
  for (const Linkage& linkage : plan.scenario.truth.linkages()) {
    labels += StrFormat("%s\t%s\t%s\n", LinkTypeToString(linkage.type),
                        plan.scenario.set.QualifiedName(linkage.a).c_str(),
                        plan.scenario.set.QualifiedName(linkage.b).c_str());
  }
  corpus.labels_tsv = std::move(labels);
  corpus.scenario = std::move(plan.scenario);
  return corpus;
}

}  // namespace colscope::datasets
