#ifndef COLSCOPE_DATASETS_LINKAGE_H_
#define COLSCOPE_DATASETS_LINKAGE_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "schema/schema_set.h"

namespace colscope::datasets {

/// Linkage type taxonomy of Section 2.1. Inter-identical covers
/// one-to-one semantics; inter-sub-typed covers partial information
/// intersection (attribute splits/merges) and conceptually-similar
/// tables.
enum class LinkType {
  kInterIdentical,
  kInterSubTyped,
};

const char* LinkTypeToString(LinkType type);

/// One annotated schema linkage (t_{k_i}, t_{m_l}) or (a_{k_j}, a_{m_n}).
/// Symmetric: (a, b) and (b, a) denote the same linkage; the canonical
/// form stores the smaller ElementRef first.
struct Linkage {
  LinkType type;
  schema::ElementRef a;
  schema::ElementRef b;

  /// Canonicalizes so that a < b.
  static Linkage Make(LinkType type, schema::ElementRef x,
                      schema::ElementRef y);

  friend bool operator==(const Linkage& l, const Linkage& r) {
    return l.type == r.type && l.a == r.a && l.b == r.b;
  }
  friend bool operator<(const Linkage& l, const Linkage& r) {
    if (!(l.a == r.a)) return l.a < r.a;
    if (!(l.b == r.b)) return l.b < r.b;
    return static_cast<int>(l.type) < static_cast<int>(r.type);
  }
};

/// Per-schema-pair linkage counts (the II / IS columns of Table 3).
struct PairLinkageCounts {
  size_t inter_identical = 0;
  size_t inter_sub_typed = 0;
  size_t total() const { return inter_identical + inter_sub_typed; }
};

/// The annotated ground-truth linkage set L(S) for a schema set, plus
/// the linkability labels it induces (Definition 1: an element is
/// linkable iff it occurs in at least one linkage pair).
class GroundTruth {
 public:
  GroundTruth() = default;

  /// Adds a linkage; intra-schema pairs and duplicates are rejected.
  Status Add(LinkType type, schema::ElementRef a, schema::ElementRef b);

  /// Convenience: resolves dotted paths ("TABLE" or "TABLE.ATTR") against
  /// `set` and adds the linkage.
  Status Add(const schema::SchemaSet& set, LinkType type,
             std::string_view schema_a, std::string_view path_a,
             std::string_view schema_b, std::string_view path_b);

  const std::vector<Linkage>& linkages() const { return linkages_; }
  size_t size() const { return linkages_.size(); }

  /// True iff the (unordered) element pair occurs in L(S), any type.
  bool ContainsPair(schema::ElementRef a, schema::ElementRef b) const;

  /// Definition 1: linkable iff the element occurs in some linkage.
  bool IsLinkable(const schema::ElementRef& ref) const;

  /// Per-element linkability labels in the flattened order of `set`
  /// (true = linkable). The paper's binary classification target.
  std::vector<bool> LinkabilityLabels(const schema::SchemaSet& set) const;

  /// Number of linkable elements within one schema.
  size_t NumLinkableInSchema(int schema_index) const;

  /// II/IS counts for the (unordered) schema pair {schema_a, schema_b}.
  PairLinkageCounts CountsForSchemaPair(int schema_a, int schema_b) const;

  /// Aggregate II/IS counts over all pairs.
  PairLinkageCounts TotalCounts() const;

 private:
  std::vector<Linkage> linkages_;
  std::set<Linkage> index_;
  std::set<schema::ElementRef> linkable_;
};

/// A complete multi-source matching scenario: the schema set S and its
/// annotated linkage ground truth L(S).
struct MatchingScenario {
  std::string name;
  schema::SchemaSet set;
  GroundTruth truth;

  /// Unlinkable overhead (|S| - |S'|) / |S'| of Definition 2, in [0, inf).
  double UnlinkableOverhead() const;
};

}  // namespace colscope::datasets

#endif  // COLSCOPE_DATASETS_LINKAGE_H_
