#include "datasets/linkage.h"

namespace colscope::datasets {

const char* LinkTypeToString(LinkType type) {
  switch (type) {
    case LinkType::kInterIdentical:
      return "inter-identical";
    case LinkType::kInterSubTyped:
      return "inter-sub-typed";
  }
  return "unknown";
}

Linkage Linkage::Make(LinkType type, schema::ElementRef x,
                      schema::ElementRef y) {
  Linkage l;
  l.type = type;
  if (y < x) std::swap(x, y);
  l.a = x;
  l.b = y;
  return l;
}

Status GroundTruth::Add(LinkType type, schema::ElementRef a,
                        schema::ElementRef b) {
  if (a.schema == b.schema) {
    return Status::InvalidArgument(
        "linkages are inter-schema only (Definition of L(S))");
  }
  if (a.is_table() != b.is_table()) {
    return Status::InvalidArgument(
        "linkages pair tables with tables and attributes with attributes");
  }
  Linkage l = Linkage::Make(type, a, b);
  if (index_.count(l) > 0) {
    return Status::AlreadyExists("duplicate linkage");
  }
  // Also reject the same pair under the other type: a pair has one type.
  Linkage other = l;
  other.type = (type == LinkType::kInterIdentical)
                   ? LinkType::kInterSubTyped
                   : LinkType::kInterIdentical;
  if (index_.count(other) > 0) {
    return Status::AlreadyExists("pair already annotated with another type");
  }
  linkages_.push_back(l);
  index_.insert(l);
  linkable_.insert(l.a);
  linkable_.insert(l.b);
  return Status::Ok();
}

Status GroundTruth::Add(const schema::SchemaSet& set, LinkType type,
                        std::string_view schema_a, std::string_view path_a,
                        std::string_view schema_b, std::string_view path_b) {
  Result<schema::ElementRef> a = set.Resolve(schema_a, path_a);
  if (!a.ok()) return a.status();
  Result<schema::ElementRef> b = set.Resolve(schema_b, path_b);
  if (!b.ok()) return b.status();
  return Add(type, *a, *b);
}

bool GroundTruth::ContainsPair(schema::ElementRef a,
                               schema::ElementRef b) const {
  for (LinkType t : {LinkType::kInterIdentical, LinkType::kInterSubTyped}) {
    if (index_.count(Linkage::Make(t, a, b)) > 0) return true;
  }
  return false;
}

bool GroundTruth::IsLinkable(const schema::ElementRef& ref) const {
  return linkable_.count(ref) > 0;
}

std::vector<bool> GroundTruth::LinkabilityLabels(
    const schema::SchemaSet& set) const {
  std::vector<bool> labels;
  labels.reserve(set.num_elements());
  for (const schema::ElementRef& ref : set.elements()) {
    labels.push_back(IsLinkable(ref));
  }
  return labels;
}

size_t GroundTruth::NumLinkableInSchema(int schema_index) const {
  size_t n = 0;
  for (const schema::ElementRef& ref : linkable_) {
    if (ref.schema == schema_index) ++n;
  }
  return n;
}

PairLinkageCounts GroundTruth::CountsForSchemaPair(int schema_a,
                                                   int schema_b) const {
  PairLinkageCounts counts;
  for (const Linkage& l : linkages_) {
    const bool match = (l.a.schema == schema_a && l.b.schema == schema_b) ||
                       (l.a.schema == schema_b && l.b.schema == schema_a);
    if (!match) continue;
    if (l.type == LinkType::kInterIdentical) {
      ++counts.inter_identical;
    } else {
      ++counts.inter_sub_typed;
    }
  }
  return counts;
}

PairLinkageCounts GroundTruth::TotalCounts() const {
  PairLinkageCounts counts;
  for (const Linkage& l : linkages_) {
    if (l.type == LinkType::kInterIdentical) {
      ++counts.inter_identical;
    } else {
      ++counts.inter_sub_typed;
    }
  }
  return counts;
}

double MatchingScenario::UnlinkableOverhead() const {
  size_t linkable = 0;
  for (const schema::ElementRef& ref : set.elements()) {
    if (truth.IsLinkable(ref)) ++linkable;
  }
  if (linkable == 0) return 0.0;
  const size_t total = set.num_elements();
  return static_cast<double>(total - linkable) / static_cast<double>(linkable);
}

}  // namespace colscope::datasets
