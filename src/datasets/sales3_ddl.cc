#include "datasets/sales3.h"

namespace colscope::datasets {

// TPC-H (dbgen) schema: 8 tables, 61 columns.
const char* TpchDdl() {
  return R"sql(
CREATE TABLE region (
  r_regionkey  INT PRIMARY KEY,
  r_name       CHAR(25),
  r_comment    VARCHAR(152)
);

CREATE TABLE nation (
  n_nationkey  INT PRIMARY KEY,
  n_name       CHAR(25),
  n_regionkey  INT REFERENCES region(r_regionkey),
  n_comment    VARCHAR(152)
);

CREATE TABLE supplier (
  s_suppkey    INT PRIMARY KEY,
  s_name       CHAR(25),
  s_address    VARCHAR(40),
  s_nationkey  INT REFERENCES nation(n_nationkey),
  s_phone      CHAR(15),
  s_acctbal    DECIMAL(15,2),
  s_comment    VARCHAR(101)
);

CREATE TABLE part (
  p_partkey      INT PRIMARY KEY,
  p_name         VARCHAR(55),
  p_mfgr         CHAR(25),
  p_brand        CHAR(10),
  p_type         VARCHAR(25),
  p_size         INT,
  p_container    CHAR(10),
  p_retailprice  DECIMAL(15,2),
  p_comment      VARCHAR(23)
);

CREATE TABLE partsupp (
  ps_partkey     INT REFERENCES part(p_partkey),
  ps_suppkey     INT REFERENCES supplier(s_suppkey),
  ps_availqty    INT,
  ps_supplycost  DECIMAL(15,2),
  ps_comment     VARCHAR(199)
);

CREATE TABLE customer (
  c_custkey     INT PRIMARY KEY,
  c_name        VARCHAR(25),
  c_address     VARCHAR(40),
  c_nationkey   INT REFERENCES nation(n_nationkey),
  c_phone       CHAR(15),
  c_acctbal     DECIMAL(15,2),
  c_mktsegment  CHAR(10),
  c_comment     VARCHAR(117)
);

CREATE TABLE orders (
  o_orderkey       INT PRIMARY KEY,
  o_custkey        INT REFERENCES customer(c_custkey),
  o_orderstatus    CHAR(1),
  o_totalprice     DECIMAL(15,2),
  o_orderdate      DATE,
  o_orderpriority  CHAR(15),
  o_clerk          CHAR(15),
  o_shippriority   INT,
  o_comment        VARCHAR(79)
);

CREATE TABLE lineitem (
  l_orderkey       INT REFERENCES orders(o_orderkey),
  l_partkey        INT REFERENCES part(p_partkey),
  l_suppkey        INT REFERENCES supplier(s_suppkey),
  l_linenumber     INT,
  l_quantity       DECIMAL(15,2),
  l_extendedprice  DECIMAL(15,2),
  l_discount       DECIMAL(15,2),
  l_tax            DECIMAL(15,2),
  l_returnflag     CHAR(1),
  l_linestatus     CHAR(1),
  l_shipdate       DATE,
  l_commitdate     DATE,
  l_receiptdate    DATE,
  l_shipinstruct   CHAR(25),
  l_shipmode       CHAR(10),
  l_comment        VARCHAR(44)
);
)sql";
}

// Northwind core schema (Microsoft sample): 11 tables.
const char* NorthwindDdl() {
  return R"sql(
CREATE TABLE Customers (
  CustomerID    CHAR(5) PRIMARY KEY,
  CompanyName   VARCHAR(40),
  ContactName   VARCHAR(30),
  ContactTitle  VARCHAR(30),
  Address       VARCHAR(60),
  City          VARCHAR(15),
  Region        VARCHAR(15),
  PostalCode    VARCHAR(10),
  Country       VARCHAR(15),
  Phone         VARCHAR(24),
  Fax           VARCHAR(24)
);

CREATE TABLE Employees (
  EmployeeID  INT PRIMARY KEY,
  LastName    VARCHAR(20),
  FirstName   VARCHAR(10),
  Title       VARCHAR(30),
  BirthDate   DATE,
  HireDate    DATE,
  City        VARCHAR(15),
  Country     VARCHAR(15),
  ReportsTo   INT REFERENCES Employees(EmployeeID)
);

CREATE TABLE Suppliers (
  SupplierID    INT PRIMARY KEY,
  CompanyName   VARCHAR(40),
  ContactName   VARCHAR(30),
  Address       VARCHAR(60),
  City          VARCHAR(15),
  PostalCode    VARCHAR(10),
  Country       VARCHAR(15),
  Phone         VARCHAR(24),
  HomePage      VARCHAR(200)
);

CREATE TABLE Categories (
  CategoryID    INT PRIMARY KEY,
  CategoryName  VARCHAR(15),
  Description   TEXT
);

CREATE TABLE Products (
  ProductID        INT PRIMARY KEY,
  ProductName      VARCHAR(40),
  SupplierID       INT REFERENCES Suppliers(SupplierID),
  CategoryID       INT REFERENCES Categories(CategoryID),
  QuantityPerUnit  VARCHAR(20),
  UnitPrice        DECIMAL(10,2),
  UnitsInStock     SMALLINT,
  UnitsOnOrder     SMALLINT,
  ReorderLevel     SMALLINT,
  Discontinued     BIT
);

CREATE TABLE Orders (
  OrderID         INT PRIMARY KEY,
  CustomerID      CHAR(5) REFERENCES Customers(CustomerID),
  EmployeeID      INT REFERENCES Employees(EmployeeID),
  OrderDate       DATE,
  RequiredDate    DATE,
  ShippedDate     DATE,
  ShipVia         INT REFERENCES Shippers(ShipperID),
  Freight         DECIMAL(10,2),
  ShipName        VARCHAR(40),
  ShipAddress     VARCHAR(60),
  ShipCity        VARCHAR(15),
  ShipCountry     VARCHAR(15)
);

CREATE TABLE OrderDetails (
  OrderID    INT REFERENCES Orders(OrderID),
  ProductID  INT REFERENCES Products(ProductID),
  UnitPrice  DECIMAL(10,2),
  Quantity   SMALLINT,
  Discount   REAL
);

CREATE TABLE Shippers (
  ShipperID    INT PRIMARY KEY,
  CompanyName  VARCHAR(40),
  Phone        VARCHAR(24)
);

CREATE TABLE Territories (
  TerritoryID           VARCHAR(20) PRIMARY KEY,
  TerritoryDescription  VARCHAR(50),
  RegionID              INT
);

CREATE TABLE EmployeeTerritories (
  EmployeeID   INT REFERENCES Employees(EmployeeID),
  TerritoryID  VARCHAR(20) REFERENCES Territories(TerritoryID)
);

CREATE TABLE CustomerDemographics (
  CustomerTypeID  CHAR(10) PRIMARY KEY,
  CustomerDesc    TEXT
);
)sql";
}

// Star Schema Benchmark (O'Neil et al.): 5 tables, denormalized.
const char* SsbDdl() {
  return R"sql(
CREATE TABLE ssb_customer (
  c_custkey     INT PRIMARY KEY,
  c_name        VARCHAR(25),
  c_address     VARCHAR(25),
  c_city        CHAR(10),
  c_nation      CHAR(15),
  c_region      CHAR(12),
  c_phone       CHAR(15),
  c_mktsegment  CHAR(10)
);

CREATE TABLE ssb_supplier (
  s_suppkey  INT PRIMARY KEY,
  s_name     CHAR(25),
  s_address  VARCHAR(25),
  s_city     CHAR(10),
  s_nation   CHAR(15),
  s_region   CHAR(12),
  s_phone    CHAR(15)
);

CREATE TABLE ssb_part (
  p_partkey    INT PRIMARY KEY,
  p_name       VARCHAR(22),
  p_mfgr       CHAR(6),
  p_category   CHAR(7),
  p_brand      CHAR(9),
  p_color      VARCHAR(11),
  p_type       VARCHAR(25),
  p_size       INT,
  p_container  CHAR(10)
);

CREATE TABLE ssb_date (
  d_datekey          INT PRIMARY KEY,
  d_date             CHAR(18),
  d_dayofweek        CHAR(9),
  d_month            CHAR(9),
  d_year             INT,
  d_yearmonthnum     INT,
  d_weeknuminyear    INT,
  d_holidayfl        BIT,
  d_lastdayinmonthfl BIT
);

CREATE TABLE ssb_lineorder (
  lo_orderkey       INT,
  lo_linenumber     INT,
  lo_custkey        INT REFERENCES ssb_customer(c_custkey),
  lo_partkey        INT REFERENCES ssb_part(p_partkey),
  lo_suppkey        INT REFERENCES ssb_supplier(s_suppkey),
  lo_orderdate      INT REFERENCES ssb_date(d_datekey),
  lo_orderpriority  CHAR(15),
  lo_shippriority   CHAR(1),
  lo_quantity       INT,
  lo_extendedprice  DECIMAL(15,2),
  lo_ordtotalprice  DECIMAL(15,2),
  lo_discount       INT,
  lo_revenue        DECIMAL(15,2),
  lo_supplycost     DECIMAL(15,2),
  lo_tax            INT,
  lo_commitdate     INT,
  lo_shipmode       CHAR(10)
);
)sql";
}

}  // namespace colscope::datasets
