#include "datasets/oc3.h"

namespace colscope::datasets {

// Reconstruction of the Oracle "Customer Orders" sample schema
// (github.com/oracle-samples/db-sample-schemas): 7 tables, 43 attributes.
const char* OracleDdl() {
  return R"sql(
-- OC-Oracle: Oracle Customer Orders sample schema (CO).
CREATE TABLE CUSTOMERS (
  CUSTOMER_ID    NUMBER PRIMARY KEY,
  EMAIL_ADDRESS  VARCHAR2(255) NOT NULL,
  FULL_NAME      VARCHAR2(255) NOT NULL
);

CREATE TABLE STORES (
  STORE_ID           NUMBER PRIMARY KEY,
  STORE_NAME         VARCHAR2(255) NOT NULL,
  WEB_ADDRESS        VARCHAR2(100),
  PHYSICAL_ADDRESS   VARCHAR2(512),
  LATITUDE           NUMBER,
  LONGITUDE          NUMBER,
  LOGO               BLOB,
  LOGO_MIME_TYPE     VARCHAR2(512),
  LOGO_FILENAME      VARCHAR2(512),
  LOGO_CHARSET       VARCHAR2(512),
  LOGO_LAST_UPDATED  DATE
);

CREATE TABLE PRODUCTS (
  PRODUCT_ID          NUMBER PRIMARY KEY,
  PRODUCT_NAME        VARCHAR2(255) NOT NULL,
  UNIT_PRICE          NUMBER(10,2),
  PRODUCT_DETAILS     BLOB,
  PRODUCT_IMAGE       BLOB,
  IMAGE_MIME_TYPE     VARCHAR2(512),
  IMAGE_FILENAME      VARCHAR2(512),
  IMAGE_CHARSET       VARCHAR2(512),
  IMAGE_LAST_UPDATED  DATE
);

CREATE TABLE ORDERS (
  ORDER_ID        NUMBER PRIMARY KEY,
  ORDER_DATETIME  DATE NOT NULL,
  CUSTOMER_ID     NUMBER NOT NULL REFERENCES CUSTOMERS(CUSTOMER_ID),
  ORDER_STATUS    VARCHAR2(10) NOT NULL,
  STORE_ID        NUMBER NOT NULL REFERENCES STORES(STORE_ID)
);

CREATE TABLE SHIPMENTS (
  SHIPMENT_ID       NUMBER PRIMARY KEY,
  STORE_ID          NUMBER NOT NULL REFERENCES STORES(STORE_ID),
  CUSTOMER_ID       NUMBER NOT NULL REFERENCES CUSTOMERS(CUSTOMER_ID),
  DELIVERY_ADDRESS  VARCHAR2(512) NOT NULL,
  SHIPMENT_STATUS   VARCHAR2(100) NOT NULL
);

CREATE TABLE ORDER_ITEMS (
  ORDER_ID      NUMBER NOT NULL REFERENCES ORDERS(ORDER_ID),
  LINE_ITEM_ID  NUMBER NOT NULL,
  PRODUCT_ID    NUMBER NOT NULL REFERENCES PRODUCTS(PRODUCT_ID),
  UNIT_PRICE    NUMBER(10,2),
  QUANTITY      NUMBER,
  SHIPMENT_ID   NUMBER REFERENCES SHIPMENTS(SHIPMENT_ID)
);

CREATE TABLE INVENTORY (
  INVENTORY_ID       NUMBER PRIMARY KEY,
  STORE_ID           NUMBER NOT NULL REFERENCES STORES(STORE_ID),
  PRODUCT_ID         NUMBER NOT NULL REFERENCES PRODUCTS(PRODUCT_ID),
  PRODUCT_INVENTORY  NUMBER NOT NULL
);
)sql";
}

// Reconstruction of the MySQL "classicmodels" sample database
// (mysqltutorial.org): 8 tables, 59 attributes.
const char* MySqlDdl() {
  return R"sql(
-- OC-MySQL: classicmodels sample database.
CREATE TABLE customers (
  customerNumber          INT PRIMARY KEY,
  customerName            VARCHAR(50) NOT NULL,
  contactLastName         VARCHAR(50) NOT NULL,
  contactFirstName        VARCHAR(50) NOT NULL,
  phone                   VARCHAR(50) NOT NULL,
  addressLine1            VARCHAR(50) NOT NULL,
  addressLine2            VARCHAR(50),
  city                    VARCHAR(50) NOT NULL,
  state                   VARCHAR(50),
  postalCode              VARCHAR(15),
  country                 VARCHAR(50) NOT NULL,
  salesRepEmployeeNumber  INT REFERENCES employees(employeeNumber),
  creditLimit             DECIMAL(10,2)
);

CREATE TABLE employees (
  employeeNumber  INT PRIMARY KEY,
  lastName        VARCHAR(50) NOT NULL,
  firstName       VARCHAR(50) NOT NULL,
  extension       VARCHAR(10) NOT NULL,
  email           VARCHAR(100) NOT NULL,
  officeCode      VARCHAR(10) NOT NULL REFERENCES offices(officeCode),
  reportsTo       INT REFERENCES employees(employeeNumber),
  jobTitle        VARCHAR(50) NOT NULL
);

CREATE TABLE offices (
  officeCode    VARCHAR(10) PRIMARY KEY,
  city          VARCHAR(50) NOT NULL,
  phone         VARCHAR(50) NOT NULL,
  addressLine1  VARCHAR(50) NOT NULL,
  addressLine2  VARCHAR(50),
  state         VARCHAR(50),
  country       VARCHAR(50) NOT NULL,
  postalCode    VARCHAR(15) NOT NULL,
  territory     VARCHAR(10) NOT NULL
);

CREATE TABLE orders (
  orderNumber     INT PRIMARY KEY,
  orderDate       DATE NOT NULL,
  requiredDate    DATE NOT NULL,
  shippedDate     DATE,
  status          VARCHAR(15) NOT NULL,
  comments        TEXT,
  customerNumber  INT NOT NULL REFERENCES customers(customerNumber)
);

CREATE TABLE orderdetails (
  orderNumber      INT NOT NULL REFERENCES orders(orderNumber),
  productCode      VARCHAR(15) NOT NULL REFERENCES products(productCode),
  quantityOrdered  INT NOT NULL,
  priceEach        DECIMAL(10,2) NOT NULL,
  orderLineNumber  SMALLINT NOT NULL
);

CREATE TABLE payments (
  customerNumber  INT NOT NULL REFERENCES customers(customerNumber),
  checkNumber     VARCHAR(50) NOT NULL,
  paymentDate     DATE NOT NULL,
  amount          DECIMAL(10,2) NOT NULL
);

CREATE TABLE productlines (
  productLine      VARCHAR(50) PRIMARY KEY,
  textDescription  VARCHAR(4000),
  htmlDescription  MEDIUMTEXT,
  image            BLOB
);

CREATE TABLE products (
  productCode         VARCHAR(15) PRIMARY KEY,
  productName         VARCHAR(70) NOT NULL,
  productLine         VARCHAR(50) NOT NULL REFERENCES productlines(productLine),
  productScale        VARCHAR(10) NOT NULL,
  productVendor       VARCHAR(50) NOT NULL,
  productDescription  TEXT NOT NULL,
  quantityInStock     SMALLINT NOT NULL,
  buyPrice            DECIMAL(10,2) NOT NULL,
  MSRP                DECIMAL(10,2) NOT NULL
);
)sql";
}

// SAP-HANA-style order/customer tutorial schema (EPM/SHINE-flavoured):
// 3 wide, denormalized tables, 40 attributes — the paper's OC-HANA counts.
const char* HanaDdl() {
  return R"sql(
-- OC-HANA: SAP HANA database-fundamentals tutorial schema.
CREATE TABLE BUSINESSPARTNERS (
  PARTNER_ID     INTEGER PRIMARY KEY,
  PARTNER_ROLE   VARCHAR(3),
  EMAIL_ADDRESS  VARCHAR(108),
  PHONE_NUMBER   VARCHAR(30),
  FAX_NUMBER     VARCHAR(30),
  WEB_ADDRESS    VARCHAR(192),
  COMPANY_NAME   VARCHAR(80),
  LEGAL_FORM     VARCHAR(10),
  CURRENCY       VARCHAR(5),
  CITY           VARCHAR(40),
  POSTAL_CODE    VARCHAR(10),
  STREET         VARCHAR(60),
  BUILDING       VARCHAR(10),
  COUNTRY        VARCHAR(3),
  REGION         VARCHAR(4)
);

CREATE TABLE PRODUCTS (
  PRODUCT_ID           VARCHAR(10) PRIMARY KEY,
  TYPE_CODE            VARCHAR(2),
  PRODUCT_CATEGORY     VARCHAR(40),
  SUPPLIER_ID          INTEGER REFERENCES BUSINESSPARTNERS(PARTNER_ID),
  TAX_TARIF_CODE       SMALLINT,
  QUANTITY_UNIT        VARCHAR(3),
  WEIGHT_MEASURE       DECIMAL(13,3),
  WEIGHT_UNIT          VARCHAR(3),
  CURRENCY             VARCHAR(5),
  PRICE                DECIMAL(15,2),
  WIDTH                DECIMAL(13,3),
  DEPTH                DECIMAL(13,3),
  HEIGHT               DECIMAL(13,3),
  DIMENSION_UNIT       VARCHAR(3),
  PRODUCT_DESCRIPTION  VARCHAR(255)
);

CREATE TABLE SALESORDERS (
  SALESORDER_ID     INTEGER PRIMARY KEY,
  CREATED_AT        DATE,
  PARTNER_ID        INTEGER REFERENCES BUSINESSPARTNERS(PARTNER_ID),
  PRODUCT_ID        VARCHAR(10) REFERENCES PRODUCTS(PRODUCT_ID),
  CURRENCY          VARCHAR(5),
  GROSS_AMOUNT      DECIMAL(15,2),
  NET_AMOUNT        DECIMAL(15,2),
  TAX_AMOUNT        DECIMAL(15,2),
  QUANTITY          DECIMAL(13,3),
  LIFECYCLE_STATUS  VARCHAR(1)
);
)sql";
}

// Formula One schema following jolpica-f1 (the Ergast successor the
// paper cites): 16 tables, 111 attributes, entirely unrelated domain.
const char* FormulaOneDdl() {
  return R"sql(
-- Formula One: jolpica-f1 relational schema.
CREATE TABLE circuits (
  circuit_id   INT PRIMARY KEY,
  circuit_ref  VARCHAR(255),
  name         VARCHAR(255),
  location     VARCHAR(255),
  country      VARCHAR(255),
  lat          FLOAT,
  lng          FLOAT,
  alt          INT,
  url          VARCHAR(255)
);

CREATE TABLE constructors (
  constructor_id   INT PRIMARY KEY,
  constructor_ref  VARCHAR(255),
  name             VARCHAR(255),
  nationality      VARCHAR(255),
  url              VARCHAR(255)
);

CREATE TABLE drivers (
  driver_id    INT PRIMARY KEY,
  driver_ref   VARCHAR(255),
  number       INT,
  code         VARCHAR(3),
  forename     VARCHAR(255),
  surname      VARCHAR(255),
  dob          DATE,
  nationality  VARCHAR(255),
  url          VARCHAR(255)
);

CREATE TABLE races (
  race_id     INT PRIMARY KEY,
  year        INT,
  round       INT,
  circuit_id  INT REFERENCES circuits(circuit_id),
  name        VARCHAR(255),
  date        DATE,
  time        VARCHAR(255),
  url         VARCHAR(255)
);

CREATE TABLE results (
  result_id         INT PRIMARY KEY,
  race_id           INT REFERENCES races(race_id),
  driver_id         INT REFERENCES drivers(driver_id),
  constructor_id    INT REFERENCES constructors(constructor_id),
  number            INT,
  grid              INT,
  position          INT,
  position_text     VARCHAR(255),
  points            FLOAT,
  laps              INT,
  time              VARCHAR(255),
  milliseconds      INT,
  fastest_lap       INT,
  fastest_lap_time  VARCHAR(255),
  fastest_lap_speed VARCHAR(255),
  status_id         INT REFERENCES status(status_id)
);

CREATE TABLE sprint_results (
  sprint_result_id  INT PRIMARY KEY,
  race_id           INT REFERENCES races(race_id),
  driver_id         INT REFERENCES drivers(driver_id),
  constructor_id    INT REFERENCES constructors(constructor_id),
  number            INT,
  grid              INT,
  position          INT,
  points            FLOAT,
  laps              INT,
  time              VARCHAR(255),
  milliseconds      INT,
  status_id         INT REFERENCES status(status_id)
);

CREATE TABLE qualifying (
  qualify_id      INT PRIMARY KEY,
  race_id         INT REFERENCES races(race_id),
  driver_id       INT REFERENCES drivers(driver_id),
  constructor_id  INT REFERENCES constructors(constructor_id),
  number          INT,
  position        INT,
  q1              VARCHAR(255),
  q2              VARCHAR(255),
  q3              VARCHAR(255)
);

CREATE TABLE lap_times (
  race_id       INT REFERENCES races(race_id),
  driver_id     INT REFERENCES drivers(driver_id),
  lap           INT,
  position      INT,
  time          VARCHAR(255),
  milliseconds  INT
);

CREATE TABLE pit_stops (
  race_id       INT REFERENCES races(race_id),
  driver_id     INT REFERENCES drivers(driver_id),
  stop          INT,
  lap           INT,
  time          VARCHAR(255),
  duration      VARCHAR(255),
  milliseconds  INT
);

CREATE TABLE driver_standings (
  driver_standings_id  INT PRIMARY KEY,
  race_id              INT REFERENCES races(race_id),
  driver_id            INT REFERENCES drivers(driver_id),
  points               FLOAT,
  position             INT,
  position_text        VARCHAR(255),
  wins                 INT
);

CREATE TABLE constructor_standings (
  constructor_standings_id  INT PRIMARY KEY,
  race_id                   INT REFERENCES races(race_id),
  constructor_id            INT REFERENCES constructors(constructor_id),
  points                    FLOAT,
  position                  INT,
  position_text             VARCHAR(255),
  wins                      INT
);

CREATE TABLE constructor_results (
  constructor_results_id  INT PRIMARY KEY,
  race_id                 INT REFERENCES races(race_id),
  constructor_id          INT REFERENCES constructors(constructor_id),
  points                  FLOAT,
  status                  VARCHAR(255)
);

CREATE TABLE seasons (
  year  INT PRIMARY KEY,
  url   VARCHAR(255)
);

CREATE TABLE status (
  status_id  INT PRIMARY KEY,
  status     VARCHAR(255)
);

CREATE TABLE sessions (
  session_id      INT PRIMARY KEY,
  race_id         INT REFERENCES races(race_id),
  session_type    VARCHAR(255),
  scheduled_date  DATE
);

CREATE TABLE team_drivers (
  team_driver_id  INT PRIMARY KEY,
  constructor_id  INT REFERENCES constructors(constructor_id),
  driver_id       INT REFERENCES drivers(driver_id)
);
)sql";
}

}  // namespace colscope::datasets
