#include "datasets/sales3.h"

#include "common/check.h"
#include "schema/ddl_parser.h"

namespace colscope::datasets {

namespace {

schema::Schema MustParse(const char* ddl, const char* name) {
  Result<schema::Schema> parsed = schema::ParseDdl(ddl, name);
  COLSCOPE_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

struct LinkSpec {
  LinkType type;
  const char* schema_a;
  const char* path_a;
  const char* schema_b;
  const char* path_b;
};

constexpr LinkType kII = LinkType::kInterIdentical;
constexpr LinkType kIS = LinkType::kInterSubTyped;

// TPC-H <-> Northwind.
const LinkSpec kTpchNorthwind[] = {
    {kII, "TPCH", "customer", "Northwind", "Customers"},
    {kII, "TPCH", "orders", "Northwind", "Orders"},
    {kII, "TPCH", "lineitem", "Northwind", "OrderDetails"},
    {kII, "TPCH", "part", "Northwind", "Products"},
    {kII, "TPCH", "supplier", "Northwind", "Suppliers"},
    {kII, "TPCH", "customer.c_custkey", "Northwind",
     "Customers.CustomerID"},
    {kIS, "TPCH", "customer.c_name", "Northwind", "Customers.CompanyName"},
    {kIS, "TPCH", "customer.c_name", "Northwind", "Customers.ContactName"},
    {kII, "TPCH", "customer.c_address", "Northwind", "Customers.Address"},
    {kII, "TPCH", "customer.c_phone", "Northwind", "Customers.Phone"},
    {kII, "TPCH", "orders.o_orderkey", "Northwind", "Orders.OrderID"},
    {kII, "TPCH", "orders.o_custkey", "Northwind", "Orders.CustomerID"},
    {kII, "TPCH", "orders.o_orderdate", "Northwind", "Orders.OrderDate"},
    {kIS, "TPCH", "orders.o_totalprice", "Northwind", "Orders.Freight"},
    {kII, "TPCH", "lineitem.l_orderkey", "Northwind",
     "OrderDetails.OrderID"},
    {kII, "TPCH", "lineitem.l_partkey", "Northwind",
     "OrderDetails.ProductID"},
    {kII, "TPCH", "lineitem.l_quantity", "Northwind",
     "OrderDetails.Quantity"},
    {kII, "TPCH", "lineitem.l_extendedprice", "Northwind",
     "OrderDetails.UnitPrice"},
    {kII, "TPCH", "lineitem.l_discount", "Northwind",
     "OrderDetails.Discount"},
    {kIS, "TPCH", "lineitem.l_shipdate", "Northwind",
     "Orders.ShippedDate"},
    {kII, "TPCH", "part.p_partkey", "Northwind", "Products.ProductID"},
    {kII, "TPCH", "part.p_name", "Northwind", "Products.ProductName"},
    {kIS, "TPCH", "part.p_retailprice", "Northwind",
     "Products.UnitPrice"},
    {kII, "TPCH", "supplier.s_suppkey", "Northwind",
     "Suppliers.SupplierID"},
    {kIS, "TPCH", "supplier.s_name", "Northwind",
     "Suppliers.CompanyName"},
    {kII, "TPCH", "supplier.s_address", "Northwind", "Suppliers.Address"},
    {kII, "TPCH", "supplier.s_phone", "Northwind", "Suppliers.Phone"},
    {kIS, "TPCH", "nation.n_name", "Northwind", "Customers.Country"},
};

// TPC-H <-> SSB (the star schema is a denormalization of TPC-H).
const LinkSpec kTpchSsb[] = {
    {kII, "TPCH", "customer", "SSB", "ssb_customer"},
    {kII, "TPCH", "supplier", "SSB", "ssb_supplier"},
    {kII, "TPCH", "part", "SSB", "ssb_part"},
    {kIS, "TPCH", "lineitem", "SSB", "ssb_lineorder"},
    {kIS, "TPCH", "orders", "SSB", "ssb_lineorder"},
    {kII, "TPCH", "customer.c_custkey", "SSB", "ssb_customer.c_custkey"},
    {kII, "TPCH", "customer.c_name", "SSB", "ssb_customer.c_name"},
    {kII, "TPCH", "customer.c_address", "SSB", "ssb_customer.c_address"},
    {kII, "TPCH", "customer.c_phone", "SSB", "ssb_customer.c_phone"},
    {kII, "TPCH", "customer.c_mktsegment", "SSB",
     "ssb_customer.c_mktsegment"},
    {kIS, "TPCH", "nation.n_name", "SSB", "ssb_customer.c_nation"},
    {kIS, "TPCH", "region.r_name", "SSB", "ssb_customer.c_region"},
    {kII, "TPCH", "supplier.s_suppkey", "SSB", "ssb_supplier.s_suppkey"},
    {kII, "TPCH", "supplier.s_name", "SSB", "ssb_supplier.s_name"},
    {kII, "TPCH", "supplier.s_address", "SSB", "ssb_supplier.s_address"},
    {kII, "TPCH", "supplier.s_phone", "SSB", "ssb_supplier.s_phone"},
    {kIS, "TPCH", "nation.n_name", "SSB", "ssb_supplier.s_nation"},
    {kIS, "TPCH", "region.r_name", "SSB", "ssb_supplier.s_region"},
    {kII, "TPCH", "part.p_partkey", "SSB", "ssb_part.p_partkey"},
    {kII, "TPCH", "part.p_name", "SSB", "ssb_part.p_name"},
    {kII, "TPCH", "part.p_mfgr", "SSB", "ssb_part.p_mfgr"},
    {kII, "TPCH", "part.p_brand", "SSB", "ssb_part.p_brand"},
    {kII, "TPCH", "part.p_type", "SSB", "ssb_part.p_type"},
    {kII, "TPCH", "part.p_size", "SSB", "ssb_part.p_size"},
    {kII, "TPCH", "part.p_container", "SSB", "ssb_part.p_container"},
    {kII, "TPCH", "lineitem.l_orderkey", "SSB",
     "ssb_lineorder.lo_orderkey"},
    {kII, "TPCH", "lineitem.l_linenumber", "SSB",
     "ssb_lineorder.lo_linenumber"},
    {kII, "TPCH", "lineitem.l_partkey", "SSB", "ssb_lineorder.lo_partkey"},
    {kII, "TPCH", "lineitem.l_suppkey", "SSB", "ssb_lineorder.lo_suppkey"},
    {kII, "TPCH", "lineitem.l_quantity", "SSB",
     "ssb_lineorder.lo_quantity"},
    {kII, "TPCH", "lineitem.l_extendedprice", "SSB",
     "ssb_lineorder.lo_extendedprice"},
    {kII, "TPCH", "lineitem.l_discount", "SSB",
     "ssb_lineorder.lo_discount"},
    {kII, "TPCH", "lineitem.l_tax", "SSB", "ssb_lineorder.lo_tax"},
    {kII, "TPCH", "lineitem.l_commitdate", "SSB",
     "ssb_lineorder.lo_commitdate"},
    {kII, "TPCH", "lineitem.l_shipmode", "SSB",
     "ssb_lineorder.lo_shipmode"},
    {kII, "TPCH", "orders.o_custkey", "SSB", "ssb_lineorder.lo_custkey"},
    {kII, "TPCH", "orders.o_orderdate", "SSB",
     "ssb_lineorder.lo_orderdate"},
    {kII, "TPCH", "orders.o_orderpriority", "SSB",
     "ssb_lineorder.lo_orderpriority"},
    {kII, "TPCH", "orders.o_shippriority", "SSB",
     "ssb_lineorder.lo_shippriority"},
    {kIS, "TPCH", "orders.o_totalprice", "SSB",
     "ssb_lineorder.lo_ordtotalprice"},
    {kIS, "TPCH", "partsupp.ps_supplycost", "SSB",
     "ssb_lineorder.lo_supplycost"},
};

// Northwind <-> SSB.
const LinkSpec kNorthwindSsb[] = {
    {kII, "Northwind", "Customers", "SSB", "ssb_customer"},
    {kII, "Northwind", "Suppliers", "SSB", "ssb_supplier"},
    {kII, "Northwind", "Products", "SSB", "ssb_part"},
    {kIS, "Northwind", "OrderDetails", "SSB", "ssb_lineorder"},
    {kIS, "Northwind", "Orders", "SSB", "ssb_lineorder"},
    {kII, "Northwind", "Customers.CustomerID", "SSB",
     "ssb_customer.c_custkey"},
    {kIS, "Northwind", "Customers.CompanyName", "SSB",
     "ssb_customer.c_name"},
    {kII, "Northwind", "Customers.Address", "SSB",
     "ssb_customer.c_address"},
    {kII, "Northwind", "Customers.City", "SSB", "ssb_customer.c_city"},
    {kIS, "Northwind", "Customers.Country", "SSB",
     "ssb_customer.c_nation"},
    {kIS, "Northwind", "Customers.Region", "SSB", "ssb_customer.c_region"},
    {kII, "Northwind", "Customers.Phone", "SSB", "ssb_customer.c_phone"},
    {kII, "Northwind", "Suppliers.SupplierID", "SSB",
     "ssb_supplier.s_suppkey"},
    {kIS, "Northwind", "Suppliers.CompanyName", "SSB",
     "ssb_supplier.s_name"},
    {kII, "Northwind", "Suppliers.Address", "SSB",
     "ssb_supplier.s_address"},
    {kII, "Northwind", "Suppliers.City", "SSB", "ssb_supplier.s_city"},
    {kIS, "Northwind", "Suppliers.Country", "SSB",
     "ssb_supplier.s_nation"},
    {kII, "Northwind", "Suppliers.Phone", "SSB", "ssb_supplier.s_phone"},
    {kII, "Northwind", "Products.ProductID", "SSB",
     "ssb_part.p_partkey"},
    {kII, "Northwind", "Products.ProductName", "SSB", "ssb_part.p_name"},
    {kIS, "Northwind", "Categories.CategoryName", "SSB",
     "ssb_part.p_category"},
    {kII, "Northwind", "OrderDetails.OrderID", "SSB",
     "ssb_lineorder.lo_orderkey"},
    {kII, "Northwind", "OrderDetails.ProductID", "SSB",
     "ssb_lineorder.lo_partkey"},
    {kII, "Northwind", "OrderDetails.Quantity", "SSB",
     "ssb_lineorder.lo_quantity"},
    {kIS, "Northwind", "OrderDetails.UnitPrice", "SSB",
     "ssb_lineorder.lo_extendedprice"},
    {kII, "Northwind", "OrderDetails.Discount", "SSB",
     "ssb_lineorder.lo_discount"},
    {kII, "Northwind", "Orders.CustomerID", "SSB",
     "ssb_lineorder.lo_custkey"},
    {kII, "Northwind", "Orders.OrderDate", "SSB",
     "ssb_lineorder.lo_orderdate"},
};

void AddAll(MatchingScenario& scenario, const LinkSpec* specs,
            size_t count) {
  for (size_t i = 0; i < count; ++i) {
    const LinkSpec& s = specs[i];
    Status st = scenario.truth.Add(scenario.set, s.type, s.schema_a,
                                   s.path_a, s.schema_b, s.path_b);
    COLSCOPE_CHECK_MSG(st.ok(),
                       (std::string(s.path_a) + " <-> " + s.path_b + ": " +
                        st.ToString())
                           .c_str());
  }
}

}  // namespace

schema::Schema LoadTpchSchema() { return MustParse(TpchDdl(), "TPCH"); }

schema::Schema LoadNorthwindSchema() {
  return MustParse(NorthwindDdl(), "Northwind");
}

schema::Schema LoadSsbSchema() { return MustParse(SsbDdl(), "SSB"); }

MatchingScenario BuildSales3Scenario() {
  MatchingScenario scenario;
  scenario.name = "Sales3";
  scenario.set = schema::SchemaSet(
      {LoadTpchSchema(), LoadNorthwindSchema(), LoadSsbSchema()});
  AddAll(scenario, kTpchNorthwind, std::size(kTpchNorthwind));
  AddAll(scenario, kTpchSsb, std::size(kTpchSsb));
  AddAll(scenario, kNorthwindSsb, std::size(kNorthwindSsb));
  return scenario;
}

}  // namespace colscope::datasets
