#ifndef COLSCOPE_DATASETS_OC3_H_
#define COLSCOPE_DATASETS_OC3_H_

#include "datasets/linkage.h"
#include "schema/schema.h"

namespace colscope::datasets {

/// The four evaluation schemas of Section 4.1 (Table 2). OC-Oracle and
/// OC-MySQL are reconstructed from the public samples the paper cites
/// (Oracle Customer-Orders, MySQL classicmodels); OC-HANA and Formula One
/// are faithful equivalents with the exact element counts of Table 2
/// (see DESIGN.md, Substitution 2).
///
/// Element counts: Oracle 7 tables / 43 attributes, MySQL 8 / 59,
/// HANA 3 / 40, Formula One 16 / 111.
schema::Schema LoadOracleSchema();
schema::Schema LoadMySqlSchema();
schema::Schema LoadHanaSchema();
schema::Schema LoadFormulaOneSchema();

/// Raw DDL scripts the loaders parse; exposed for parser tests and for
/// users who want to reload through their own pipeline.
const char* OracleDdl();
const char* MySqlDdl();
const char* HanaDdl();
const char* FormulaOneDdl();

/// "OC3": the domain-specific three-schema scenario
/// (Oracle, MySQL, HANA) with its annotated ground truth — 18 tables,
/// 142 attributes, 79 linkable / 81 unlinkable elements, unlinkable
/// overhead 103%.
MatchingScenario BuildOc3Scenario();

/// "OC3-FO": OC3 extended with the unrelated Formula One schema —
/// 34 tables, 253 attributes, 79 linkable / 208 unlinkable, overhead
/// 263%. The Formula One schema contributes no linkable elements.
MatchingScenario BuildOc3FoScenario();

}  // namespace colscope::datasets

#endif  // COLSCOPE_DATASETS_OC3_H_
