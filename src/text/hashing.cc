#include "text/hashing.h"

#include "common/rng.h"

namespace colscope::text {

uint64_t Hash64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime.
  }
  uint64_t state = h;
  return colscope::SplitMix64(state);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return colscope::SplitMix64(state);
}

}  // namespace colscope::text
