#ifndef COLSCOPE_TEXT_LEXICON_H_
#define COLSCOPE_TEXT_LEXICON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace colscope::text {

/// Semantic mapping of a single token: the canonical `concept_name` shared by
/// its synonym set (e.g. client/customer/partner -> "customer") and an
/// optional broader `category` (e.g. "geo", "person", "time") shared by
/// related concepts. The embedding encoder turns both into shared vector
/// components, which is what gives CLIENT and CUSTOMER a high cosine
/// similarity while ADDRESS and CITY get a weaker (sub-typed) one.
struct TokenSense {
  std::string concept_name;
  std::string category;  // empty when the token has no category.
};

/// Token -> sense dictionary with synonym groups and categories.
/// Lookups are lowercase-token based (use text::TokenizeIdentifier first).
class Lexicon {
 public:
  /// Registers `tokens` as synonyms of canonical `concept_name`, optionally
  /// tagging them with `category`. Later registrations win on conflict.
  void AddSynonyms(std::string_view concept_name,
                   const std::vector<std::string>& tokens,
                   std::string_view category = "");

  /// Assigns `category` to tokens already known or unknown (unknown
  /// tokens keep themselves as concept_name).
  void SetCategory(std::string_view category,
                   const std::vector<std::string>& tokens);

  /// Sense of `token`: registered sense, or identity concept_name with no
  /// category for out-of-vocabulary tokens.
  TokenSense Lookup(std::string_view token) const;

  /// True if the token is in the dictionary.
  bool Contains(std::string_view token) const;

  size_t size() const { return senses_.size(); }

  /// Order-independent stable content fingerprint (FNV-1a over the
  /// sorted token->sense entries). Mixed into encoder cache identities
  /// so an edited dictionary invalidates cached signatures; identical
  /// dictionaries built in any registration order fingerprint the same.
  uint64_t Fingerprint() const;

 private:
  std::unordered_map<std::string, TokenSense> senses_;
};

/// The built-in dictionary covering the order/customer business domain of
/// the OC3 schemas, the motor-sport domain of the Formula One schema, SQL
/// type names, and constraint keywords. Mirrors the semantic knowledge a
/// pretrained sentence encoder contributes in the paper (Section 2.3).
const Lexicon& DefaultSchemaLexicon();

}  // namespace colscope::text

#endif  // COLSCOPE_TEXT_LEXICON_H_
