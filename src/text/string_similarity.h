#ifndef COLSCOPE_TEXT_STRING_SIMILARITY_H_
#define COLSCOPE_TEXT_STRING_SIMILARITY_H_

#include <string_view>

namespace colscope::text {

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalized Levenshtein similarity in [0, 1]:
/// 1 - distance / max(|a|, |b|); two empty strings are identical (1).
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity: Jaro boosted by a shared prefix of up to 4
/// characters with scaling factor `prefix_scale` (standard 0.1).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

/// Jaccard similarity of the token sets produced by TokenizeIdentifier
/// (e.g. "ORDER_DATE" vs "orderDate" -> 1.0). Empty-vs-empty is 1.
double TokenJaccardSimilarity(std::string_view a, std::string_view b);

}  // namespace colscope::text

#endif  // COLSCOPE_TEXT_STRING_SIMILARITY_H_
