#include "text/tokenize.h"

namespace colscope::text {

namespace {

bool IsLower(char c) { return c >= 'a' && c <= 'z'; }
bool IsUpper(char c) { return c >= 'A' && c <= 'Z'; }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }
bool IsAlnum(char c) { return IsLower(c) || IsUpper(c) || IsDigit(c); }
char ToLower(char c) {
  return IsUpper(c) ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

std::vector<std::string> TokenizeIdentifier(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (!IsAlnum(c)) {
      flush();  // '_', ' ', ',', '[', ']', '.' all separate tokens.
      continue;
    }
    if (!current.empty()) {
      const char prev = text[i - 1];
      const bool lower_to_upper = IsLower(prev) && IsUpper(c);
      const bool digit_boundary = IsDigit(prev) != IsDigit(c);
      // "MSRPPrice" -> MSRP + Price: upper run followed by Upper+lower.
      const bool upper_run_to_camel =
          IsUpper(prev) && IsUpper(c) && i + 1 < text.size() &&
          IsLower(text[i + 1]);
      if (lower_to_upper || digit_boundary || upper_run_to_camel) flush();
    }
    current.push_back(ToLower(c));
  }
  flush();
  return tokens;
}

std::vector<std::string> CharacterTrigrams(std::string_view token) {
  std::vector<std::string> grams;
  if (token.empty()) return grams;
  std::string padded;
  padded.reserve(token.size() + 2);
  padded.push_back('^');
  for (char c : token) padded.push_back(ToLower(c));
  padded.push_back('$');
  if (padded.size() < 3) return grams;
  grams.reserve(padded.size() - 2);
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    grams.emplace_back(padded.substr(i, 3));
  }
  return grams;
}

}  // namespace colscope::text
