#include "text/string_similarity.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/strings.h"
#include "text/tokenize.h"

namespace colscope::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Two-row dynamic program.
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> curr(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t substitution =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitution});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t match_window =
      std::max<size_t>(1, std::max(a.size(), b.size()) / 2) - 1;

  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > match_window ? i - match_window : 0;
    const size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Transpositions: matched characters out of order.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions / 2)) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

double TokenJaccardSimilarity(std::string_view a, std::string_view b) {
  const auto ta = TokenizeIdentifier(a);
  const auto tb = TokenizeIdentifier(b);
  const std::set<std::string> sa(ta.begin(), ta.end());
  const std::set<std::string> sb(tb.begin(), tb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t intersection = 0;
  for (const auto& t : sa) intersection += sb.count(t);
  const size_t uni = sa.size() + sb.size() - intersection;
  return uni == 0 ? 1.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

}  // namespace colscope::text
