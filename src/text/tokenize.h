#ifndef COLSCOPE_TEXT_TOKENIZE_H_
#define COLSCOPE_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace colscope::text {

/// Splits a schema identifier or serialized metadata sequence into
/// lowercase word tokens. Handles the naming conventions that appear in
/// real DDL: snake_case (ORDER_DATETIME), camelCase (orderLineNumber),
/// ALLCAPS runs followed by camel (MSRPPrice), digit boundaries
/// (ADDRESS2), and punctuation/brackets from the T^t serialization
/// ("CLIENT [CID, NAME]").
std::vector<std::string> TokenizeIdentifier(std::string_view text);

/// Character trigrams of a token padded with '^' and '$' sentinels
/// ("city" -> ^ci, cit, ity, ty$). Used for graded lexical similarity
/// between near-identical names (ORDERDATE vs ORDER_DATETIME).
std::vector<std::string> CharacterTrigrams(std::string_view token);

}  // namespace colscope::text

#endif  // COLSCOPE_TEXT_TOKENIZE_H_
