#ifndef COLSCOPE_TEXT_HASHING_H_
#define COLSCOPE_TEXT_HASHING_H_

#include <cstdint>
#include <string_view>

namespace colscope::text {

/// 64-bit FNV-1a hash of `data`, strengthened with a SplitMix64
/// finalizer. Deterministic across platforms and runs — signature
/// generation depends on that.
uint64_t Hash64(std::string_view data);

/// Combines two hashes (order-dependent).
uint64_t HashCombine(uint64_t a, uint64_t b);

}  // namespace colscope::text

#endif  // COLSCOPE_TEXT_HASHING_H_
