#include "text/lexicon.h"

#include <algorithm>

#include "common/checksum.h"
#include "common/strings.h"

namespace colscope::text {

void Lexicon::AddSynonyms(std::string_view concept_name,
                          const std::vector<std::string>& tokens,
                          std::string_view category) {
  for (const std::string& t : tokens) {
    TokenSense sense;
    sense.concept_name = std::string(concept_name);
    sense.category = std::string(category);
    senses_[colscope::ToLowerAscii(t)] = std::move(sense);
  }
}

void Lexicon::SetCategory(std::string_view category,
                          const std::vector<std::string>& tokens) {
  for (const std::string& t : tokens) {
    const std::string key = colscope::ToLowerAscii(t);
    auto it = senses_.find(key);
    if (it == senses_.end()) {
      TokenSense sense;
      sense.concept_name = key;
      sense.category = std::string(category);
      senses_[key] = std::move(sense);
    } else {
      it->second.category = std::string(category);
    }
  }
}

TokenSense Lexicon::Lookup(std::string_view token) const {
  const std::string key = colscope::ToLowerAscii(token);
  auto it = senses_.find(key);
  if (it != senses_.end()) return it->second;
  TokenSense sense;
  sense.concept_name = key;
  return sense;
}

bool Lexicon::Contains(std::string_view token) const {
  return senses_.find(colscope::ToLowerAscii(token)) != senses_.end();
}

uint64_t Lexicon::Fingerprint() const {
  // unordered_map has no stable order; sort keys so the fingerprint is a
  // pure function of the dictionary's content.
  std::vector<const std::string*> keys;
  keys.reserve(senses_.size());
  for (const auto& [token, sense] : senses_) keys.push_back(&token);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  uint64_t h = Fnv1a64("colscope-lexicon-fingerprint v1");
  for (const std::string* key : keys) {
    const TokenSense& sense = senses_.at(*key);
    h = Fnv1a64(*key, h);
    h = Fnv1a64("\x1f", h);
    h = Fnv1a64(sense.concept_name, h);
    h = Fnv1a64("\x1f", h);
    h = Fnv1a64(sense.category, h);
    h = Fnv1a64("\x1e", h);
  }
  return h;
}

namespace {

Lexicon BuildDefaultLexicon() {
  Lexicon lex;
  // --- Business entities -------------------------------------------------
  lex.AddSynonyms("customer",
                  {"customer", "customers", "client", "clients", "buyer",
                   "businesspartner", "partner", "partners", "clientele"},
                  "party");
  lex.AddSynonyms("employee", {"employee", "employees", "staff", "rep",
                               "salesrep"},
                  "party");
  lex.AddSynonyms("vendor", {"vendor", "supplier", "manufacturer"}, "party");
  lex.AddSynonyms("contact", {"contact"}, "party");
  // Stores and offices are related places (sub-typed, Table 3) but not
  // synonyms: they share the category, not the concept.
  lex.AddSynonyms("store", {"store", "stores", "shop", "outlet", "warehouse"},
                  "place");
  lex.AddSynonyms("office", {"office", "offices", "branch"}, "place");
  lex.AddSynonyms("product",
                  {"product", "products", "item", "items", "article",
                   "goods", "merchandise"},
                  "commerce");
  lex.AddSynonyms("productline", {"productline", "productlines", "line",
                                  "category", "assortment"},
                  "commerce");
  lex.AddSynonyms("order",
                  {"order", "orders", "salesorder", "salesorders",
                   "purchase", "purchases"},
                  "commerce");
  lex.AddSynonyms("orderitem", {"orderdetails", "orderdetail", "detail",
                                "details"},
                  "commerce");
  lex.AddSynonyms("shipment", {"shipment", "shipments", "delivery",
                               "deliveries", "shipping"},
                  "commerce");
  lex.AddSynonyms("payment", {"payment", "payments", "invoice", "invoices",
                              "billing", "check", "checknumber"},
                  "commerce");
  lex.AddSynonyms("inventory", {"inventory", "stock"}, "commerce");

  // --- Person / naming ----------------------------------------------------
  lex.AddSynonyms("name", {"name", "cname", "names"}, "person");
  lex.AddSynonyms("firstname", {"first", "forename", "given"}, "person");
  lex.AddSynonyms("lastname", {"last", "surname", "family"}, "person");
  lex.AddSynonyms("full", {"full"}, "person");
  lex.AddSynonyms("title", {"title", "job", "jobtitle"}, "person");
  lex.AddSynonyms("birthdate", {"dob", "birthday", "birthdate", "born"},
                  "person");
  lex.AddSynonyms("nationality", {"nationality", "citizenship"}, "geo");

  // --- Geography / address ------------------------------------------------
  lex.AddSynonyms("address", {"address", "addr", "addresses"}, "geo");
  lex.AddSynonyms("street", {"street", "road", "avenue"}, "geo");
  lex.AddSynonyms("city", {"city", "town", "location", "locality"}, "geo");
  lex.AddSynonyms("region", {"region", "state", "province"}, "geo");
  lex.AddSynonyms("territory", {"territory"}, "geo");
  lex.AddSynonyms("country", {"country", "nation"}, "geo");
  lex.AddSynonyms("postal", {"postal", "zip", "postcode", "postalcode"},
                  "geo");
  lex.AddSynonyms("latitude", {"latitude", "lat"}, "geo");
  lex.AddSynonyms("longitude", {"longitude", "lng", "lon"}, "geo");
  lex.AddSynonyms("altitude", {"altitude", "alt"}, "geo");

  // --- Communication ------------------------------------------------------
  lex.AddSynonyms("phone", {"phone", "telephone", "tel", "mobile", "fax",
                            "extension"},
                  "comm");
  lex.AddSynonyms("email", {"email", "mail"}, "comm");
  lex.AddSynonyms("web", {"web", "url", "website", "homepage"}, "comm");

  // --- Identifiers ----------------------------------------------------------
  lex.AddSynonyms("id", {"id", "identifier", "ids"}, "ident");
  lex.AddSynonyms("number", {"number", "num", "no", "nr"}, "ident");
  lex.AddSynonyms("code", {"code", "ref", "reference"}, "ident");
  lex.AddSynonyms("key", {"key"}, "ident");

  // --- Time -----------------------------------------------------------------
  lex.AddSynonyms("date", {"date", "day"}, "time");
  lex.AddSynonyms("datetime", {"datetime", "timestamp", "tms"}, "time");
  lex.AddSynonyms("time", {"time"}, "time");
  lex.AddSynonyms("year", {"year", "season", "seasons"}, "time");
  lex.AddSynonyms("month", {"month"}, "time");
  lex.AddSynonyms("created", {"created", "createdat", "changed", "updated",
                              "required", "shipped"},
                  "time");

  // --- Quantities / money ----------------------------------------------------
  lex.AddSynonyms("price", {"price", "cost"}, "money");
  lex.AddSynonyms("msrp", {"msrp"}, "money");
  lex.AddSynonyms("amount", {"amount", "total", "gross", "net", "sum"},
                  "money");
  lex.AddSynonyms("currency", {"currency"}, "money");
  lex.AddSynonyms("tax", {"tax", "vat"}, "money");
  lex.AddSynonyms("credit", {"credit", "limit", "creditlimit"}, "money");
  lex.AddSynonyms("quantity", {"quantity", "qty", "count", "ordered"},
                  "measure");
  lex.AddSynonyms("unit", {"unit", "units", "each"}, "measure");
  lex.AddSynonyms("scale", {"scale"}, "measure");
  lex.AddSynonyms("status", {"status", "flag", "stage"}, "state");
  lex.AddSynonyms("description",
                  {"description", "descriptions", "comment", "comments",
                   "text", "remarks", "note", "notes"},
                  "doc");
  lex.AddSynonyms("image", {"image", "picture", "photo", "logo"}, "doc");
  lex.AddSynonyms("document", {"mime", "charset", "filename", "html"},
                  "doc");

  // --- Formula One domain -----------------------------------------------------
  lex.AddSynonyms("driver", {"driver", "drivers", "pilot"}, "motorsport");
  lex.AddSynonyms("constructor", {"constructor", "constructors", "team",
                                  "teams"},
                  "motorsport");
  lex.AddSynonyms("race", {"race", "races", "grandprix", "gp"},
                  "motorsport");
  lex.AddSynonyms("circuit", {"circuit", "circuits", "track"},
                  "motorsport");
  lex.AddSynonyms("lap", {"lap", "laps"}, "motorsport");
  lex.AddSynonyms("pitstop", {"pit", "stop", "stops"}, "motorsport");
  lex.AddSynonyms("grid", {"grid"}, "motorsport");
  lex.AddSynonyms("qualifying", {"qualifying", "quali", "q1", "q2", "q3"},
                  "motorsport");
  lex.AddSynonyms("sprint", {"sprint"}, "motorsport");
  lex.AddSynonyms("standings", {"standings", "standing", "ranking"},
                  "motorsport");
  lex.AddSynonyms("points", {"points"}, "motorsport");
  lex.AddSynonyms("position", {"position", "rank", "positiontext"},
                  "motorsport");
  lex.AddSynonyms("wins", {"wins", "win"}, "motorsport");
  lex.AddSynonyms("fastest", {"fastest", "speed"}, "motorsport");
  lex.AddSynonyms("round", {"round"}, "motorsport");
  lex.AddSynonyms("milliseconds", {"milliseconds", "millis", "duration"},
                  "motorsport");
  lex.AddSynonyms("car", {"car", "cars", "vehicle", "chassis", "engine"},
                  "motorsport");

  // --- SQL data types (appear in the T^a serialization) ----------------------
  lex.AddSynonyms("typestring",
                  {"varchar", "varchar2", "char", "nchar", "nvarchar",
                   "clob", "string", "mediumtext", "longtext"},
                  "sqltype");
  lex.AddSynonyms("typenumeric",
                  {"integer", "int", "bigint", "smallint", "tinyint",
                   "numeric", "decimal", "float", "double", "real"},
                  "sqltype");
  lex.AddSynonyms("typedate", {"datetype"}, "sqltype");
  lex.AddSynonyms("typeblob", {"blob", "bytea", "binary"}, "sqltype");
  lex.AddSynonyms("typebool", {"boolean", "bool", "bit"}, "sqltype");

  // --- Constraint keywords -----------------------------------------------------
  lex.AddSynonyms("primarykey", {"primary"}, "constraint");
  lex.AddSynonyms("foreignkey", {"foreign"}, "constraint");

  return lex;
}

}  // namespace

const Lexicon& DefaultSchemaLexicon() {
  static const Lexicon* const kLexicon = new Lexicon(BuildDefaultLexicon());
  return *kLexicon;
}

}  // namespace colscope::text
