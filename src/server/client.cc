#include "server/client.h"

#include <utility>

#include "common/strings.h"
#include "net/frame.h"
#include "net/protocol.h"

namespace colscope::server {

namespace {

/// One request/reply round trip on a fresh connection (the daemon
/// serves one request per connection, like the worker protocol).
Result<net::Frame> RoundTrip(const net::Endpoint& server,
                             net::FrameType type, const std::string& payload,
                             const net::NetOptions& options) {
  Result<net::Socket> socket = net::Socket::Connect(server, options);
  if (!socket.ok()) return socket.status();
  COLSCOPE_RETURN_IF_ERROR(socket->SendFrame(type, payload, options));
  return socket->RecvFrame(options);
}

}  // namespace

Result<std::string> RequestScope(const net::Endpoint& server,
                                 const ScopeRequest& request,
                                 const net::NetOptions& options) {
  Result<net::Frame> reply =
      RoundTrip(server, net::FrameType::kScopeRequest,
                EncodeScopeRequest(request), options);
  if (!reply.ok()) return reply.status();
  if (reply->type == net::FrameType::kError) {
    return net::DecodeErrorPayload(reply->payload);
  }
  if (reply->type != net::FrameType::kScopeResponse) {
    return Status::InvalidArgument(
        StrFormat("expected a scope response, got frame type %u",
                  static_cast<unsigned>(reply->type)));
  }
  return std::move(reply->payload);
}

Result<HealthInfo> RequestHealth(const net::Endpoint& server,
                                 const net::NetOptions& options) {
  Result<net::Frame> reply =
      RoundTrip(server, net::FrameType::kHealth, "", options);
  if (!reply.ok()) return reply.status();
  if (reply->type == net::FrameType::kError) {
    return net::DecodeErrorPayload(reply->payload);
  }
  if (reply->type != net::FrameType::kHealth) {
    return Status::InvalidArgument(
        StrFormat("expected a health reply, got frame type %u",
                  static_cast<unsigned>(reply->type)));
  }
  return DecodeHealthInfo(reply->payload);
}

Status RequestShutdown(const net::Endpoint& server,
                       const net::NetOptions& options) {
  Result<net::Frame> reply =
      RoundTrip(server, net::FrameType::kShutdown, "", options);
  if (!reply.ok()) return reply.status();
  if (reply->type == net::FrameType::kError) {
    return net::DecodeErrorPayload(reply->payload);
  }
  if (reply->type != net::FrameType::kShutdownAck) {
    return Status::InvalidArgument(
        StrFormat("expected a shutdown ack, got frame type %u",
                  static_cast<unsigned>(reply->type)));
  }
  return Status::Ok();
}

}  // namespace colscope::server
