#ifndef COLSCOPE_SERVER_ADMISSION_H_
#define COLSCOPE_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/cancellation.h"
#include "common/status.h"

namespace colscope::obs {
class MetricsRegistry;
}  // namespace colscope::obs

namespace colscope::server {

/// Tunables of the bounded admission queue. Every limit is a hard
/// rejection threshold, not a resize trigger: the controller's job is to
/// convert overload into typed kOverloaded errors instead of unbounded
/// memory growth or latency collapse.
struct AdmissionOptions {
  /// Requests allowed to wait for an execution slot. The queue is the
  /// set of caller threads blocked inside Admit(), so its bound also
  /// bounds the daemon's queued-request memory.
  size_t max_queue = 16;
  /// Requests executing concurrently.
  size_t max_inflight = 2;
  /// Budget on the summed estimated cost (request payload bytes) of
  /// queued + executing requests; 0 means unbounded. A single request
  /// larger than the whole budget is shed outright.
  uint64_t max_cost_bytes = 256ull << 20;
  /// Borrowed; may be null. Exports the server.queue_depth gauge.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Bounded admission gate for the resident server. Callers (one per
/// connection thread) pass their request's estimated cost and deadline;
/// Admit() either rejects immediately with kOverloaded (queue full, cost
/// budget exceeded, draining), waits for an execution slot, or gives up
/// with kDeadlineExceeded / kCancelled when the request's deadline or
/// the server's hard-stop token fires while queued. An admitted caller
/// owns one inflight slot until it calls Release().
///
/// Thread-safe. Shedding decisions are made under one mutex, so the
/// queue bound is exact — two racing arrivals can never both slip past a
/// full queue.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Blocks until an execution slot is free (Ok), the request is shed
  /// (kOverloaded — immediately, never after waiting), the deadline
  /// expires in the queue (kDeadlineExceeded), or `hard_stop` trips
  /// (kCancelled). On Ok the caller must eventually call Release(cost).
  Status Admit(uint64_t cost_bytes, const Deadline& deadline,
               const CancellationToken* hard_stop);

  /// Frees the slot an Ok Admit() granted.
  void Release(uint64_t cost_bytes);

  /// Flips the controller into draining: every subsequent Admit() is
  /// rejected with kOverloaded("draining"); already-queued requests keep
  /// their place and still get slots as they free up.
  void BeginDrain();

  bool draining() const;

  /// Requests currently waiting for a slot.
  size_t queue_depth() const;
  /// Requests currently holding execution slots.
  size_t inflight() const;

 private:
  void UpdateGauge();  // Caller holds mu_.

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  size_t queued_ = 0;
  size_t inflight_ = 0;
  uint64_t cost_bytes_ = 0;
  bool draining_ = false;
};

}  // namespace colscope::server

#endif  // COLSCOPE_SERVER_ADMISSION_H_
