#include "server/server.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "cache/artifact_cache.h"
#include "common/cancellation.h"
#include "common/strings.h"
#include "datasets/csv_loader.h"
#include "embed/hashed_encoder.h"
#include "matching/cluster_matcher.h"
#include "matching/lsh_matcher.h"
#include "matching/sim.h"
#include "matching/string_matcher.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "outlier/pca_oda.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"
#include "schema/ddl_parser.h"
#include "server/admission.h"

namespace colscope::server {

namespace {

/// Accept-loop tick: how often the serve loop re-checks the drain flag.
constexpr double kAcceptTickMs = 100.0;
/// Drain / reap poll tick.
constexpr auto kDrainTick = std::chrono::milliseconds(10);

/// Set by the SIGTERM/SIGINT handlers; polled by the serve loop. One
/// daemon per process (the CLI's serve role), so process-wide state is
/// the honest scope — and the only kind a signal handler may touch.
volatile std::sig_atomic_t g_drain_signal = 0;

void DrainSignalHandler(int /*signum*/) { g_drain_signal = 1; }

/// Writes `port` atomically (tmp + rename) so a polling harness never
/// observes a half-written number. Mirrors the worker's port file.
Status WritePortFile(const std::string& path, uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::Internal("cannot open port file: " + tmp);
    out << port << "\n";
    if (!out.flush()) {
      return Status::Internal("cannot write port file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename port file into place: " + path);
  }
  return Status::Ok();
}

}  // namespace

struct ScopeServer::State {
  ScopeServerOptions options;
  net::Listener listener;
  /// Resident per-process state the daemon exists to keep warm.
  embed::HashedLexiconEncoder encoder;
  outlier::PcaDetector detector{0.5};
  std::optional<cache::ArtifactCache> cache;
  SystemRunClock clock;
  AdmissionController admission;
  /// Tripped when the drain grace expires: queued admissions and
  /// in-flight pipeline runs stop at their next check.
  CancellationToken hard_stop;
  std::atomic<bool> drain_requested{false};

  /// Request accounting (also exported as server.* counters; the
  /// atomics additionally back the kHealth reply, which must not touch
  /// the registry from a signal-adjacent path).
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};

  std::atomic<size_t> active_connections{0};
  std::mutex threads_mu;
  std::map<std::thread::id, std::thread> threads;
  std::vector<std::thread::id> finished;

  explicit State(ScopeServerOptions opts, AdmissionOptions admission_opts)
      : options(std::move(opts)), admission(admission_opts) {}
};

namespace {

using State = ScopeServer::State;

void Count(State& state, const char* name) {
  if (state.options.metrics != nullptr) {
    state.options.metrics->GetCounter(name).Increment();
  }
}

void SendError(State& state, net::Socket& socket, const Status& status,
               const net::NetOptions& net) {
  // Best effort: the client also handles an abrupt close.
  (void)socket.SendFrame(net::FrameType::kError,
                         net::EncodeErrorPayload(status), net);
}

HealthInfo SnapshotHealth(const State& state) {
  HealthInfo info;
  info.state = state.admission.draining() ? "draining" : "serving";
  info.queue_depth = state.admission.queue_depth();
  info.inflight = state.admission.inflight();
  info.admitted = state.admitted.load();
  info.shed = state.shed.load();
  info.deadline_exceeded = state.deadline_exceeded.load();
  info.completed = state.completed.load();
  info.failed = state.failed.load();
  return info;
}

/// Builds the request's SchemaSet exactly like the CLI's LoadSchemas
/// does from files — same parsers, same name derivation (the client ships
/// the basename) — so warm reports are byte-identical to cold runs.
Result<schema::SchemaSet> BuildSchemaSet(const ScopeRequest& request) {
  std::vector<schema::Schema> schemas;
  for (const ScopeRequestSchema& entry : request.schemas) {
    if (entry.kind == "ddl") {
      Result<schema::Schema> parsed = schema::ParseDdl(entry.text, entry.name);
      if (!parsed.ok()) {
        return Status::InvalidArgument(entry.name + ": " +
                                       parsed.status().message());
      }
      schemas.push_back(std::move(parsed).value());
    } else {
      datasets::CsvLoadOptions options;
      options.table_name = entry.name;
      Result<schema::Schema> loaded =
          datasets::LoadCsvSchema(entry.text, entry.name, options);
      if (!loaded.ok()) {
        return Status::InvalidArgument(entry.name + ": " +
                                       loaded.status().message());
      }
      schemas.push_back(std::move(loaded).value());
    }
  }
  return schema::SchemaSet(std::move(schemas));
}

/// Matcher factory with the CLI's parameter defaults.
std::unique_ptr<matching::Matcher> MakeMatcher(const ScopeRequest& request) {
  if (request.matcher == "sim") {
    return std::make_unique<matching::SimMatcher>(
        request.param >= 0 ? request.param : 0.6, nullptr);
  }
  if (request.matcher == "cluster") {
    return std::make_unique<matching::ClusterMatcher>(
        request.param >= 0 ? static_cast<size_t>(request.param) : 5);
  }
  if (request.matcher == "lsh") {
    return std::make_unique<matching::LshMatcher>(
        request.param >= 0 ? static_cast<size_t>(request.param) : 1);
  }
  if (request.matcher == "str") {
    return std::make_unique<matching::StringSimilarityMatcher>(
        matching::StringSimilarityMatcher::Measure::kJaroWinkler,
        request.param >= 0 ? request.param : 0.9);
  }
  return nullptr;
}

/// Executes one admitted request and returns the reply payload or the
/// typed error to send. The admission slot is held by the caller.
Result<std::string> ExecuteScope(State& state, const ScopeRequest& request,
                                 const Deadline& deadline) {
  if (state.options.serve_delay_ms > 0.0) {
    // Deterministic-overload test hook: occupy the execution slot
    // without burning CPU, checking the hard stop so drain still works.
    double slept = 0.0;
    while (slept < state.options.serve_delay_ms &&
           !state.hard_stop.cancelled()) {
      std::this_thread::sleep_for(kDrainTick);
      slept += 10.0;
    }
  }
  // The slot wait (and the test-hook delay above) may have consumed the
  // whole budget; catch it here so an expired deadline can never read as
  // "no deadline" below (the pipeline treats a non-positive budget as
  // infinite).
  if (!deadline.infinite() && deadline.expired()) {
    return Status::DeadlineExceeded(
        "request deadline expired before execution started");
  }

  Result<schema::SchemaSet> set = BuildSchemaSet(request);
  if (!set.ok()) return set.status();

  std::unique_ptr<matching::Matcher> matcher = MakeMatcher(request);
  if (matcher == nullptr) {
    return Status::InvalidArgument("unknown matcher: " + request.matcher);
  }

  pipeline::PipelineOptions options;
  options.explained_variance = request.v;
  options.keep_portion = request.keep_portion;
  options.num_threads = state.options.threads;
  if (request.scoper == "pca") {
    options.scoper = pipeline::ScoperKind::kCollaborativePca;
  } else if (request.scoper == "neural") {
    options.scoper = pipeline::ScoperKind::kCollaborativeNeural;
  } else if (request.scoper == "global") {
    options.scoper = pipeline::ScoperKind::kGlobalScoping;
    options.detector = &state.detector;
  } else if (request.scoper == "none") {
    options.scoper = pipeline::ScoperKind::kNone;
  } else {
    return Status::InvalidArgument("unknown scoper: " + request.scoper);
  }
  // The resident cache, shared across requests; the run must not open
  // its own.
  if (state.cache.has_value()) options.cache = &*state.cache;
  // Remaining (post-queue) budget; the run opens its own Deadline on the
  // server clock. No tracer and no metrics: the cold CLI's --json run is
  // uninstrumented too, and instrumented reports embed a metrics block —
  // byte-identity demands the same shape here.
  options.clock = &state.clock;
  if (!deadline.infinite()) options.deadline_ms = deadline.remaining_ms();
  options.cancel = &state.hard_stop;

  pipeline::Pipeline pipe(&state.encoder, options);
  Result<pipeline::PipelineRun> run = pipe.Run(*set, *matcher);
  if (!run.ok()) return run.status();
  if (!run->status.ok()) {
    // The run stopped early at a phase boundary (request deadline or
    // drain hard stop). The daemon replies with the typed status rather
    // than a partial report: a caller that wanted partial artifacts
    // would have run the CLI; a server client needs an unambiguous
    // retry signal.
    return run->status;
  }
  return pipeline::RunToJson(*run, *set);
}

void HandleScope(State& state, net::Socket& socket, const net::Frame& frame,
                 const net::NetOptions& net) {
  Result<ScopeRequest> request = DecodeScopeRequest(frame.payload);
  if (!request.ok()) {
    state.failed.fetch_add(1);
    Count(state, "server.requests_failed");
    SendError(state, socket, request.status(), net);
    return;
  }

  // The deadline starts at admission: a request that waits out its
  // budget in the queue is answered kDeadlineExceeded without ever
  // holding an execution slot.
  const double budget_ms = request->deadline_ms > 0.0
                               ? request->deadline_ms
                               : state.options.request_deadline_ms;
  const Deadline deadline =
      budget_ms > 0.0 ? Deadline::After(&state.clock, budget_ms)
                      : Deadline::Infinite();

  const uint64_t cost = frame.payload.size();
  const Status admitted =
      state.admission.Admit(cost, deadline, &state.hard_stop);
  if (!admitted.ok()) {
    switch (admitted.code()) {
      case StatusCode::kOverloaded:
        state.shed.fetch_add(1);
        Count(state, "server.requests_shed");
        obs::FlightRecorder::Global().Record(
            "server", StrFormat("shed schemas=%zu overloaded",
                                request->schemas.size()));
        break;
      case StatusCode::kDeadlineExceeded:
        state.deadline_exceeded.fetch_add(1);
        Count(state, "server.requests_deadline_exceeded");
        obs::FlightRecorder::Global().Record(
            "server", StrFormat("timeout schemas=%zu queued",
                                request->schemas.size()));
        break;
      default:
        state.failed.fetch_add(1);
        Count(state, "server.requests_failed");
        break;
    }
    SendError(state, socket, admitted, net);
    return;
  }

  state.admitted.fetch_add(1);
  Count(state, "server.requests_admitted");
  const auto started = std::chrono::steady_clock::now();
  Result<std::string> reply = ExecuteScope(state, *request, deadline);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  if (state.options.metrics != nullptr) {
    state.options.metrics
        ->GetHistogram("server.request_ms",
                       obs::ExponentialBuckets(0.1, 2.0, 16))
        .Observe(elapsed_ms);
  }
  state.admission.Release(cost);

  if (reply.ok()) {
    state.completed.fetch_add(1);
    Count(state, "server.requests_completed");
    (void)socket.SendFrame(net::FrameType::kScopeResponse, *reply, net);
    return;
  }
  if (reply.status().code() == StatusCode::kDeadlineExceeded) {
    state.deadline_exceeded.fetch_add(1);
    Count(state, "server.requests_deadline_exceeded");
    obs::FlightRecorder::Global().Record(
        "server",
        StrFormat("timeout schemas=%zu executing", request->schemas.size()));
  } else {
    state.failed.fetch_add(1);
    Count(state, "server.requests_failed");
  }
  SendError(state, socket, reply.status(), net);
}

void HandleConnection(std::shared_ptr<State> state, net::Socket socket) {
  // Every socket operation of this connection honors the drain hard
  // stop, so a stuck peer cannot outlive the grace period.
  net::NetOptions net = state->options.net;
  net.cancel = &state->hard_stop;

  // Idle timeout on the first (only) request frame.
  net::NetOptions first = net;
  first.io_timeout_ms = state->options.idle_timeout_ms;
  Result<net::Frame> frame = socket.RecvFrame(first);
  if (!frame.ok()) {
    if (frame.status().code() == StatusCode::kDeadlineExceeded) {
      Count(*state, "server.idle_timeouts");
      obs::FlightRecorder::Global().Record("server", "idle timeout");
    }
    return;
  }
  switch (frame->type) {
    case net::FrameType::kScopeRequest:
      HandleScope(*state, socket, *frame, net);
      return;
    case net::FrameType::kHealth:
      // Probes bypass admission: health must answer even (especially)
      // when the server is saturated or draining.
      (void)socket.SendFrame(net::FrameType::kHealth,
                             EncodeHealthInfo(SnapshotHealth(*state)), net);
      return;
    case net::FrameType::kShutdown:
      // The programmatic drain trigger, for tests and orchestrators
      // that cannot deliver signals.
      state->drain_requested.store(true);
      obs::FlightRecorder::Global().Record("server", "drain requested rpc");
      (void)socket.SendFrame(net::FrameType::kShutdownAck, "", net);
      return;
    default:
      SendError(*state, socket,
                Status::InvalidArgument(
                    StrFormat("colscoped cannot serve frame type %u",
                              static_cast<unsigned>(frame->type))),
                net);
      return;
  }
}

/// Joins connection threads that have announced completion. Called from
/// the accept loop so a long-lived daemon's thread handles (and stacks)
/// are reclaimed continuously instead of at drain.
void ReapFinished(State& state) {
  std::vector<std::thread::id> done;
  {
    std::lock_guard<std::mutex> lock(state.threads_mu);
    done.swap(state.finished);
  }
  for (const std::thread::id id : done) {
    std::thread victim;
    {
      std::lock_guard<std::mutex> lock(state.threads_mu);
      auto it = state.threads.find(id);
      if (it == state.threads.end()) continue;
      victim = std::move(it->second);
      state.threads.erase(it);
    }
    if (victim.joinable()) victim.join();
  }
}

void SpawnConnection(std::shared_ptr<State> state, net::Socket socket) {
  state->active_connections.fetch_add(1);
  auto shared = std::make_shared<net::Socket>(std::move(socket));
  std::thread thread([state, shared]() {
    HandleConnection(state, std::move(*shared));
    std::lock_guard<std::mutex> lock(state->threads_mu);
    state->finished.push_back(std::this_thread::get_id());
    state->active_connections.fetch_sub(1);
  });
  std::lock_guard<std::mutex> lock(state->threads_mu);
  const std::thread::id id = thread.get_id();
  state->threads.emplace(id, std::move(thread));
}

}  // namespace

uint16_t ScopeServer::port() const { return state_->listener.port(); }

void ScopeServer::RequestDrain() { state_->drain_requested.store(true); }

void ScopeServer::InstallSignalHandlers() {
  g_drain_signal = 0;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = DrainSignalHandler;
  sigemptyset(&action.sa_mask);
  // Deliberately no SA_RESTART: interrupted syscalls surface EINTR,
  // which the socket layer retries — the path the daemon must survive.
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

HealthInfo ScopeServer::Health() const { return SnapshotHealth(*state_); }

Result<ScopeServer> ScopeServer::Create(ScopeServerOptions options) {
  Result<net::Listener> listener = net::Listener::Bind(options.listen);
  if (!listener.ok()) return listener.status();

  AdmissionOptions admission;
  admission.max_queue = options.max_queue;
  admission.max_inflight = options.max_inflight > 0 ? options.max_inflight : 1;
  admission.max_cost_bytes = options.max_cost_bytes;
  admission.metrics = options.metrics;

  ScopeServer server;
  server.state_ = std::make_shared<State>(std::move(options), admission);
  State& state = *server.state_;
  state.listener = std::move(listener).value();

  if (state.options.metrics != nullptr) {
    // Pre-register the headline instruments so an idle snapshot still
    // exports the keys (as zeroes).
    for (const char* name :
         {"server.requests_admitted", "server.requests_shed",
          "server.requests_deadline_exceeded", "server.requests_completed",
          "server.requests_failed", "server.connections_rejected",
          "server.idle_timeouts"}) {
      state.options.metrics->GetCounter(name);
    }
  }

  if (!state.options.cache_dir.empty()) {
    cache::ArtifactCacheOptions copts;
    copts.dir = state.options.cache_dir;
    copts.max_bytes = state.options.cache_max_bytes;
    copts.metrics = state.options.metrics;
    Result<cache::ArtifactCache> cache =
        cache::ArtifactCache::Open(std::move(copts));
    if (cache.ok()) {
      state.cache.emplace(std::move(cache).value());
    } else {
      // Same posture as the pipeline: a cache is never a correctness
      // risk, so a broken one disables itself loudly.
      COLSCOPE_LOG(Warn) << "resident artifact cache disabled: "
                         << cache.status().ToString();
    }
  }

  if (!state.options.port_file.empty()) {
    COLSCOPE_RETURN_IF_ERROR(
        WritePortFile(state.options.port_file, state.listener.port()));
  }
  COLSCOPE_LOG(Info) << "colscoped listening on port "
                     << state.listener.port();
  return server;
}

Status ScopeServer::Serve() {
  State& state = *state_;
  while (!state.drain_requested.load()) {
    if (g_drain_signal != 0) {
      obs::FlightRecorder::Global().Record("server", "drain requested signal");
      state.drain_requested.store(true);
      break;
    }
    Result<net::Socket> socket =
        state.listener.Accept(kAcceptTickMs, state.options.net);
    ReapFinished(state);
    if (!socket.ok()) {
      if (socket.status().code() == StatusCode::kNotFound) continue;
      if (socket.status().code() == StatusCode::kCancelled) break;
      break;
    }
    if (state.active_connections.load() >= state.options.max_connections) {
      // Per-connection limit: refuse before spawning anything. The
      // typed error frame tells well-behaved clients to back off.
      Count(state, "server.connections_rejected");
      obs::FlightRecorder::Global().Record("server", "connection rejected");
      net::Socket excess = std::move(socket).value();
      SendError(state, excess,
                Status::Overloaded(StrFormat(
                    "connection limit reached (%zu)",
                    state.options.max_connections)),
                state.options.net);
      continue;
    }
    SpawnConnection(state_, std::move(socket).value());
  }

  // ---- Graceful drain ----------------------------------------------
  obs::FlightRecorder::Global().Record(
      "server", StrFormat("drain begin inflight=%zu queued=%zu",
                          state.admission.inflight(),
                          state.admission.queue_depth()));
  // Stop accepting: new connections are refused at the TCP level, and
  // requests still arriving on accepted connections are rejected with
  // kOverloaded by the admission gate.
  state.admission.BeginDrain();
  state.listener.Close();

  // In-flight (and already-queued) work gets the grace period to finish
  // or deadline out on its own.
  double waited_ms = 0.0;
  while (state.active_connections.load() > 0 &&
         waited_ms < state.options.drain_grace_ms) {
    std::this_thread::sleep_for(kDrainTick);
    waited_ms += 10.0;
    ReapFinished(state);
  }
  if (state.active_connections.load() > 0) {
    // Grace expired: hard-stop the stragglers. Queued admissions return
    // kCancelled, pipeline runs stop at the next phase boundary, socket
    // waits abort — every affected request still gets a typed error.
    obs::FlightRecorder::Global().Record(
        "server", StrFormat("drain grace expired inflight=%zu",
                            state.admission.inflight()));
    state.hard_stop.Cancel();
  }

  // Join everything; handlers are deadline/cancel-aware, so this
  // terminates.
  for (;;) {
    std::map<std::thread::id, std::thread> remaining;
    {
      std::lock_guard<std::mutex> lock(state.threads_mu);
      remaining.swap(state.threads);
      state.finished.clear();
    }
    if (remaining.empty()) break;
    for (auto& [id, thread] : remaining) {
      if (thread.joinable()) thread.join();
    }
  }

  obs::FlightRecorder::Global().Record(
      "server",
      StrFormat("drain complete completed=%llu shed=%llu timeouts=%llu",
                static_cast<unsigned long long>(state.completed.load()),
                static_cast<unsigned long long>(state.shed.load()),
                static_cast<unsigned long long>(
                    state.deadline_exceeded.load())));
  return Status::Ok();
}

}  // namespace colscope::server
