#ifndef COLSCOPE_SERVER_PROTOCOL_H_
#define COLSCOPE_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"

namespace colscope::server {

/// Hard cap on schemas per scope request; mirrors the assign codec's
/// schema cap so a hostile count can never size an allocation.
inline constexpr size_t kMaxRequestSchemas = 4096;

/// One schema shipped inside a kScopeRequest: the raw source text plus
/// how to parse it ("ddl" -> schema::ParseDdl, "csv" ->
/// datasets::LoadCsvSchema) and the schema name the cold CLI would have
/// derived from the file basename — shipping the name keeps warm server
/// reports byte-identical to cold CLI runs.
struct ScopeRequestSchema {
  std::string kind;  ///< "ddl" or "csv".
  std::string name;
  std::string text;
};

/// kScopeRequest payload: everything one pipeline run needs, expressed
/// with the same parameter names and defaults as the CLI flags so a
/// request is a faithful serialization of a cold invocation.
struct ScopeRequest {
  std::vector<ScopeRequestSchema> schemas;
  std::string scoper = "pca";    ///< pca|neural|global|none.
  std::string matcher = "sim";   ///< sim|cluster|lsh|str.
  double param = -1.0;           ///< Matcher parameter; < 0 = default.
  double v = 0.8;                ///< Explained-variance target.
  double keep_portion = 0.5;     ///< For the global-scoping baseline.
  /// Per-request deadline in milliseconds, measured from admission (so
  /// queue wait counts against it). Non-positive defers to the server's
  /// --request-deadline-ms default.
  double deadline_ms = 0.0;
  /// Frame v2 trace context (optional line, all-zero = untraced).
  net::TraceContext trace;
};

std::string EncodeScopeRequest(const ScopeRequest& request);
Result<ScopeRequest> DecodeScopeRequest(const std::string& payload);

/// kHealth reply payload: the daemon's lifecycle state and request
/// accounting, for probes and the drain harness.
struct HealthInfo {
  std::string state;  ///< "serving" or "draining".
  size_t queue_depth = 0;
  size_t inflight = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
};

std::string EncodeHealthInfo(const HealthInfo& info);
Result<HealthInfo> DecodeHealthInfo(const std::string& payload);

}  // namespace colscope::server

#endif  // COLSCOPE_SERVER_PROTOCOL_H_
