#include "server/protocol.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/strings.h"
#include "net/telemetry.h"

namespace colscope::server {

namespace {

/// Whitespace-split tokens of one line.
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

Status Malformed(const char* what, const std::string& line) {
  return Status::InvalidArgument(
      StrFormat("malformed %s line: %s", what, line.c_str()));
}

bool ParseFiniteDouble(const std::string& token, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0' &&
         end != token.c_str() && std::isfinite(out);
}

bool ParseUint64(const std::string& token, uint64_t& out) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(token.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

/// A bare identifier token: non-empty, no whitespace or '%' games — the
/// scoper/matcher/kind vocabulary. Validated so a decoded request can be
/// logged verbatim.
bool IsIdentToken(const std::string& token) {
  if (token.empty() || token.size() > 64) return false;
  for (char c : token) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string EncodeScopeRequest(const ScopeRequest& request) {
  std::string out = "colscope-scope v1\n";
  out += StrFormat("config %s %s %.17g %.17g %.17g %.17g\n",
                   request.scoper.c_str(), request.matcher.c_str(),
                   request.param, request.v, request.keep_portion,
                   request.deadline_ms);
  if (request.trace.trace_id != 0) {
    out += StrFormat(
        "trace %llu %llu\n",
        static_cast<unsigned long long>(request.trace.trace_id),
        static_cast<unsigned long long>(request.trace.parent_span));
  }
  for (const ScopeRequestSchema& schema : request.schemas) {
    out += StrFormat("schema %s %s %s\n", schema.kind.c_str(),
                     net::EncodeStatsToken(schema.name).c_str(),
                     net::EncodeStatsToken(schema.text).c_str());
  }
  out += "end\n";
  return out;
}

Result<ScopeRequest> DecodeScopeRequest(const std::string& payload) {
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != "colscope-scope v1") {
    return Status::InvalidArgument("bad scope request header: " + line);
  }
  ScopeRequest request;
  bool saw_end = false;
  bool saw_config = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    const std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) return Malformed("scope request", line);
    if (tokens[0] == "config" && tokens.size() == 7) {
      if (!IsIdentToken(tokens[1]) || !IsIdentToken(tokens[2])) {
        return Malformed("config", line);
      }
      request.scoper = tokens[1];
      request.matcher = tokens[2];
      if (!ParseFiniteDouble(tokens[3], request.param) ||
          !ParseFiniteDouble(tokens[4], request.v) ||
          !ParseFiniteDouble(tokens[5], request.keep_portion) ||
          !ParseFiniteDouble(tokens[6], request.deadline_ms)) {
        return Malformed("config", line);
      }
      if (request.v <= 0.0 || request.v > 1.0) {
        return Malformed("config v", line);
      }
      saw_config = true;
    } else if (tokens[0] == "trace" && tokens.size() == 3) {
      if (!ParseUint64(tokens[1], request.trace.trace_id) ||
          !ParseUint64(tokens[2], request.trace.parent_span)) {
        return Malformed("trace", line);
      }
    } else if (tokens[0] == "schema" && tokens.size() == 4) {
      if (request.schemas.size() >= kMaxRequestSchemas) {
        return Status::InvalidArgument(
            StrFormat("scope request exceeds the %zu schema cap",
                      kMaxRequestSchemas));
      }
      if (tokens[1] != "ddl" && tokens[1] != "csv") {
        return Malformed("schema kind", line);
      }
      Result<std::string> name = net::DecodeStatsToken(tokens[2]);
      if (!name.ok()) return Malformed("schema name", line);
      Result<std::string> text = net::DecodeStatsToken(tokens[3]);
      if (!text.ok()) return Malformed("schema text", line);
      ScopeRequestSchema schema;
      schema.kind = tokens[1];
      schema.name = std::move(name).value();
      schema.text = std::move(text).value();
      request.schemas.push_back(std::move(schema));
    } else {
      return Malformed("scope request", line);
    }
  }
  if (!saw_end) {
    return Status::InvalidArgument("scope request missing end marker");
  }
  if (!saw_config) {
    return Status::InvalidArgument("scope request missing config line");
  }
  if (request.schemas.empty()) {
    return Status::InvalidArgument("scope request carries no schemas");
  }
  return request;
}

std::string EncodeHealthInfo(const HealthInfo& info) {
  std::string out = "colscope-health v1\n";
  out += StrFormat("state %s\n", info.state.c_str());
  out += StrFormat("queue_depth %zu\n", info.queue_depth);
  out += StrFormat("inflight %zu\n", info.inflight);
  out += StrFormat("admitted %llu\n",
                   static_cast<unsigned long long>(info.admitted));
  out += StrFormat("shed %llu\n", static_cast<unsigned long long>(info.shed));
  out += StrFormat(
      "deadline_exceeded %llu\n",
      static_cast<unsigned long long>(info.deadline_exceeded));
  out += StrFormat("completed %llu\n",
                   static_cast<unsigned long long>(info.completed));
  out += StrFormat("failed %llu\n",
                   static_cast<unsigned long long>(info.failed));
  out += "end\n";
  return out;
}

Result<HealthInfo> DecodeHealthInfo(const std::string& payload) {
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != "colscope-health v1") {
    return Status::InvalidArgument("bad health header: " + line);
  }
  HealthInfo info;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    const std::vector<std::string> tokens = Tokens(line);
    if (tokens.size() != 2) return Malformed("health", line);
    uint64_t n = 0;
    if (tokens[0] == "state") {
      if (tokens[1] != "serving" && tokens[1] != "draining") {
        return Malformed("health state", line);
      }
      info.state = tokens[1];
    } else if (tokens[0] == "queue_depth") {
      if (!ParseUint64(tokens[1], n)) return Malformed("health", line);
      info.queue_depth = static_cast<size_t>(n);
    } else if (tokens[0] == "inflight") {
      if (!ParseUint64(tokens[1], n)) return Malformed("health", line);
      info.inflight = static_cast<size_t>(n);
    } else if (tokens[0] == "admitted") {
      if (!ParseUint64(tokens[1], info.admitted)) {
        return Malformed("health", line);
      }
    } else if (tokens[0] == "shed") {
      if (!ParseUint64(tokens[1], info.shed)) return Malformed("health", line);
    } else if (tokens[0] == "deadline_exceeded") {
      if (!ParseUint64(tokens[1], info.deadline_exceeded)) {
        return Malformed("health", line);
      }
    } else if (tokens[0] == "completed") {
      if (!ParseUint64(tokens[1], info.completed)) {
        return Malformed("health", line);
      }
    } else if (tokens[0] == "failed") {
      if (!ParseUint64(tokens[1], info.failed)) {
        return Malformed("health", line);
      }
    } else {
      return Malformed("health", line);
    }
  }
  if (!saw_end) {
    return Status::InvalidArgument("health payload missing end marker");
  }
  if (info.state.empty()) {
    return Status::InvalidArgument("health payload missing state");
  }
  return info;
}

}  // namespace colscope::server
