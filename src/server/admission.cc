#include "server/admission.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"
#include "obs/metrics.h"

namespace colscope::server {

namespace {

/// Condvar wait slice. Deadlines and cancellation are level-triggered
/// state the waiter polls, so the slice bounds how stale a queued
/// request's view of them can get — same discipline as net's poll tick.
constexpr auto kWaitSlice = std::chrono::milliseconds(10);

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  if (options_.metrics != nullptr) {
    // Pre-register so an idle server still exports the gauge (as zero).
    options_.metrics->GetGauge("server.queue_depth");
  }
}

void AdmissionController::UpdateGauge() {
  if (options_.metrics != nullptr) {
    options_.metrics->GetGauge("server.queue_depth")
        .Set(static_cast<double>(queued_));
  }
}

Status AdmissionController::Admit(uint64_t cost_bytes,
                                  const Deadline& deadline,
                                  const CancellationToken* hard_stop) {
  std::unique_lock<std::mutex> lock(mu_);
  // Shedding is decided at arrival, under the lock, from bounded state —
  // the request is either queued now or rejected now. Rejections are
  // O(1) and allocation-free, which is what keeps an overload from
  // collapsing into timeouts-for-everyone.
  if (draining_) {
    return Status::Overloaded("server is draining; not accepting work");
  }
  if (queued_ >= options_.max_queue) {
    return Status::Overloaded(
        StrFormat("admission queue full (%zu queued, cap %zu)", queued_,
                  options_.max_queue));
  }
  if (options_.max_cost_bytes > 0 &&
      cost_bytes_ + cost_bytes > options_.max_cost_bytes) {
    return Status::Overloaded(StrFormat(
        "request of %llu bytes exceeds the remaining cost budget "
        "(%llu of %llu bytes in use)",
        static_cast<unsigned long long>(cost_bytes),
        static_cast<unsigned long long>(cost_bytes_),
        static_cast<unsigned long long>(options_.max_cost_bytes)));
  }

  ++queued_;
  cost_bytes_ += cost_bytes;
  UpdateGauge();

  while (inflight_ >= options_.max_inflight) {
    if (hard_stop != nullptr && hard_stop->cancelled()) {
      --queued_;
      cost_bytes_ -= cost_bytes;
      UpdateGauge();
      return Status::Cancelled("server stopped while the request was queued");
    }
    if (deadline.expired()) {
      --queued_;
      cost_bytes_ -= cost_bytes;
      UpdateGauge();
      return Status::DeadlineExceeded(
          "request deadline expired while queued for an execution slot");
    }
    slot_free_.wait_for(lock, kWaitSlice);
  }

  --queued_;
  ++inflight_;
  UpdateGauge();
  return Status::Ok();
}

void AdmissionController::Release(uint64_t cost_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ = inflight_ > 0 ? inflight_ - 1 : 0;
    cost_bytes_ = cost_bytes_ > cost_bytes ? cost_bytes_ - cost_bytes : 0;
  }
  slot_free_.notify_one();
}

void AdmissionController::BeginDrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  // Queued waiters re-check state on wake; hard_stop (if tripped later)
  // is what actually evicts them.
  slot_free_.notify_all();
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

}  // namespace colscope::server
