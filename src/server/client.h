#ifndef COLSCOPE_SERVER_CLIENT_H_
#define COLSCOPE_SERVER_CLIENT_H_

#include <string>

#include "common/status.h"
#include "net/socket.h"
#include "server/protocol.h"

namespace colscope::server {

/// Sends one scope request to a colscoped daemon and returns the JSON
/// report payload — the exact bytes a cold `colscope match --json` run
/// would print (without the trailing newline). Server-side rejections
/// (kOverloaded shed, kDeadlineExceeded, parse errors) come back as
/// their typed Status.
Result<std::string> RequestScope(const net::Endpoint& server,
                                 const ScopeRequest& request,
                                 const net::NetOptions& options);

/// Probes a daemon's lifecycle state and request accounting.
Result<HealthInfo> RequestHealth(const net::Endpoint& server,
                                 const net::NetOptions& options);

/// Asks a daemon to drain and exit (the programmatic SIGTERM). Returns
/// once the daemon acknowledged; the drain itself completes
/// asynchronously.
Status RequestShutdown(const net::Endpoint& server,
                       const net::NetOptions& options);

}  // namespace colscope::server

#endif  // COLSCOPE_SERVER_CLIENT_H_
