#ifndef COLSCOPE_SERVER_SERVER_H_
#define COLSCOPE_SERVER_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/socket.h"
#include "server/protocol.h"

namespace colscope::server {

/// Configuration of the resident `colscoped` daemon. Defaults are sized
/// for a small deployment; every limit exists to convert overload into
/// typed kOverloaded rejections instead of memory growth.
struct ScopeServerOptions {
  net::Endpoint listen;          ///< Port 0 binds an ephemeral port.
  /// When non-empty, the bound port is written here atomically
  /// (tmp + rename) — the harness plumbing for ephemeral ports.
  std::string port_file;
  /// Admission bounds (see admission.h).
  size_t max_queue = 16;
  size_t max_inflight = 2;
  uint64_t max_cost_bytes = 256ull << 20;
  /// Concurrent connections; excess connections get an immediate
  /// kOverloaded error frame and a close.
  size_t max_connections = 32;
  /// Default per-request deadline, measured from admission so queue wait
  /// counts against it. Requests may carry their own (smaller or larger)
  /// deadline; non-positive means no deadline.
  double request_deadline_ms = 30000.0;
  /// How long a SIGTERM-initiated drain waits for in-flight work before
  /// hard-cancelling it (the stragglers still get typed error replies).
  double drain_grace_ms = 5000.0;
  /// How long an accepted connection may sit idle before its first
  /// request frame; expiry closes the connection.
  double idle_timeout_ms = 10000.0;
  /// Test hook: sleep this long inside each request's execution slot
  /// before running the pipeline, making overload and mid-request drain
  /// deterministic to provoke.
  double serve_delay_ms = 0.0;
  /// Resident content-addressed artifact cache; empty disables caching.
  /// The cache is opened once and shared across every request, so warm
  /// requests skip recomputation — and survive a restart, since the
  /// store is on disk.
  std::string cache_dir;
  uint64_t cache_max_bytes = 0;
  /// Worker threads per request's pipeline run (1 = serial). Reports are
  /// byte-identical at any setting.
  size_t threads = 1;
  /// Borrowed registry for the server.* instruments; may be null.
  obs::MetricsRegistry* metrics = nullptr;
  /// Socket discipline for request/response frames (io timeout, tracer,
  /// metrics). The cancel field is overridden internally by the drain
  /// hard-stop token.
  net::NetOptions net;
};

/// The long-running scoping daemon: keeps the encoder, artifact cache,
/// and detector resident, and serves kScopeRequest / kHealth /
/// kShutdown over the frame protocol — one request per connection, the
/// worker-protocol idiom. Robustness lifecycle:
///
///   accept -> admit (bounded queue, cost budget) -> execute under the
///   request deadline -> reply | typed kError
///
/// SIGTERM (via InstallSignalHandlers) or RequestDrain() starts a
/// graceful drain: the listener closes (new connections are refused),
/// queued-but-unadmitted requests are rejected with kOverloaded,
/// in-flight requests finish or deadline out within drain_grace_ms, and
/// Serve() returns Ok so the process can flush telemetry and exit 0.
class ScopeServer {
 public:
  static Result<ScopeServer> Create(ScopeServerOptions options);

  uint16_t port() const;

  /// Serves until a drain completes. Returns Ok after a clean drain;
  /// non-OK only for listener-level failures.
  Status Serve();

  /// Thread-safe drain trigger (the programmatic SIGTERM).
  void RequestDrain();

  /// Installs SIGTERM + SIGINT handlers that trigger a drain of the
  /// process-wide current server (the one that most recently called
  /// this). Handlers only set a sig_atomic_t flag; the serve loop polls
  /// it between accept ticks.
  void InstallSignalHandlers();

  /// Current lifecycle + accounting snapshot (what kHealth reports).
  HealthInfo Health() const;

  struct State;

 private:
  std::shared_ptr<State> state_;
};

}  // namespace colscope::server

#endif  // COLSCOPE_SERVER_SERVER_H_
