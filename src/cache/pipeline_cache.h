#ifndef COLSCOPE_CACHE_PIPELINE_CACHE_H_
#define COLSCOPE_CACHE_PIPELINE_CACHE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "cache/artifact_cache.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "embed/encoder.h"
#include "matching/matcher.h"
#include "schema/schema_set.h"
#include "schema/serialize.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"

namespace colscope::obs {
class Tracer;
}  // namespace colscope::obs

namespace colscope::cache {

/// Memoizes the pipeline's expensive phase artifacts in an ArtifactCache,
/// keyed by per-source *content* fingerprints so a warm re-run after a
/// schema delta recomputes only what the delta actually dirtied:
///
///   sig       per source: the encoded signature rows. Key: encoder
///             identity + serialize options + the source's serialized
///             element texts. Renaming a source file is a hit (no schema
///             name appears in any serialized text); editing any table,
///             attribute, type, or constraint is a miss for that source
///             only.
///   model     per source: the fitted phase-II local PCA model. Key: the
///             source's content + the explained-variance target.
///   keep      per source: the phase-III keep-mask slice. Key: the
///             source's content + the full fitted model set + the
///             semantic pipeline options — editing any source refreshes
///             every keep slice (the foreign models changed), which is
///             cheap relative to encoding and fitting.
///   simblock  per unordered source pair: the similarity block (candidate
///             linkages between the two sources). Key: the matcher's
///             BlockCacheId + both sources' content + both sources'
///             actual keep bits — so a recomputed-but-identical keep mask
///             keeps clean-pair blocks hitting, and only blocks touching
///             a dirty source recompute.
///
/// Every payload is serialized with the repository's %.17g round-trip-
/// exact discipline, so a warm run's report is byte-identical to the cold
/// run that populated the cache, at any thread count.
///
/// Error contract: Cancelled / DeadlineExceeded from the underlying
/// cache propagate (the run should stop, not grind on); every other
/// cache problem — miss, corruption, unparseable payload, failed write —
/// degrades to recomputation and is never an error.
class PipelineCache {
 public:
  /// Serializes every schema of `set` once (cheap; the texts are needed
  /// anyway) and derives the per-source content fingerprints. `cache`,
  /// `encoder`, and `set` are borrowed and must outlive this object.
  /// `semantic_options_fp` fingerprints the pipeline options that change
  /// artifacts (see pipeline::SemanticOptionsString).
  PipelineCache(ArtifactCache* cache, const embed::SentenceEncoder* encoder,
                const schema::SchemaSet& set, uint64_t semantic_options_fp,
                const schema::SerializeOptions& serialize_options = {});

  /// Phase I with per-source memoization. Emits the same
  /// pipeline.serialize / pipeline.embed spans as
  /// scoping::BuildSignatures and returns a byte-identical SignatureSet;
  /// only sources whose rows missed are re-encoded (on `pool` when
  /// non-null).
  Result<scoping::SignatureSet> BuildSignatures(obs::Tracer* tracer,
                                                ThreadPool* pool);

  /// Phase II with per-source memoization: sources whose model hit are
  /// restored (re-stamped to their current index); the rest are fitted —
  /// in parallel on `pool` when non-null — exactly as
  /// scoping::FitLocalModelsOnPool would.
  Result<std::vector<scoping::LocalModel>> FitLocalModels(
      const scoping::SignatureSet& signatures, double explained_variance,
      ThreadPool* pool, const CancellationToken* cancel);

  /// Phase III (fault-free path) with per-source keep-slice memoization.
  Result<std::vector<bool>> AssessAll(
      const scoping::SignatureSet& signatures,
      const std::vector<scoping::LocalModel>& models);

  /// Matching with per-source-pair similarity-block memoization. Only
  /// valid for matchers with a non-empty BlockCacheId (the union of
  /// their MatchBlock calls over all unordered pairs equals Match);
  /// returns Unimplemented otherwise and the caller falls back to
  /// matcher.Match.
  Result<std::set<matching::ElementPair>> Match(
      const scoping::SignatureSet& signatures,
      const std::vector<bool>& active, const matching::Matcher& matcher);

  /// Content fingerprint of each source, index-aligned with the set.
  const std::vector<uint64_t>& source_fingerprints() const {
    return source_fps_;
  }

 private:
  CacheKey SigKey(size_t schema) const;
  CacheKey ModelKey(size_t schema, double explained_variance) const;
  CacheKey KeepKey(size_t schema, uint64_t models_fp) const;
  CacheKey SimBlockKey(const matching::Matcher& matcher, size_t schema_a,
                       uint64_t keep_a, size_t schema_b,
                       uint64_t keep_b) const;

  ArtifactCache* cache_;
  const embed::SentenceEncoder* encoder_;
  const schema::SchemaSet* set_;
  uint64_t semantic_options_fp_;
  /// Everything outside the per-source content that still determines the
  /// signature bytes: encoder identity + serialize options.
  uint64_t base_fp_;
  std::vector<std::vector<schema::SerializedElement>> serialized_;
  std::vector<uint64_t> source_fps_;
};

}  // namespace colscope::cache

#endif  // COLSCOPE_CACHE_PIPELINE_CACHE_H_
