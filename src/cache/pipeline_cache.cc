#include "cache/pipeline_cache.h"

#include <optional>
#include <sstream>
#include <utility>

#include "common/checksum.h"
#include "common/strings.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "schema/fingerprint.h"
#include "scoping/io_util.h"
#include "scoping/model_io.h"
#include "scoping/signature_io.h"

namespace colscope::cache {

namespace {

constexpr char kBaseDomain[] = "colscope-pipeline-cache v1";
constexpr char kKeepBitsDomain[] = "colscope-keep-bits v1";
constexpr char kModelSetDomain[] = "colscope-model-set-fingerprint v1";
constexpr char kSigBlockHeader[] = "colscope-sig-block v1";
constexpr char kSimBlockHeader[] = "colscope-sim-block v1";

bool IsInterrupt(const Status& status) {
  return status.code() == StatusCode::kCancelled ||
         status.code() == StatusCode::kDeadlineExceeded;
}

/// Parses "<key> <n>" with the shared strict-size discipline.
bool ExpectSizeLine(std::istream& in, std::string_view key, size_t& out) {
  std::string line;
  if (!std::getline(in, line)) return false;
  const std::vector<std::string> tokens =
      SplitString(StripAsciiWhitespace(line), " \t");
  return tokens.size() == 2 && tokens[0] == key &&
         scoping::io::ParseSize(tokens[1], out);
}

/// Parses a table/attribute index: a non-negative decimal or exactly
/// "-1" (the table-element marker).
bool ParseRefIndex(const std::string& token, int& out) {
  if (token == "-1") {
    out = -1;
    return true;
  }
  size_t value = 0;
  if (!scoping::io::ParseSize(token, value) || value > size_t{1} << 30) {
    return false;
  }
  out = static_cast<int>(value);
  return true;
}

/// Fingerprint of one source's keep bits (row order within the source).
uint64_t KeepBitsFingerprint(const std::vector<bool>& active,
                             const std::vector<size_t>& rows) {
  std::string bits;
  bits.reserve(rows.size());
  for (size_t row : rows) bits.push_back(active[row] ? '1' : '0');
  return Fnv1a64(bits, Fnv1a64(kKeepBitsDomain));
}

/// Position-dependent fingerprint of the whole fitted model set — any
/// model change (or reorder) invalidates every cached keep slice, which
/// is the conservative and cheap-to-recompute direction.
uint64_t ModelSetFingerprint(
    const std::vector<scoping::LocalModel>& models) {
  uint64_t h = Fnv1a64(kModelSetDomain);
  for (const scoping::LocalModel& model : models) {
    h = Fnv1a64(scoping::SerializeLocalModel(model), h);
    h = Fnv1a64("\x1f", h);
  }
  return h;
}

/// One source's encoded rows, %.17g round-trip exact.
std::string SerializeSigBlock(const linalg::Matrix& rows) {
  std::string out(kSigBlockHeader);
  out += '\n';
  out += StrFormat("rows %zu\n", rows.rows());
  out += StrFormat("dims %zu\n", rows.cols());
  for (size_t r = 0; r < rows.rows(); ++r) {
    scoping::io::AppendVector(out, rows.Row(r));
  }
  return out;
}

/// Parses a sig block; nullopt on any malformation (callers recompute).
/// `want_rows`/`want_dims` pin the expected shape — a block whose shape
/// drifted from the current schema or encoder is unusable even when its
/// own envelope is self-consistent.
std::optional<linalg::Matrix> ParseSigBlock(const std::string& payload,
                                            size_t want_rows,
                                            size_t want_dims) {
  std::istringstream stream(payload);
  std::string line;
  if (!std::getline(stream, line) ||
      StripAsciiWhitespace(line) != kSigBlockHeader) {
    return std::nullopt;
  }
  size_t rows = 0;
  size_t dims = 0;
  if (!ExpectSizeLine(stream, "rows", rows) ||
      !ExpectSizeLine(stream, "dims", dims) || rows != want_rows ||
      dims != want_dims) {
    return std::nullopt;
  }
  linalg::Matrix out(rows, dims);
  linalg::Vector row;
  for (size_t r = 0; r < rows; ++r) {
    if (!std::getline(stream, line) ||
        !scoping::io::ParseVectorLine(line, dims, row).ok()) {
      return std::nullopt;
    }
    out.SetRow(r, row);
  }
  if (std::getline(stream, line) && !StripAsciiWhitespace(line).empty()) {
    return std::nullopt;
  }
  return out;
}

/// A similarity block's pairs in *relative* form — table/attribute
/// indices only, no schema indices — so a block stays valid when its two
/// sources move to different positions in the set.
std::string SerializeSimBlock(const std::set<matching::ElementPair>& pairs,
                              int schema_a) {
  std::string out(kSimBlockHeader);
  out += '\n';
  out += StrFormat("pairs %zu\n", pairs.size());
  for (const matching::ElementPair& pair : pairs) {
    // Canonicalized pairs order by schema first, so `first` belongs to
    // the lower-indexed source; emit the a-side ref first regardless of
    // which side that is.
    const schema::ElementRef& a_ref =
        pair.first.schema == schema_a ? pair.first : pair.second;
    const schema::ElementRef& b_ref =
        pair.first.schema == schema_a ? pair.second : pair.first;
    out += StrFormat("pair %d %d %d %d\n", a_ref.table, a_ref.attribute,
                     b_ref.table, b_ref.attribute);
  }
  return out;
}

std::optional<std::set<matching::ElementPair>> ParseSimBlock(
    const std::string& payload, int schema_a, int schema_b) {
  std::istringstream stream(payload);
  std::string line;
  if (!std::getline(stream, line) ||
      StripAsciiWhitespace(line) != kSimBlockHeader) {
    return std::nullopt;
  }
  size_t count = 0;
  if (!ExpectSizeLine(stream, "pairs", count) ||
      count > size_t{1} << 30) {
    return std::nullopt;
  }
  std::set<matching::ElementPair> out;
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(stream, line)) return std::nullopt;
    const std::vector<std::string> tokens =
        SplitString(StripAsciiWhitespace(line), " \t");
    int at = 0, aa = 0, bt = 0, ba = 0;
    if (tokens.size() != 5 || tokens[0] != "pair" ||
        !ParseRefIndex(tokens[1], at) || !ParseRefIndex(tokens[2], aa) ||
        !ParseRefIndex(tokens[3], bt) || !ParseRefIndex(tokens[4], ba)) {
      return std::nullopt;
    }
    out.insert(matching::MakePair(
        schema::ElementRef{schema_a, at, aa},
        schema::ElementRef{schema_b, bt, ba}));
  }
  if (std::getline(stream, line) && !StripAsciiWhitespace(line).empty()) {
    return std::nullopt;
  }
  return out;
}

}  // namespace

PipelineCache::PipelineCache(ArtifactCache* cache,
                             const embed::SentenceEncoder* encoder,
                             const schema::SchemaSet& set,
                             uint64_t semantic_options_fp,
                             const schema::SerializeOptions& serialize_options)
    : cache_(cache),
      encoder_(encoder),
      set_(&set),
      semantic_options_fp_(semantic_options_fp) {
  base_fp_ = Fnv1a64(encoder_->CacheIdentity(), Fnv1a64(kBaseDomain));
  base_fp_ = Fnv1a64(
      StrFormat("samples=%d,max=%zu",
                serialize_options.include_instance_samples ? 1 : 0,
                serialize_options.max_samples),
      base_fp_);
  serialized_.reserve(set.num_schemas());
  source_fps_.reserve(set.num_schemas());
  for (size_t s = 0; s < set.num_schemas(); ++s) {
    serialized_.push_back(schema::SerializeSchema(
        set.schema(static_cast<int>(s)), static_cast<int>(s),
        serialize_options));
    source_fps_.push_back(
        schema::SerializedElementsFingerprint(serialized_.back()));
  }
}

CacheKey PipelineCache::SigKey(size_t schema) const {
  return CacheKeyBuilder("sig")
      .AddHex("base", base_fp_)
      .AddHex("src", source_fps_[schema])
      .Build();
}

CacheKey PipelineCache::ModelKey(size_t schema,
                                 double explained_variance) const {
  return CacheKeyBuilder("model")
      .AddHex("base", base_fp_)
      .AddHex("src", source_fps_[schema])
      .AddText("ev", StrFormat("%.17g", explained_variance))
      .Build();
}

CacheKey PipelineCache::KeepKey(size_t schema, uint64_t models_fp) const {
  return CacheKeyBuilder("keep")
      .AddHex("base", base_fp_)
      .AddHex("opts", semantic_options_fp_)
      .AddHex("src", source_fps_[schema])
      .AddHex("models", models_fp)
      .AddText("schema", StrFormat("%zu", schema))
      .Build();
}

CacheKey PipelineCache::SimBlockKey(const matching::Matcher& matcher,
                                    size_t schema_a, uint64_t keep_a,
                                    size_t schema_b, uint64_t keep_b) const {
  return CacheKeyBuilder("simblock")
      .AddHex("base", base_fp_)
      .AddText("matcher", matcher.BlockCacheId())
      .AddHex("srca", source_fps_[schema_a])
      .AddHex("keepa", keep_a)
      .AddHex("srcb", source_fps_[schema_b])
      .AddHex("keepb", keep_b)
      .Build();
}

Result<scoping::SignatureSet> PipelineCache::BuildSignatures(
    obs::Tracer* tracer, ThreadPool* pool) {
  scoping::SignatureSet out;
  {
    obs::ScopedSpan span(tracer, "pipeline.serialize");
    for (const auto& elements : serialized_) {
      for (const schema::SerializedElement& element : elements) {
        out.refs.push_back(element.ref);
        out.texts.push_back(element.text);
      }
    }
    span.AddArg("elements", static_cast<long long>(out.refs.size()));
  }

  obs::ScopedSpan span(tracer, "pipeline.embed");
  const size_t dims = encoder_->dims();
  out.signatures = linalg::Matrix(out.refs.size(), dims);
  size_t next_row = 0;
  for (size_t s = 0; s < serialized_.size(); ++s) {
    const size_t rows = serialized_[s].size();
    const size_t first_row = next_row;
    next_row += rows;

    const CacheKey key = SigKey(s);
    Result<std::string> payload = cache_->Get(key);
    if (!payload.ok() && IsInterrupt(payload.status())) {
      return payload.status();
    }
    if (payload.ok()) {
      if (std::optional<linalg::Matrix> block =
              ParseSigBlock(*payload, rows, dims)) {
        for (size_t r = 0; r < rows; ++r) {
          out.signatures.SetRow(first_row + r, block->Row(r));
        }
        continue;
      }
      COLSCOPE_LOG(Warn) << "unparseable cached signature block for source "
                         << s << "; re-encoding";
    }

    // Miss: encode just this source's texts. Each row depends only on
    // its own text, so the result is byte-identical to encoding it
    // inside the full batch.
    std::vector<std::string> texts;
    texts.reserve(rows);
    for (const schema::SerializedElement& element : serialized_[s]) {
      texts.push_back(element.text);
    }
    const linalg::Matrix block = encoder_->EncodeAll(texts, pool);
    for (size_t r = 0; r < rows; ++r) {
      out.signatures.SetRow(first_row + r, block.Row(r));
    }
    const Status put = cache_->Put(key, SerializeSigBlock(block));
    if (IsInterrupt(put)) return put;
    if (!put.ok()) {
      COLSCOPE_LOG(Warn) << "cannot cache signature block for source " << s
                         << ": " << put.ToString();
    }
  }
  span.AddArg("elements", static_cast<long long>(out.refs.size()));
  span.AddArg("dims", static_cast<long long>(out.signatures.cols()));
  return out;
}

Result<std::vector<scoping::LocalModel>> PipelineCache::FitLocalModels(
    const scoping::SignatureSet& signatures, double explained_variance,
    ThreadPool* pool, const CancellationToken* cancel) {
  const size_t num_schemas = serialized_.size();
  std::vector<std::optional<scoping::LocalModel>> slots(num_schemas);
  std::vector<size_t> missing;

  for (size_t s = 0; s < num_schemas; ++s) {
    Result<std::string> payload =
        cache_->Get(ModelKey(s, explained_variance));
    if (!payload.ok()) {
      if (IsInterrupt(payload.status())) return payload.status();
      missing.push_back(s);
      continue;
    }
    Result<scoping::LocalModel> model =
        scoping::DeserializeLocalModel(*payload);
    if (!model.ok()) {
      COLSCOPE_LOG(Warn) << "unparseable cached model for source " << s
                         << ": " << model.status().ToString()
                         << "; refitting";
      missing.push_back(s);
      continue;
    }
    // Re-stamp to the source's *current* index: model content is
    // position-independent but phase III tells own from foreign models
    // by index.
    Result<scoping::LocalModel> stamped = scoping::LocalModel::FromParts(
        model->pca(), model->linkability_range(), static_cast<int>(s));
    if (!stamped.ok()) {
      missing.push_back(s);
      continue;
    }
    slots[s] = std::move(stamped).value();
  }

  // Fit the misses exactly as the uncached phase II would — in parallel
  // per source when a pool is available.
  std::vector<Status> statuses(missing.size());
  const auto fit_one = [&](size_t i) {
    const size_t s = missing[i];
    Result<scoping::LocalModel> model = scoping::LocalModel::Fit(
        signatures.SchemaSignatures(static_cast<int>(s)), explained_variance,
        static_cast<int>(s));
    if (model.ok()) {
      slots[s] = std::move(model).value();
    } else {
      statuses[i] = model.status();
    }
  };
  if (pool != nullptr && missing.size() > 1) {
    const Status pool_status =
        pool->ParallelFor(missing.size(), fit_one, cancel);
    if (!pool_status.ok()) return pool_status;
  } else {
    for (size_t i = 0; i < missing.size(); ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        return Status::Cancelled("local-model fit cancelled");
      }
      fit_one(i);
    }
  }
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  for (size_t s : missing) {
    const Status put = cache_->Put(ModelKey(s, explained_variance),
                                   scoping::SerializeLocalModel(*slots[s]));
    if (IsInterrupt(put)) return put;
    if (!put.ok()) {
      COLSCOPE_LOG(Warn) << "cannot cache model for source " << s << ": "
                         << put.ToString();
    }
  }

  std::vector<scoping::LocalModel> models;
  models.reserve(num_schemas);
  for (auto& slot : slots) models.push_back(std::move(*slot));
  return models;
}

Result<std::vector<bool>> PipelineCache::AssessAll(
    const scoping::SignatureSet& signatures,
    const std::vector<scoping::LocalModel>& models) {
  const size_t num_schemas = serialized_.size();
  const uint64_t models_fp = ModelSetFingerprint(models);
  std::vector<bool> keep(signatures.size(), false);

  for (size_t s = 0; s < num_schemas; ++s) {
    const int schema = static_cast<int>(s);
    const std::vector<size_t> rows = signatures.RowsOfSchema(schema);
    const CacheKey key = KeepKey(s, models_fp);

    Result<std::string> payload = cache_->Get(key);
    if (!payload.ok() && IsInterrupt(payload.status())) {
      return payload.status();
    }
    if (payload.ok()) {
      Result<std::vector<bool>> slice =
          scoping::DeserializeKeepMask(*payload);
      if (slice.ok() && slice->size() == rows.size()) {
        for (size_t i = 0; i < rows.size(); ++i) keep[rows[i]] = (*slice)[i];
        continue;
      }
      COLSCOPE_LOG(Warn) << "unparseable cached keep slice for source " << s
                         << "; reassessing";
    }

    const std::vector<bool> linkable = scoping::AssessLinkability(
        signatures.SchemaSignatures(schema), schema, models);
    for (size_t i = 0; i < rows.size(); ++i) keep[rows[i]] = linkable[i];
    const Status put = cache_->Put(key, scoping::SerializeKeepMask(linkable));
    if (IsInterrupt(put)) return put;
    if (!put.ok()) {
      COLSCOPE_LOG(Warn) << "cannot cache keep slice for source " << s
                         << ": " << put.ToString();
    }
  }
  return keep;
}

Result<std::set<matching::ElementPair>> PipelineCache::Match(
    const scoping::SignatureSet& signatures, const std::vector<bool>& active,
    const matching::Matcher& matcher) {
  if (matcher.BlockCacheId().empty()) {
    return Status::Unimplemented(
        "matcher " + matcher.name() +
        " does not support block-decomposed matching");
  }
  const size_t num_schemas = serialized_.size();
  std::vector<uint64_t> keep_fps(num_schemas);
  for (size_t s = 0; s < num_schemas; ++s) {
    keep_fps[s] = KeepBitsFingerprint(
        active, signatures.RowsOfSchema(static_cast<int>(s)));
  }

  std::set<matching::ElementPair> out;
  for (size_t a = 0; a < num_schemas; ++a) {
    for (size_t b = a + 1; b < num_schemas; ++b) {
      const CacheKey key =
          SimBlockKey(matcher, a, keep_fps[a], b, keep_fps[b]);
      Result<std::string> payload = cache_->Get(key);
      if (!payload.ok() && IsInterrupt(payload.status())) {
        return payload.status();
      }
      if (payload.ok()) {
        if (std::optional<std::set<matching::ElementPair>> block =
                ParseSimBlock(*payload, static_cast<int>(a),
                              static_cast<int>(b))) {
          out.insert(block->begin(), block->end());
          continue;
        }
        COLSCOPE_LOG(Warn) << "unparseable cached similarity block ("
                           << a << "," << b << "); rematching";
      }
      const std::set<matching::ElementPair> block = matcher.MatchBlock(
          signatures, active, static_cast<int>(a), static_cast<int>(b));
      out.insert(block.begin(), block.end());
      const Status put =
          cache_->Put(key, SerializeSimBlock(block, static_cast<int>(a)));
      if (IsInterrupt(put)) return put;
      if (!put.ok()) {
        COLSCOPE_LOG(Warn) << "cannot cache similarity block (" << a << ","
                           << b << "): " << put.ToString();
      }
    }
  }
  return out;
}

}  // namespace colscope::cache
