#include "cache/artifact_cache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/checksum.h"
#include "common/strings.h"
#include "obs/log.h"

namespace colscope::cache {

namespace fs = std::filesystem;

namespace {

constexpr char kCacheVersion[] = "colscope-cache v1";
constexpr char kVersionFile[] = "CACHE_VERSION";
constexpr char kEntryHeader[] = "colscope-cache-entry v1";
constexpr char kObjectsDir[] = "objects";
constexpr char kEntrySuffix[] = ".art";
// Entries larger than this are certainly not ours; bounds the allocation
// a corrupted byte count could request.
constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 31;

/// Parses exactly 16 lowercase hex digits into a uint64.
bool ParseHex64(std::string_view token, uint64_t& out) {
  if (token.size() != 16) return false;
  uint64_t value = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  out = value;
  return true;
}

bool ParseU64(const std::string& token, uint64_t& out) {
  if (token.empty()) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

/// Reads `path` fully; false when it cannot be opened.
bool ReadFileBytes(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

CacheKeyBuilder::CacheKeyBuilder(std::string_view kind) : text_(kind) {}

CacheKeyBuilder& CacheKeyBuilder::AddHex(std::string_view name,
                                         uint64_t fingerprint) {
  text_ += StrFormat("|%.*s=%s", static_cast<int>(name.size()), name.data(),
                     Fnv1a64Hex(fingerprint).c_str());
  return *this;
}

CacheKeyBuilder& CacheKeyBuilder::AddText(std::string_view name,
                                          std::string_view value) {
  text_ += StrFormat("|%.*s=%.*s", static_cast<int>(name.size()), name.data(),
                     static_cast<int>(value.size()), value.data());
  return *this;
}

CacheKey CacheKeyBuilder::Build() const {
  return CacheKey{text_, Fnv1a64(text_)};
}

ArtifactCache::ArtifactCache(ArtifactCacheOptions options)
    : options_(std::move(options)), mu_(std::make_unique<std::mutex>()) {}

Result<ArtifactCache> ArtifactCache::Open(ArtifactCacheOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("cache directory must be non-empty");
  }
  std::error_code ec;
  fs::create_directories(options.dir + "/" + kObjectsDir, ec);
  if (ec) {
    return Status::Internal(StrFormat("cannot create cache dir %s: %s",
                                      options.dir.c_str(),
                                      ec.message().c_str()));
  }
  const std::string version_path = options.dir + "/" + kVersionFile;
  std::string stamp;
  if (ReadFileBytes(version_path, stamp)) {
    if (StripAsciiWhitespace(stamp) != kCacheVersion) {
      return Status::FailedPrecondition(StrFormat(
          "cache dir %s has incompatible version '%s' (expected '%s')",
          options.dir.c_str(),
          std::string(StripAsciiWhitespace(stamp)).c_str(), kCacheVersion));
    }
  } else {
    // Stamp through temp + rename like every other write, so two runs
    // opening the same fresh directory race benignly.
    const std::string tmp = version_path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        return Status::Internal("cannot stamp cache version: " + tmp);
      }
      out << kCacheVersion << '\n';
    }
    fs::rename(tmp, version_path, ec);
    if (ec) {
      std::remove(tmp.c_str());
      return Status::Internal(StrFormat("cannot publish %s: %s",
                                        version_path.c_str(),
                                        ec.message().c_str()));
    }
  }

  ArtifactCache cache(std::move(options));
  // Initial inventory: entry file sizes (envelope included) approximate
  // payload bytes closely enough for a soft cap.
  uint64_t total = 0;
  for (const auto& entry : fs::recursive_directory_iterator(
           cache.options_.dir + "/" + kObjectsDir, ec)) {
    if (entry.is_regular_file(ec) &&
        entry.path().extension() == kEntrySuffix) {
      total += entry.file_size(ec);
    }
  }
  cache.total_bytes_ = total;
  cache.SetBytesGauge();
  return cache;
}

std::string ArtifactCache::PathFor(const CacheKey& key) const {
  const std::string hex = Fnv1a64Hex(key.hash);
  return options_.dir + "/" + kObjectsDir + "/" + hex.substr(0, 2) + "/" +
         hex + kEntrySuffix;
}

Status ArtifactCache::Interrupted() const {
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    return Status::Cancelled("cache access cancelled");
  }
  if (options_.deadline.expired()) {
    return Status::DeadlineExceeded("run deadline expired before cache access");
  }
  return Status::Ok();
}

void ArtifactCache::Count(const char* name, uint64_t delta) {
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter(name).Increment(delta);
  }
}

void ArtifactCache::SetBytesGauge() {
  if (options_.metrics != nullptr) {
    options_.metrics->GetGauge("cache.bytes")
        .Set(static_cast<double>(total_bytes_));
  }
}

Result<std::string> ArtifactCache::Get(const CacheKey& key) {
  COLSCOPE_RETURN_IF_ERROR(Interrupted());
  obs::ScopedHistogramTimer timer(
      options_.metrics == nullptr
          ? nullptr
          : &options_.metrics->GetHistogram(
                "cache_lookup_ms", obs::ExponentialBuckets(0.01, 4.0, 10)));

  const std::string path = PathFor(key);
  const auto miss = [&](const char* why_counter,
                        const std::string& detail) -> Status {
    if (why_counter != nullptr) {
      Count(why_counter);
      COLSCOPE_LOG(Warn) << "cache entry " << path << " unusable ("
                         << detail << "); recomputing";
    }
    Count("cache.misses");
    return Status::NotFound("no cache entry for key: " + key.text);
  };

  std::string contents;
  if (!ReadFileBytes(path, contents)) return miss(nullptr, "");

  std::istringstream stream(contents);
  std::string line;
  if (!std::getline(stream, line) ||
      StripAsciiWhitespace(line) != kEntryHeader) {
    return miss("cache.corrupt", "bad entry header");
  }
  if (!std::getline(stream, line) || !StartsWith(line, "key ")) {
    return miss("cache.corrupt", "missing key line");
  }
  const std::string stored_key = line.substr(4);
  if (!std::getline(stream, line) || !StartsWith(line, "bytes ")) {
    return miss("cache.corrupt", "missing bytes line");
  }
  uint64_t declared_bytes = 0;
  if (!ParseU64(std::string(StripAsciiWhitespace(line.substr(6))),
                declared_bytes) ||
      declared_bytes > kMaxPayloadBytes) {
    return miss("cache.corrupt", "malformed byte count");
  }
  if (!std::getline(stream, line) || !StartsWith(line, "checksum ")) {
    return miss("cache.corrupt", "missing checksum line");
  }
  uint64_t declared_sum = 0;
  if (!ParseHex64(StripAsciiWhitespace(line.substr(9)), declared_sum)) {
    return miss("cache.corrupt", "malformed checksum");
  }
  const std::streampos pos = stream.tellg();
  if (pos < 0) return miss("cache.corrupt", "truncated before payload");
  std::string payload = contents.substr(static_cast<size_t>(pos));
  if (payload.size() != declared_bytes) {
    return miss("cache.corrupt",
                StrFormat("payload is %zu bytes, envelope declares %llu",
                          payload.size(),
                          static_cast<unsigned long long>(declared_bytes)));
  }
  if (Fnv1a64(payload) != declared_sum) {
    return miss("cache.corrupt", "payload checksum mismatch");
  }
  // Integrity holds but the stored key differs: a 64-bit fingerprint
  // collision (or a cross-wired file). Treat as a miss; the subsequent
  // Put will overwrite this entry with the new key's artifact.
  if (stored_key != key.text) {
    return miss("cache.collisions",
                "key text mismatch (fingerprint collision)");
  }

  // Refresh recency for LRU; best-effort (a read-only cache still hits).
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);

  Count("cache.hits");
  return payload;
}

Status ArtifactCache::Put(const CacheKey& key, std::string_view payload) {
  COLSCOPE_RETURN_IF_ERROR(Interrupted());
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("cache payload exceeds the entry cap");
  }
  const std::string path = PathFor(key);

  std::string envelope;
  envelope.reserve(payload.size() + key.text.size() + 96);
  envelope += kEntryHeader;
  envelope += '\n';
  envelope += "key ";
  envelope += key.text;
  envelope += '\n';
  envelope += StrFormat("bytes %zu\n", payload.size());
  envelope += StrFormat("checksum %s\n",
                        Fnv1a64Hex(Fnv1a64(payload)).c_str());
  envelope += payload;

  std::lock_guard<std::mutex> lock(*mu_);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    return Status::Internal(StrFormat("cannot create cache shard for %s: %s",
                                      path.c_str(), ec.message().c_str()));
  }
  uint64_t replaced = 0;
  if (fs::exists(path, ec)) replaced = fs::file_size(path, ec);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open cache temp file: " + tmp);
    }
    out.write(envelope.data(), static_cast<std::streamsize>(envelope.size()));
    out.flush();
    if (!out) {
      return Status::Internal("short write to cache temp file: " + tmp);
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::Internal(StrFormat("cannot publish cache entry %s: %s",
                                      path.c_str(), ec.message().c_str()));
  }
  total_bytes_ += envelope.size();
  total_bytes_ -= std::min(total_bytes_, replaced);
  Count("cache.writes");
  EvictToFit(path);
  SetBytesGauge();
  return Status::Ok();
}

void ArtifactCache::EvictToFit(const std::string& keep_path) {
  if (options_.max_bytes == 0 || total_bytes_ <= options_.max_bytes) return;

  struct Entry {
    fs::file_time_type mtime;
    std::string path;
    uint64_t size;
  };
  std::vector<Entry> entries;
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(
           options_.dir + "/" + kObjectsDir, ec)) {
    if (!entry.is_regular_file(ec) ||
        entry.path().extension() != kEntrySuffix) {
      continue;
    }
    const std::string path = entry.path().string();
    if (path == keep_path) continue;
    entries.push_back({entry.last_write_time(ec), path, entry.file_size(ec)});
  }
  // Oldest first; path tie-break keeps the order deterministic when
  // mtime resolution lumps entries together.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path < b.path;
  });
  for (const Entry& entry : entries) {
    if (total_bytes_ <= options_.max_bytes) break;
    if (!fs::remove(entry.path, ec) || ec) continue;
    total_bytes_ -= std::min(total_bytes_, entry.size);
    Count("cache.evictions");
    COLSCOPE_LOG(Debug) << "evicted cache entry " << entry.path << " ("
                        << entry.size << " bytes)";
  }
}

uint64_t ArtifactCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return total_bytes_;
}

}  // namespace colscope::cache
