#ifndef COLSCOPE_CACHE_ARTIFACT_CACHE_H_
#define COLSCOPE_CACHE_ARTIFACT_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/cancellation.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace colscope::cache {

/// A content-addressed cache key: the canonical single-line key text
/// (kind plus every component that identifies the artifact) and its
/// FNV-1a 64 hash, which names the on-disk object. The full text is
/// stored inside each entry and verified on every read, so a 64-bit hash
/// collision degrades to a miss — never to serving the wrong artifact.
struct CacheKey {
  std::string text;
  uint64_t hash = 0;
};

/// Builds a CacheKey incrementally: `kind` names the artifact family
/// ("sig", "model", "keep", "simblock") and each component is appended as
/// "name=value". Values must be single-line; fingerprints are rendered as
/// 16 hex digits.
class CacheKeyBuilder {
 public:
  explicit CacheKeyBuilder(std::string_view kind);

  CacheKeyBuilder& AddHex(std::string_view name, uint64_t fingerprint);
  CacheKeyBuilder& AddText(std::string_view name, std::string_view value);

  CacheKey Build() const;

 private:
  std::string text_;
};

struct ArtifactCacheOptions {
  /// Root directory; created (with a version stamp) on Open.
  std::string dir;
  /// Soft size cap over all object payloads; 0 means unbounded. When a
  /// Put pushes the total over the cap, least-recently-used entries are
  /// evicted until it fits (the entry just written is never evicted).
  uint64_t max_bytes = 0;
  /// Borrowed; may be null. Emits cache.hits / cache.misses /
  /// cache.evictions / cache.corrupt / cache.collisions counters, the
  /// cache.bytes gauge, and the cache_lookup_ms histogram.
  obs::MetricsRegistry* metrics = nullptr;
  /// Borrowed cooperative-cancellation token; may be null. A tripped
  /// token makes Get/Put return Cancelled without touching the disk.
  const CancellationToken* cancel = nullptr;
  /// Run deadline (default: none). An expired deadline makes Get/Put
  /// return DeadlineExceeded — a lookup storm cannot push a run past its
  /// time budget.
  Deadline deadline;
};

/// Content-addressed, checksummed, size-capped artifact store.
///
/// On-disk layout (versioned — an unrecognized version refuses to open
/// rather than misreading foreign files):
///   <dir>/CACHE_VERSION            "colscope-cache v1"
///   <dir>/objects/<hh>/<16hex>.art one entry per key, sharded by the
///                                  first hash byte (git-style)
/// Each entry is a five-line envelope followed by the payload verbatim:
///   colscope-cache-entry v1
///   key <canonical key text>
///   bytes <payload byte count>
///   checksum <16 hex digits, FNV-1a 64 of the payload>
///   <payload>
/// Writes go to a sibling temp file followed by an atomic rename, so a
/// crash mid-write can never leave a torn entry under a live name.
///
/// Thread-compatible for Get (reads are independent); Put serializes on
/// an internal mutex because it maintains the byte total and runs LRU
/// eviction. Recency is tracked via file mtimes: every Get touches its
/// entry, and eviction removes oldest-first (ties broken by path so the
/// order is deterministic).
class ArtifactCache {
 public:
  /// Validates/creates the directory and version stamp and takes the
  /// initial size inventory. Fails (rather than silently misbehaving) on
  /// an unwritable directory or a version mismatch; callers are expected
  /// to degrade to uncached computation on failure.
  static Result<ArtifactCache> Open(ArtifactCacheOptions options);

  ArtifactCache(ArtifactCache&&) = default;
  ArtifactCache& operator=(ArtifactCache&&) = default;

  /// Looks up `key`. NotFound on a miss (counted cache.misses) — which
  /// includes corrupt, truncated, or hash-colliding entries (also counted
  /// cache.corrupt / cache.collisions); a cache read problem is never an
  /// error, just a reason to recompute. Cancelled / DeadlineExceeded when
  /// the run should stop instead of reading. A hit (counted cache.hits)
  /// returns the payload and refreshes the entry's recency.
  Result<std::string> Get(const CacheKey& key);

  /// Atomically persists `payload` under `key`, overwriting any previous
  /// entry, then enforces the size cap. Failures are real errors;
  /// callers typically log and continue (a run that cannot cache still
  /// completes).
  Status Put(const CacheKey& key, std::string_view payload);

  /// Sum of payload bytes currently stored (tracked, not re-scanned).
  uint64_t total_bytes() const;

  const std::string& dir() const { return options_.dir; }

  /// On-disk path of `key`'s entry — exposed so tests can corrupt,
  /// truncate, or cross-wire entries deliberately.
  std::string PathFor(const CacheKey& key) const;

 private:
  explicit ArtifactCache(ArtifactCacheOptions options);

  Status Interrupted() const;
  void Count(const char* name, uint64_t delta = 1);
  void SetBytesGauge();
  /// Drops least-recently-used entries until the total fits the cap.
  /// `keep_path` (the entry just written) is never evicted.
  void EvictToFit(const std::string& keep_path);

  ArtifactCacheOptions options_;
  std::unique_ptr<std::mutex> mu_;  ///< Guards puts + the byte total.
  uint64_t total_bytes_ = 0;
};

}  // namespace colscope::cache

#endif  // COLSCOPE_CACHE_ARTIFACT_CACHE_H_
