#ifndef COLSCOPE_OBS_FLIGHT_RECORDER_H_
#define COLSCOPE_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace colscope::obs {

/// One entry read out of a FlightRecorder ring: a monotonically
/// increasing per-process sequence number, a short event class
/// ("rpc", "serve", "fetch", "retry", ...), and a bounded free-form
/// detail string. Details deliberately carry worker indices and status
/// code names — never endpoints, ports, or wall-clock times — so a dump
/// from a deterministic run is byte-identical across repeats.
struct FlightEvent {
  uint64_t seq = 0;
  std::string kind;
  std::string detail;
};

/// Bounded lock-free ring holding the last N RPC/fault/retry events of
/// this process — the "what was everyone doing right before it died"
/// record dumped into the degradation report on crash, quorum loss, or
/// deadline. Writers claim a ticket with one fetch_add and publish
/// their slot with a release store; no locks, no allocation, so it is
/// safe to call from any hot path or connection handler. Readers
/// (Snapshot) skip slots that are mid-overwrite instead of blocking.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;
  /// Longer kinds/details are truncated to these many bytes.
  static constexpr size_t kMaxKindBytes = 23;
  static constexpr size_t kMaxDetailBytes = 111;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-wide recorder used by the net/exchange instrumentation.
  static FlightRecorder& Global();

  /// Appends an event, overwriting the oldest once the ring is full.
  void Record(std::string_view kind, std::string_view detail);

  /// The surviving events in sequence order (oldest first). Slots being
  /// concurrently rewritten are skipped, never torn.
  std::vector<FlightEvent> Snapshot() const;

  /// Number of events ever recorded (not just those still in the ring).
  uint64_t total_recorded() const { return next_.load(); }

  /// Drops all events and restarts sequence numbers at 1. Not safe
  /// against concurrent writers — for test setup and run boundaries.
  void Clear();

  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    /// 0 while empty or being written; the ticket number once the
    /// kind/detail bytes are fully published.
    std::atomic<uint64_t> committed{0};
    char kind[kMaxKindBytes + 1];
    char detail[kMaxDetailBytes + 1];
  };

  const size_t capacity_;
  Slot* slots_;
  std::atomic<uint64_t> next_{0};
};

}  // namespace colscope::obs

#endif  // COLSCOPE_OBS_FLIGHT_RECORDER_H_
