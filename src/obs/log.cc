#include "obs/log.h"

#include <algorithm>
#include <cstring>

namespace colscope::obs {

namespace {

/// Basename of a __FILE__ path without allocating.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

Result<LogLevel> ParseLogLevel(const std::string& spec) {
  if (spec == "debug") return LogLevel::kDebug;
  if (spec == "info") return LogLevel::kInfo;
  if (spec == "warn" || spec == "warning") return LogLevel::kWarn;
  if (spec == "error") return LogLevel::kError;
  if (spec == "off") return LogLevel::kOff;
  return Status::InvalidArgument(
      "unknown log level (want debug|info|warn|error|off): " + spec);
}

std::string FormatLogEntry(const LogEntry& entry) {
  std::string out = "[";
  out += LogLevelToString(entry.level);
  out += ' ';
  out += entry.file;
  out += ':';
  out += std::to_string(entry.line);
  out += "] ";
  out += entry.message;
  return out;
}

void StderrSink::Write(const LogEntry& entry) {
  const std::string line = FormatLogEntry(entry);
  std::fprintf(stream_, "%s\n", line.c_str());
}

FileSink::FileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::Write(const LogEntry& entry) {
  if (file_ == nullptr) return;
  const std::string line = FormatLogEntry(entry);
  std::fprintf(file_, "%s\n", line.c_str());
  std::fflush(file_);
}

void InMemorySink::Write(const LogEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(FormatLogEntry(entry));
}

std::vector<std::string> InMemorySink::lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

size_t InMemorySink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

void InMemorySink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.clear();
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // Leaked: outlives static dtors.
  return *logger;
}

void Logger::AddSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(sink);
}

void Logger::RemoveSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
               sinks_.end());
}

void Logger::set_stderr_fallback(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  stderr_fallback_ = enabled;
}

void Logger::Log(const LogEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sinks_.empty()) {
    if (stderr_fallback_) fallback_sink_.Write(entry);
    return;
  }
  for (LogSink* sink : sinks_) sink->Write(entry);
}

LogMessage::LogMessage(const char* file, int line, LogLevel level)
    : file_(Basename(file)), line_(line), level_(level) {}

LogMessage::~LogMessage() {
  LogEntry entry;
  entry.level = level_;
  entry.file = file_;
  entry.line = line_;
  entry.message = stream_.str();
  Logger::Global().Log(entry);
}

}  // namespace colscope::obs
