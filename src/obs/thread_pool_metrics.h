#ifndef COLSCOPE_OBS_THREAD_POOL_METRICS_H_
#define COLSCOPE_OBS_THREAD_POOL_METRICS_H_

#include <string>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace colscope::obs {

/// Adapts ThreadPool's observer hooks onto a MetricsRegistry:
///   <prefix>.scheduled        counter   tasks enqueued
///   <prefix>.queue_depth      gauge     queue size after last enqueue
///   <prefix>.queue_wait_us    histogram time tasks sat in the queue
///   <prefix>.task_us          histogram task run time
/// All updates are lock-free (atomics), so workers never contend here.
class ThreadPoolMetrics : public ThreadPoolObserver {
 public:
  explicit ThreadPoolMetrics(MetricsRegistry* registry,
                             const std::string& prefix = "thread_pool");

  void OnScheduled(size_t queue_depth) override;
  void OnTaskDone(double queue_wait_us, double run_us) override;

 private:
  Counter& scheduled_;
  Gauge& queue_depth_;
  Histogram& queue_wait_us_;
  Histogram& task_us_;
};

}  // namespace colscope::obs

#endif  // COLSCOPE_OBS_THREAD_POOL_METRICS_H_
