#ifndef COLSCOPE_OBS_LOG_H_
#define COLSCOPE_OBS_LOG_H_

#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// Compile-time log floor: statements below this level are dead-stripped
/// (the whole `COLSCOPE_LOG(...)` expression folds to `(void)0`, message
/// construction included). 0=Debug, 1=Info, 2=Warn, 3=Error, 4=Off.
/// Override with -DCOLSCOPE_MIN_LOG_LEVEL=N.
#ifndef COLSCOPE_MIN_LOG_LEVEL
#define COLSCOPE_MIN_LOG_LEVEL 0
#endif

namespace colscope::obs {

/// Severity of one log statement, ordered from chattiest to most severe.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< Threshold-only: nothing logs at kOff.
};

/// Canonical lower-case name of `level` ("debug", "info", ...). Stable;
/// used in formatted log lines, so safe to test against.
const char* LogLevelToString(LogLevel level);

/// Parses a CLI-style level name: debug|info|warn|warning|error|off.
Result<LogLevel> ParseLogLevel(const std::string& spec);

/// One structured log record as handed to sinks. `file` is the basename
/// of the emitting source file and stays valid for the duration of the
/// Write call only.
struct LogEntry {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";
  int line = 0;
  std::string message;
};

/// "[LEVEL file:line] message" — the one canonical text rendering, shared
/// by every bundled sink so tests can assert against stable bytes.
std::string FormatLogEntry(const LogEntry& entry);

/// Destination of log records. Write calls are serialized by the Logger,
/// so implementations need no locking of their own unless they expose
/// concurrent readers (InMemorySink does).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogEntry& entry) = 0;
};

/// Appends formatted lines to a FILE* it does not own (stderr by default).
class StderrSink : public LogSink {
 public:
  explicit StderrSink(std::FILE* stream = stderr) : stream_(stream) {}
  void Write(const LogEntry& entry) override;

 private:
  std::FILE* stream_;
};

/// Appends formatted lines to a file, flushed per entry. `ok()` is false
/// when the file could not be opened; Write is then a no-op.
class FileSink : public LogSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  bool ok() const { return file_ != nullptr; }
  void Write(const LogEntry& entry) override;

 private:
  std::FILE* file_;
};

/// Captures formatted lines in memory — the test sink. Thread-safe for
/// concurrent Write/lines calls.
class InMemorySink : public LogSink {
 public:
  void Write(const LogEntry& entry) override;
  std::vector<std::string> lines() const;
  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

/// Process-wide logging front end: a runtime level threshold plus a list
/// of borrowed sinks (callers keep ownership and must RemoveSink before
/// destroying a sink). With no sinks attached, entries fall back to
/// stderr so early errors are never swallowed.
class Logger {
 public:
  static Logger& Global();

  /// Runtime threshold; statements below it are dropped before message
  /// formatting (one relaxed atomic load — safe in hot paths).
  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool ShouldLog(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  void AddSink(LogSink* sink);
  void RemoveSink(LogSink* sink);

  /// Silences the no-sink stderr fallback (tests that want capture-only).
  void set_stderr_fallback(bool enabled);

  /// Dispatches `entry` to every attached sink under the logger mutex.
  void Log(const LogEntry& entry);

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::mutex mu_;
  std::vector<LogSink*> sinks_;
  bool stderr_fallback_ = true;
  StderrSink fallback_sink_;
};

/// One in-flight log statement; streams into an ostringstream and
/// dispatches to Logger::Global() on destruction. Only ever constructed
/// by COLSCOPE_LOG after the level checks passed.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogLevel level);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the ostream expression so COLSCOPE_LOG can live in a ternary
/// whose both arms are void.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace colscope::obs

/// True when a statement at `severity` (Debug|Info|Warn|Error) would be
/// emitted: compile-time floor first (constant-folds the whole statement
/// away below COLSCOPE_MIN_LOG_LEVEL), then the runtime threshold.
#define COLSCOPE_LOG_ENABLED(severity)                                     \
  (static_cast<int>(::colscope::obs::LogLevel::k##severity) >=             \
       COLSCOPE_MIN_LOG_LEVEL &&                                           \
   ::colscope::obs::Logger::Global().ShouldLog(                            \
       ::colscope::obs::LogLevel::k##severity))

/// Stream-style structured logging: COLSCOPE_LOG(Info) << "x=" << x;
/// The message expression is not evaluated when the statement is
/// filtered, so logging in hot paths costs one predictable branch.
#define COLSCOPE_LOG(severity)                                             \
  !COLSCOPE_LOG_ENABLED(severity)                                          \
      ? (void)0                                                            \
      : ::colscope::obs::LogVoidify() &                                    \
            ::colscope::obs::LogMessage(                                   \
                __FILE__, __LINE__,                                        \
                ::colscope::obs::LogLevel::k##severity)                    \
                .stream()

#endif  // COLSCOPE_OBS_LOG_H_
