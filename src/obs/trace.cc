#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <unordered_map>

#include "common/json_writer.h"
#include "common/strings.h"

namespace colscope::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<uint64_t> next_tracer_id{1};

/// Per-thread buffer cache keyed by tracer id. Ids are never reused, so
/// entries for destroyed tracers simply go stale and are skipped.
thread_local std::unordered_map<uint64_t, void*> tls_buffers;

std::string DefaultThreadName(int tid) {
  return tid == 0 ? std::string("main") : StrFormat("thread-%d", tid);
}

/// Chrome "M"-phase metadata event with a single string arg named
/// "name" — the documented shape for process_name/thread_name.
void WriteMetadataEvent(JsonWriter& json, const char* meta, int pid, int tid,
                        const std::string& value) {
  json.BeginObject();
  json.Key("name").String(meta);
  json.Key("ph").String("M");
  json.Key("pid").Int(pid);
  json.Key("tid").Int(tid);
  json.Key("args").BeginObject();
  json.Key("name").String(value);
  json.EndObject();
  json.EndObject();
}

void WriteCompleteEvent(JsonWriter& json, const TraceEvent& event, int pid,
                        bool with_span_ids) {
  json.BeginObject();
  json.Key("name").String(event.name);
  json.Key("cat").String("colscope");
  json.Key("ph").String("X");
  json.Key("ts").Number(event.ts_us);
  json.Key("dur").Number(event.dur_us);
  json.Key("pid").Int(pid);
  json.Key("tid").Int(event.tid);
  const bool span_args = with_span_ids && event.span_id != 0;
  if (!event.args.empty() || span_args) {
    json.Key("args").BeginObject();
    for (const auto& [key, value] : event.args) {
      json.Key(key).Int(value);
    }
    if (span_args) {
      json.Key("span_id").Int(static_cast<long long>(event.span_id));
      if (event.parent_span_id != 0) {
        json.Key("parent_span_id")
            .Int(static_cast<long long>(event.parent_span_id));
      }
    }
    json.EndObject();
  }
  json.EndObject();
}

}  // namespace

SystemTraceClock::SystemTraceClock() : epoch_ns_(SteadyNowNs()) {}

double SystemTraceClock::NowUs() {
  return static_cast<double>(SteadyNowNs() - epoch_ns_) / 1000.0;
}

double SimulatedTraceClock::NowUs() {
  std::lock_guard<std::mutex> lock(mu_);
  const double now = now_us_;
  now_us_ += tick_us_;
  return now;
}

void SimulatedTraceClock::Advance(double us) {
  std::lock_guard<std::mutex> lock(mu_);
  now_us_ += us;
}

Tracer::Tracer(TraceClock* clock)
    : clock_(clock), id_(next_tracer_id.fetch_add(1)) {}

Tracer::~Tracer() = default;

void Tracer::set_process_name(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_name_ = std::move(name);
}

Tracer::ThreadBuffer& Tracer::BufferForThisThread() {
  auto it = tls_buffers.find(id_);
  if (it != tls_buffers.end()) {
    return *static_cast<ThreadBuffer*>(it->second);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<int>(buffers_.size());
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  tls_buffers[id_] = raw;
  return *raw;
}

void Tracer::NameThisThread(std::string_view name) {
  ThreadBuffer& buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(mu_);
  buffer.name = std::string(name);
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer& buffer = BufferForThisThread();
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers_) {
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  return events;
}

std::vector<std::string> Tracer::ThreadNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(buffers_.size());
  for (const auto& buffer : buffers_) {
    names.push_back(buffer->name.empty() ? DefaultThreadName(buffer->tid)
                                         : buffer->name);
  }
  return names;
}

std::string Tracer::ToChromeJson() const {
  ProcessTrace process;
  process.pid = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    process.name = process_name_;
  }
  process.trace_id = trace_id();
  process.thread_names = ThreadNames();
  process.events = Events();
  return MergedTraceToChromeJson({std::move(process)});
}

std::string MergedTraceToChromeJson(
    const std::vector<ProcessTrace>& processes) {
  uint64_t run_trace_id = 0;
  for (const ProcessTrace& process : processes) {
    if (process.trace_id != 0) {
      run_trace_id = process.trace_id;
      break;
    }
  }
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents").BeginArray();
  for (const ProcessTrace& process : processes) {
    WriteMetadataEvent(json, "process_name", process.pid, 0, process.name);
    for (size_t tid = 0; tid < process.thread_names.size(); ++tid) {
      WriteMetadataEvent(json, "thread_name", process.pid,
                         static_cast<int>(tid), process.thread_names[tid]);
    }
    for (const TraceEvent& event : process.events) {
      WriteCompleteEvent(json, event, process.pid,
                         /*with_span_ids=*/process.trace_id != 0);
    }
  }
  json.EndArray();
  json.Key("displayTimeUnit").String("ms");
  if (run_trace_id != 0) {
    json.Key("trace_id").Int(static_cast<long long>(run_trace_id));
  }
  json.EndObject();
  return json.str();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buffer : buffers_) buffer->events.clear();
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  event_.name = name;
  event_.span_id = tracer_->NextSpanId();
  event_.ts_us = tracer_->clock().NowUs();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  event_.dur_us = tracer_->clock().NowUs() - event_.ts_us;
  tracer_->Record(std::move(event_));
}

void ScopedSpan::AddArg(std::string_view key, long long value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(std::string(key), value);
}

void ScopedSpan::set_parent(uint64_t parent_span_id) {
  if (tracer_ == nullptr) return;
  event_.parent_span_id = parent_span_id;
}

}  // namespace colscope::obs
