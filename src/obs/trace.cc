#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <unordered_map>

#include "common/json_writer.h"

namespace colscope::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<uint64_t> next_tracer_id{1};

/// Per-thread buffer cache keyed by tracer id. Ids are never reused, so
/// entries for destroyed tracers simply go stale and are skipped.
thread_local std::unordered_map<uint64_t, void*> tls_buffers;

}  // namespace

SystemTraceClock::SystemTraceClock() : epoch_ns_(SteadyNowNs()) {}

double SystemTraceClock::NowUs() {
  return static_cast<double>(SteadyNowNs() - epoch_ns_) / 1000.0;
}

double SimulatedTraceClock::NowUs() {
  std::lock_guard<std::mutex> lock(mu_);
  const double now = now_us_;
  now_us_ += tick_us_;
  return now;
}

void SimulatedTraceClock::Advance(double us) {
  std::lock_guard<std::mutex> lock(mu_);
  now_us_ += us;
}

Tracer::Tracer(TraceClock* clock)
    : clock_(clock), id_(next_tracer_id.fetch_add(1)) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer& Tracer::BufferForThisThread() {
  auto it = tls_buffers.find(id_);
  if (it != tls_buffers.end()) {
    return *static_cast<ThreadBuffer*>(it->second);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<int>(buffers_.size());
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  tls_buffers[id_] = raw;
  return *raw;
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer& buffer = BufferForThisThread();
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers_) {
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  return events;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceEvent> events = Events();
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents").BeginArray();
  for (const TraceEvent& event : events) {
    json.BeginObject();
    json.Key("name").String(event.name);
    json.Key("cat").String("colscope");
    json.Key("ph").String("X");
    json.Key("ts").Number(event.ts_us);
    json.Key("dur").Number(event.dur_us);
    json.Key("pid").Int(0);
    json.Key("tid").Int(event.tid);
    if (!event.args.empty()) {
      json.Key("args").BeginObject();
      for (const auto& [key, value] : event.args) {
        json.Key(key).Int(value);
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("displayTimeUnit").String("ms");
  json.EndObject();
  return json.str();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buffer : buffers_) buffer->events.clear();
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  event_.name = name;
  event_.ts_us = tracer_->clock().NowUs();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  event_.dur_us = tracer_->clock().NowUs() - event_.ts_us;
  tracer_->Record(std::move(event_));
}

void ScopedSpan::AddArg(std::string_view key, long long value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(std::string(key), value);
}

}  // namespace colscope::obs
