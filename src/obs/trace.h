#ifndef COLSCOPE_OBS_TRACE_H_
#define COLSCOPE_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace colscope::obs {

/// Time source of a Tracer. Injectable so tests (and the CLI's
/// --trace-clock sim) get byte-reproducible traces — the same pattern as
/// the simulated transport clock in exchange/.
class TraceClock {
 public:
  virtual ~TraceClock() = default;
  /// Monotonic microseconds. May advance internal state (SimulatedClock
  /// ticks per call), so not const.
  virtual double NowUs() = 0;
};

/// Wall time from std::chrono::steady_clock, zeroed at construction.
class SystemTraceClock : public TraceClock {
 public:
  SystemTraceClock();
  double NowUs() override;

 private:
  int64_t epoch_ns_;
};

/// Deterministic clock: every NowUs() returns the current simulated time
/// and then advances it by `tick_us`, so consecutive reads are strictly
/// increasing and identical call sequences yield identical timestamps.
class SimulatedTraceClock : public TraceClock {
 public:
  explicit SimulatedTraceClock(double tick_us = 1.0) : tick_us_(tick_us) {}
  double NowUs() override;
  void Advance(double us);

 private:
  std::mutex mu_;
  double now_us_ = 0.0;
  double tick_us_;
};

/// One completed span, Chrome-trace "X" (complete) event shaped.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  std::vector<std::pair<std::string, long long>> args;
};

/// Collects completed spans into per-thread buffers: each OS thread
/// registers a buffer on first use (one mutex acquisition), then appends
/// without synchronization. Merge order is buffer registration order, so
/// single-threaded traces are byte-deterministic. The tracer must
/// outlive every thread that records into it.
class Tracer {
 public:
  /// `clock` is borrowed and must outlive the tracer.
  explicit Tracer(TraceClock* clock);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  TraceClock& clock() { return *clock_; }

  /// Appends a finished event to the calling thread's buffer.
  void Record(TraceEvent event);

  /// All recorded events, buffers concatenated in registration order.
  std::vector<TraceEvent> Events() const;

  /// Chrome trace event format (chrome://tracing, Perfetto):
  /// {"traceEvents":[{"name","cat","ph":"X","ts","dur","pid","tid",
  /// "args"}...]}. Byte-stable for identical event sequences.
  std::string ToChromeJson() const;

  void Clear();

 private:
  struct ThreadBuffer {
    int tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer& BufferForThisThread();

  TraceClock* clock_;
  /// Distinguishes this tracer in thread-local lookups even if another
  /// tracer is later allocated at the same address.
  const uint64_t id_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: reads the clock at construction and records a TraceEvent
/// on destruction. A null tracer makes every member a no-op — the
/// branch-predicted guard that keeps uninstrumented runs free.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a named integer (element counts and the like) to the span.
  void AddArg(std::string_view key, long long value);

 private:
  Tracer* tracer_;
  TraceEvent event_;
};

}  // namespace colscope::obs

#endif  // COLSCOPE_OBS_TRACE_H_
