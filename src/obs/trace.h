#ifndef COLSCOPE_OBS_TRACE_H_
#define COLSCOPE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace colscope::obs {

/// Time source of a Tracer. Injectable so tests (and the CLI's
/// --trace-clock sim) get byte-reproducible traces — the same pattern as
/// the simulated transport clock in exchange/.
class TraceClock {
 public:
  virtual ~TraceClock() = default;
  /// Monotonic microseconds. May advance internal state (SimulatedClock
  /// ticks per call), so not const.
  virtual double NowUs() = 0;
};

/// Wall time from std::chrono::steady_clock, zeroed at construction.
class SystemTraceClock : public TraceClock {
 public:
  SystemTraceClock();
  double NowUs() override;

 private:
  int64_t epoch_ns_;
};

/// Deterministic clock: every NowUs() returns the current simulated time
/// and then advances it by `tick_us`, so consecutive reads are strictly
/// increasing and identical call sequences yield identical timestamps.
class SimulatedTraceClock : public TraceClock {
 public:
  explicit SimulatedTraceClock(double tick_us = 1.0) : tick_us_(tick_us) {}
  double NowUs() override;
  void Advance(double us);

 private:
  std::mutex mu_;
  double now_us_ = 0.0;
  double tick_us_;
};

/// One completed span, Chrome-trace "X" (complete) event shaped.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  /// Process-local span id (nonzero once recorded through a tracer).
  /// Serialized into distributed traces so a worker-side span can name a
  /// coordinator-side RPC span as its parent across the process gap.
  uint64_t span_id = 0;
  /// Span this one parents under; 0 means "implicit" (same-thread
  /// nesting by timestamp containment, the single-process default).
  uint64_t parent_span_id = 0;
  std::vector<std::pair<std::string, long long>> args;
};

/// Collects completed spans into per-thread buffers: each OS thread
/// registers a buffer on first use (one mutex acquisition), then appends
/// without synchronization. Merge order is buffer registration order, so
/// single-threaded traces are byte-deterministic. The tracer must
/// outlive every thread that records into it.
class Tracer {
 public:
  /// `clock` is borrowed and must outlive the tracer.
  explicit Tracer(TraceClock* clock);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  TraceClock& clock() { return *clock_; }

  /// Run-level trace id shared by every process of a distributed run;
  /// 0 (the default) means "not part of a distributed trace" and keeps
  /// span/parent ids out of the serialized output.
  void set_trace_id(uint64_t id) { trace_id_.store(id); }
  uint64_t trace_id() const { return trace_id_.load(); }

  /// Process label emitted as the Chrome `process_name` metadata event.
  void set_process_name(std::string name);

  /// Allocates the next process-local span id (starts at 1). Sequential
  /// call sites produce deterministic ids.
  uint64_t NextSpanId() { return next_span_id_.fetch_add(1); }

  /// Labels the calling thread's buffer for the Chrome `thread_name`
  /// metadata events (default: "main" for tid 0, "thread-N" otherwise).
  void NameThisThread(std::string_view name);

  /// Appends a finished event to the calling thread's buffer.
  void Record(TraceEvent event);

  /// All recorded events, buffers concatenated in registration order.
  std::vector<TraceEvent> Events() const;

  /// Thread labels indexed by tid (defaults applied).
  std::vector<std::string> ThreadNames() const;

  /// Chrome trace event format (chrome://tracing, Perfetto):
  /// {"traceEvents":[{"name","cat","ph":"X","ts","dur","pid","tid",
  /// "args"}...]}, preceded by `M`-phase process_name/thread_name
  /// metadata events. Byte-stable for identical event sequences.
  std::string ToChromeJson() const;

  void Clear();

 private:
  struct ThreadBuffer {
    int tid = 0;
    std::string name;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer& BufferForThisThread();

  TraceClock* clock_;
  /// Distinguishes this tracer in thread-local lookups even if another
  /// tracer is later allocated at the same address.
  const uint64_t id_;
  std::atomic<uint64_t> trace_id_{0};
  std::atomic<uint64_t> next_span_id_{1};
  mutable std::mutex mu_;
  std::string process_name_ = "colscope";
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// One process's contribution to a merged distributed trace: the events
/// a coordinator harvested (or recorded itself), the pid they render
/// under, and the labels for the Chrome metadata events.
struct ProcessTrace {
  int pid = 0;
  std::string name;
  /// Run-level trace id this process reported; nonzero ids additionally
  /// serialize span_id/parent_span_id args on every span.
  uint64_t trace_id = 0;
  std::vector<std::string> thread_names;
  std::vector<TraceEvent> events;
};

/// Merges per-process traces into one Chrome trace document: each
/// process gets its own pid plus `M`-phase process_name/thread_name
/// metadata events, and the document carries the run's trace id at the
/// top level when any process reported one. Byte-stable for identical
/// inputs — the merged-trace twin of Tracer::ToChromeJson.
std::string MergedTraceToChromeJson(const std::vector<ProcessTrace>& processes);

/// RAII span: reads the clock at construction and records a TraceEvent
/// on destruction. A null tracer makes every member a no-op — the
/// branch-predicted guard that keeps uninstrumented runs free.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a named integer (element counts and the like) to the span.
  void AddArg(std::string_view key, long long value);

  /// This span's process-local id — what a remote callee should name as
  /// its parent. 0 under a null tracer.
  uint64_t id() const { return event_.span_id; }

  /// Parents this span under another (possibly remote) span id.
  void set_parent(uint64_t parent_span_id);

 private:
  Tracer* tracer_;
  TraceEvent event_;
};

}  // namespace colscope::obs

#endif  // COLSCOPE_OBS_TRACE_H_
