#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace colscope::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  COLSCOPE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // Overflow bucket by default.
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.upper_bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& count : counts_) {
    snap.counts.push_back(count.load(std::memory_order_relaxed));
  }
  snap.total_count = total_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Snapshot::Quantile(double q) const {
  if (total_count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total_count) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    if (i >= upper_bounds.size()) {
      // Overflow bucket: no upper edge, report the lower one.
      return upper_bounds.empty() ? 0.0 : upper_bounds.back();
    }
    const double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
    const double upper = upper_bounds[i];
    const double within =
        static_cast<double>(rank - seen) / static_cast<double>(counts[i]);
    return lower + within * (upper - lower);
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  COLSCOPE_CHECK(start > 0.0 && factor > 1.0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

void MergePrefixed(MetricsSnapshot& dst, const std::string& prefix,
                   const MetricsSnapshot& src) {
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  dst.counters.reserve(dst.counters.size() + src.counters.size());
  for (const auto& [name, value] : src.counters) {
    dst.counters.emplace_back(prefix + name, value);
  }
  std::sort(dst.counters.begin(), dst.counters.end(), by_name);
  dst.gauges.reserve(dst.gauges.size() + src.gauges.size());
  for (const auto& [name, value] : src.gauges) {
    dst.gauges.emplace_back(prefix + name, value);
  }
  std::sort(dst.gauges.begin(), dst.gauges.end(), by_name);
  dst.histograms.reserve(dst.histograms.size() + src.histograms.size());
  for (const auto& [name, hist] : src.histograms) {
    dst.histograms.emplace_back(prefix + name, hist);
  }
  std::sort(dst.histograms.begin(), dst.histograms.end(), by_name);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Leaked.
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->TakeSnapshot());
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

namespace {

double SteadyNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ScopedHistogramTimer::ScopedHistogramTimer(Histogram* histogram)
    : histogram_(histogram) {
  if (histogram_ != nullptr) start_us_ = SteadyNowUs();
}

ScopedHistogramTimer::~ScopedHistogramTimer() {
  if (histogram_ != nullptr) {
    histogram_->Observe((SteadyNowUs() - start_us_) / 1000.0);
  }
}

void SnapshotToJson(const MetricsSnapshot& snapshot, JsonWriter& json) {
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    json.Key(name).Int(static_cast<long long>(value));
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    json.Key(name).Number(value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, hist] : snapshot.histograms) {
    json.Key(name).BeginObject();
    json.Key("upper_bounds").BeginArray();
    for (double bound : hist.upper_bounds) json.Number(bound);
    json.EndArray();
    json.Key("counts").BeginArray();
    for (uint64_t count : hist.counts) {
      json.Int(static_cast<long long>(count));
    }
    json.EndArray();
    json.Key("total_count").Int(static_cast<long long>(hist.total_count));
    json.Key("sum").Number(hist.sum);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

std::string SnapshotToJsonString(const MetricsSnapshot& snapshot) {
  JsonWriter json;
  SnapshotToJson(snapshot, json);
  return json.str();
}

}  // namespace colscope::obs
