#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstring>

namespace colscope::obs {

namespace {

void CopyTruncated(char* dst, size_t dst_cap, std::string_view src) {
  const size_t n = std::min(src.size(), dst_cap);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

FlightRecorder::~FlightRecorder() { delete[] slots_; }

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Record(std::string_view kind, std::string_view detail) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(ticket - 1) % capacity_];
  // Invalidate first so a concurrent Snapshot never pairs the new bytes
  // with the old ticket (or vice versa): any reader that saw the slot
  // committed must re-check after copying and discard on mismatch.
  slot.committed.store(0, std::memory_order_release);
  CopyTruncated(slot.kind, kMaxKindBytes, kind);
  CopyTruncated(slot.detail, kMaxDetailBytes, detail);
  slot.committed.store(ticket, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  const uint64_t high = next_.load(std::memory_order_acquire);
  const uint64_t low = high > capacity_ ? high - capacity_ + 1 : 1;
  std::vector<FlightEvent> events;
  events.reserve(high >= low ? static_cast<size_t>(high - low + 1) : 0);
  for (uint64_t ticket = low; ticket <= high; ++ticket) {
    const Slot& slot = slots_[(ticket - 1) % capacity_];
    if (slot.committed.load(std::memory_order_acquire) != ticket) continue;
    FlightEvent event;
    event.seq = ticket;
    event.kind = slot.kind;
    event.detail = slot.detail;
    // A writer may have lapped us mid-copy; only keep the event if the
    // slot still holds this ticket, i.e. the bytes we read were stable.
    if (slot.committed.load(std::memory_order_acquire) != ticket) continue;
    events.push_back(std::move(event));
  }
  return events;
}

void FlightRecorder::Clear() {
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].committed.store(0, std::memory_order_relaxed);
    slots_[i].kind[0] = '\0';
    slots_[i].detail[0] = '\0';
  }
  next_.store(0, std::memory_order_release);
}

}  // namespace colscope::obs
