#include "obs/thread_pool_metrics.h"

namespace colscope::obs {

namespace {

/// 1us .. ~4s in 12 powers of 4 — wide enough for both queue waits and
/// model-fitting tasks.
std::vector<double> LatencyBuckets() {
  return ExponentialBuckets(1.0, 4.0, 12);
}

}  // namespace

ThreadPoolMetrics::ThreadPoolMetrics(MetricsRegistry* registry,
                                     const std::string& prefix)
    : scheduled_(registry->GetCounter(prefix + ".scheduled")),
      queue_depth_(registry->GetGauge(prefix + ".queue_depth")),
      queue_wait_us_(
          registry->GetHistogram(prefix + ".queue_wait_us",
                                 LatencyBuckets())),
      task_us_(registry->GetHistogram(prefix + ".task_us",
                                      LatencyBuckets())) {}

void ThreadPoolMetrics::OnScheduled(size_t queue_depth) {
  scheduled_.Increment();
  queue_depth_.Set(static_cast<double>(queue_depth));
}

void ThreadPoolMetrics::OnTaskDone(double queue_wait_us, double run_us) {
  queue_wait_us_.Observe(queue_wait_us);
  task_us_.Observe(run_us);
}

}  // namespace colscope::obs
