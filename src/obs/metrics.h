#ifndef COLSCOPE_OBS_METRICS_H_
#define COLSCOPE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"

namespace colscope::obs {

/// Monotonic event count. Increments are lock-free relaxed atomics —
/// safe to call from ThreadPool workers and cheap enough for hot paths.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (element counts, queue depths). Add() is a CAS
/// loop so concurrent adders never lose updates.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive upper edges
/// of the finite buckets (ascending); one implicit +inf overflow bucket
/// follows. Observe() is lock-free: one bucket scan plus relaxed atomics,
/// sized for latency distributions with a handful of buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  /// Point-in-time copy; Quantile() interpolates linearly inside the
  /// containing bucket (the overflow bucket reports its lower edge).
  struct Snapshot {
    std::vector<double> upper_bounds;
    std::vector<uint64_t> counts;  ///< upper_bounds.size() + 1 entries.
    uint64_t total_count = 0;
    double sum = 0.0;

    double Quantile(double q) const;
  };
  Snapshot TakeSnapshot() const;
  void Reset();

  const std::vector<double>& upper_bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` bucket edges starting at `start`, each `factor` times the
/// previous — the usual latency-bucket shape.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// Everything a registry held at one instant, sorted by name so two
/// snapshots of identical state serialize to identical bytes.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/// Folds `src` into `dst` with every name prefixed (e.g. "worker.2."),
/// then re-sorts each section so the result serializes byte-stably —
/// how a coordinator embeds harvested worker snapshots next to its own
/// metrics in one report.
void MergePrefixed(MetricsSnapshot& dst, const std::string& prefix,
                   const MetricsSnapshot& src);

/// Named instrument registry. Registration (Get*) takes a mutex once per
/// name; the returned references are stable for the registry's lifetime,
/// so hot paths hold onto them and update lock-free. Instantiable for
/// tests and per-run scoping; Global() is the process-wide instance.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `upper_bounds` applies on first registration; later calls with the
  /// same name return the existing histogram unchanged.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument's value; names stay registered.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII latency sampler: records the enclosing scope's wall-clock
/// duration (std::chrono::steady_clock, in milliseconds) into `histogram`
/// on destruction. Inert when constructed with nullptr, so call sites can
/// keep one unconditional declaration:
///
///   obs::ScopedHistogramTimer timer(
///       metrics == nullptr ? nullptr
///                          : &metrics->GetHistogram("cache_lookup_ms",
///                                ExponentialBuckets(0.01, 4.0, 10)));
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* histogram);
  ~ScopedHistogramTimer();

  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* histogram_;
  double start_us_ = 0.0;
};

/// Writes `snapshot` as one JSON object value into `json` (callers place
/// it after a Key or inside an array): {"counters":{...},"gauges":{...},
/// "histograms":{name:{bounds,counts,sum,count}}}.
void SnapshotToJson(const MetricsSnapshot& snapshot, JsonWriter& json);

/// Standalone document form of SnapshotToJson.
std::string SnapshotToJsonString(const MetricsSnapshot& snapshot);

}  // namespace colscope::obs

#endif  // COLSCOPE_OBS_METRICS_H_
