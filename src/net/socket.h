#ifndef COLSCOPE_NET_SOCKET_H_
#define COLSCOPE_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/cancellation.h"
#include "common/status.h"
#include "net/frame.h"

namespace colscope::obs {
class MetricsRegistry;
class TraceClock;
class Tracer;
}  // namespace colscope::obs

namespace colscope::net {

/// A TCP peer address. Workers listen on one; the coordinator and
/// TcpTransport dial them.
struct Endpoint {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const;
};

/// Parses "host:port" ("127.0.0.1:0", port 0 = ephemeral bind).
Result<Endpoint> ParseEndpoint(const std::string& spec);

/// Timeouts, deadline, cancellation, and metrics shared by every socket
/// operation. Effective wait of one operation is the smaller of its
/// timeout and the run deadline's remaining budget; a non-null cancel
/// token is polled every few milliseconds, so cancellation unblocks I/O
/// promptly instead of waiting out the timeout. A non-null registry
/// collects the net.* counters (bytes/frames sent and received, connects,
/// connect failures, timeouts, frames rejected).
struct NetOptions {
  double connect_timeout_ms = 5000.0;
  /// Budget for one whole frame read or write.
  double io_timeout_ms = 30000.0;
  Deadline deadline;
  const CancellationToken* cancel = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Span collector for distributed tracing: request sites (coordinator
  /// RPC rounds, TcpTransport fetches, worker handlers) record spans
  /// here. Null leaves every span a no-op.
  obs::Tracer* tracer = nullptr;
  /// Latency source for the net.rpc_ms.<frame_type> histograms. When a
  /// SimulatedTraceClock is wired (the tracer's clock in --trace-clock
  /// sim runs) the observed values are deterministic; null falls back to
  /// the steady wall clock.
  obs::TraceClock* clock = nullptr;
};

/// Current time in milliseconds on the options' latency clock (see
/// NetOptions::clock).
double NetNowMs(const NetOptions& options);

/// Records one client-side RPC round trip (connect/send/receive) into
/// the per-frame-type latency histogram net.rpc_ms.<type>. Only request
/// sites call this: serving-side durations would depend on arrival
/// interleaving and poison byte-reproducibility of harvested snapshots.
void ObserveRpcLatency(const NetOptions& options, FrameType type,
                       double elapsed_ms);

/// RAII non-blocking TCP connection. Movable, closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Dials `endpoint` within the connect timeout. A refused, unreachable,
  /// or timed-out connect is Unavailable; a tripped cancel token is
  /// Cancelled; an exhausted deadline is DeadlineExceeded.
  static Result<Socket> Connect(const Endpoint& endpoint,
                                const NetOptions& options);

  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Writes all of `data`, waiting for socket writability under the
  /// io timeout / deadline / cancel discipline of `options`. When
  /// `count_bytes` is false the caller has already accounted for the
  /// bytes (SendFrame pre-counts whole frames).
  Status SendAll(std::string_view data, const NetOptions& options,
                 bool count_bytes = true);

  /// Reads exactly `len` bytes into `out` (appended). A peer that closes
  /// mid-read yields Unavailable ("connection closed after N of M
  /// bytes"); timeouts are DeadlineExceeded.
  Status RecvExact(std::string& out, size_t len, const NetOptions& options);

  /// Sends one protocol frame. The frame's metrics (net.frames_sent,
  /// net.bytes_sent and its per-type satellite) are committed *before*
  /// the bytes hit the wire: a peer that holds this frame may
  /// immediately ask for a telemetry snapshot, and the snapshot must
  /// already include the reply that triggered the ask. Consequently the
  /// counters mean "handed to the transport" — a send that fails
  /// mid-frame still counts.
  Status SendFrame(FrameType type, std::string_view payload,
                   const NetOptions& options);

  /// Receives one protocol frame: reads and validates the fixed header
  /// first (so a hostile length is rejected before any payload
  /// allocation), then the payload, then verifies the checksum.
  /// Validation failures are InvalidArgument and count as
  /// net.frames_rejected.
  Result<Frame> RecvFrame(const NetOptions& options);

 private:
  int fd_ = -1;
};

/// RAII listening socket bound to 127.0.0.1-style host:port. Port 0
/// binds an ephemeral port; port() reports the one the kernel chose —
/// the harness plumbing that keeps multi-process tests collision-free.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  static Result<Listener> Bind(const Endpoint& endpoint);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  /// Accepts one connection, waiting up to `wait_ms` (cancel-aware via
  /// `options`). NotFound when the wait elapsed with no connection —
  /// callers poll in a loop so shutdown flags get checked between waits.
  Result<Socket> Accept(double wait_ms, const NetOptions& options);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace colscope::net

#endif  // COLSCOPE_NET_SOCKET_H_
