#include "net/worker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "exchange/exchange.h"
#include "net/tcp_transport.h"
#include "net/telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "scoping/collaborative.h"
#include "scoping/model_io.h"

namespace colscope::net {

struct WorkerServer::State {
  const scoping::SignatureSet* signatures = nullptr;
  WorkerOptions options;
  Listener listener;
  std::atomic<bool> stop{false};

  std::mutex mu;
  /// Set by kAssign (guarded by mu).
  std::optional<AssignConfig> config;
  /// publisher -> published serialized versions, oldest first (guarded
  /// by mu). kStale serves versions.front(), healthy fetches the back.
  std::map<int, std::vector<std::string>> models;
};

namespace {

using State = WorkerServer::State;

/// Writes `port` to `path` atomically (tmp + rename) so a polling test
/// harness never observes a half-written number.
Status WritePortFile(const std::string& path, uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open port file: " + tmp);
    }
    out << port << "\n";
    if (!out.flush()) {
      return Status::Internal("cannot write port file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename port file into place: " + path);
  }
  return Status::Ok();
}

void SendError(Socket& socket, const Status& status,
               const NetOptions& options) {
  // Best effort: the requester also handles an abrupt close.
  (void)socket.SendFrame(FrameType::kError, EncodeErrorPayload(status),
                         options);
}

void HandleAssign(State& state, Socket& socket, const Frame& frame) {
  Result<AssignConfig> config = DecodeAssign(frame.payload);
  if (!config.ok()) {
    SendError(socket, config.status(), state.options.net);
    return;
  }
  // Adopt the run's trace context: every span this worker records from
  // here on shares the coordinator's trace id, and the assign span
  // parents under the coordinator's rpc.assign span. The assign and
  // assess handlers are the only worker paths that touch the tracer (and
  // through it the trace clock) — the coordinator drives them strictly
  // sequentially, which is what keeps harvested traces byte-reproducible
  // under SimulatedTraceClock.
  obs::Tracer* tracer = state.options.net.tracer;
  if (tracer != nullptr) {
    if (config->trace.trace_id != 0) {
      tracer->set_trace_id(config->trace.trace_id);
    }
    tracer->NameThisThread("assign");
  }
  std::map<int, std::vector<std::string>> fitted;
  {
    obs::ScopedSpan span(tracer, "worker.assign");
    span.set_parent(config->trace.parent_span);
    span.AddArg("schemas", static_cast<long long>(config->shard.size()));
    for (int schema : config->shard) {
      Result<scoping::LocalModel> model = scoping::LocalModel::Fit(
          state.signatures->SchemaSignatures(schema), config->v, schema);
      if (!model.ok()) {
        obs::FlightRecorder::Global().Record(
            "serve", StrFormat("assign %s",
                               StatusCodeToString(model.status().code())));
        SendError(socket, model.status(), state.options.net);
        return;
      }
      fitted[schema].push_back(scoping::SerializeLocalModel(*model));
    }
  }
  obs::FlightRecorder::Global().Record(
      "serve", StrFormat("assign schemas=%zu ok", config->shard.size()));
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.config = std::move(config).value();
    for (auto& [schema, versions] : fitted) {
      auto& store = state.models[schema];
      for (std::string& payload : versions) {
        store.push_back(std::move(payload));
      }
    }
  }
  (void)socket.SendFrame(FrameType::kAssignAck,
                         StrFormat("ok %zu", fitted.size()),
                         state.options.net);
  if (state.options.crash_after_assign) {
    // The deterministic mid-exchange death of the quorum ctest: the ack
    // is on the wire, the models are published, and the process dies
    // before any peer can fetch them.
    raise(SIGKILL);
  }
}

void HandleGetModel(State& state, Socket& socket, const Frame& frame) {
  Result<GetModelRequest> request = DecodeGetModel(frame.payload);
  if (!request.ok()) {
    SendError(socket, request.status(), state.options.net);
    return;
  }
  FaultProfile faults;
  std::string fresh;
  std::string oldest;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.config.has_value()) {
      SendError(socket,
                Status::FailedPrecondition("worker has no assignment yet"),
                state.options.net);
      return;
    }
    const auto versions = state.models.find(request->publisher);
    if (versions == state.models.end() || versions->second.empty()) {
      // Permanent, exactly like fetching an unpublished in-memory model:
      // the retry loop treats NotFound as not worth retrying.
      SendError(socket,
                Status::NotFound(StrFormat("schema %d model not published "
                                           "on this worker",
                                           request->publisher)),
                state.options.net);
      return;
    }
    faults = state.config->faults;
    fresh = versions->second.back();
    oldest = versions->second.front();
  }

  // Network partition: the connection is accepted and the request read,
  // but no reply byte ever comes — the fetcher stalls until its io
  // timeout or run deadline fires. Distinct from kDrop, whose EOF is
  // immediate. The stall polls the stop flag and is capped by this
  // worker's own io timeout so Serve() can still join the thread.
  if (faults.partition_from >= 0 &&
      request->publisher == faults.partition_from) {
    obs::FlightRecorder::Global().Record(
        "serve",
        StrFormat("get_model publisher=%d consumer=%d attempt=%d "
                  "fault=partition",
                  request->publisher, request->consumer, request->attempt));
    constexpr double kStallTickMs = 10.0;
    double stalled_ms = 0.0;
    while (!state.stop.load() &&
           stalled_ms < state.options.net.io_timeout_ms) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(kStallTickMs));
      stalled_ms += kStallTickMs;
    }
    return;
  }

  // Server-side fault injection: the same deterministic
  // (publisher, consumer, attempt) stream as the in-memory transport,
  // realized at the socket layer.
  const FaultInjector injector{faults};
  const FaultInjector::Decision decision =
      injector.Decide(static_cast<uint64_t>(request->publisher),
                      static_cast<uint64_t>(request->consumer),
                      static_cast<uint64_t>(request->attempt), fresh.size());
  // Flight-recorded (counters only — this handler runs concurrently with
  // assessments, so it must never touch the tracer or its clock).
  obs::FlightRecorder::Global().Record(
      "serve",
      StrFormat("get_model publisher=%d consumer=%d attempt=%d fault=%s",
                request->publisher, request->consumer, request->attempt,
                FaultKindToString(decision.kind)));
  switch (decision.kind) {
    case FaultKind::kDrop:
      // Close without responding; the fetcher sees EOF before any frame
      // byte and classifies a drop.
      return;
    case FaultKind::kDelay: {
      const auto wait =
          std::chrono::duration<double, std::milli>(decision.latency_ms);
      std::this_thread::sleep_for(wait);
      (void)socket.SendFrame(FrameType::kModel, fresh, state.options.net);
      return;
    }
    case FaultKind::kTruncate: {
      // Mid-frame wire truncation: a strict prefix of the encoded frame,
      // then EOF. The fetcher's RecvFrame dies inside the payload.
      const std::string encoded = EncodeFrame(FrameType::kModel, fresh);
      const size_t cut =
          std::min(encoded.size(), kFrameHeaderSize + decision.truncate_at);
      (void)socket.SendAll(std::string_view(encoded).substr(0, cut),
                           state.options.net);
      return;
    }
    case FaultKind::kCorrupt: {
      // Flip one payload byte *before* framing, so the checksum honestly
      // covers the corrupted bytes and the frame arrives intact — like
      // the in-memory transport, the defect is only detectable by
      // parsing the payload, which is what the fetch retry loop does.
      std::string corrupted = fresh;
      if (!corrupted.empty()) {
        corrupted[decision.corrupt_pos % corrupted.size()] ^=
            static_cast<char>(decision.corrupt_mask);
      }
      (void)socket.SendFrame(FrameType::kModel, corrupted,
                             state.options.net);
      return;
    }
    case FaultKind::kStale:
      (void)socket.SendFrame(FrameType::kModel, oldest, state.options.net);
      return;
    case FaultKind::kNone:
      (void)socket.SendFrame(FrameType::kModel, fresh, state.options.net);
      return;
  }
}

void HandleAssess(State& state, Socket& socket, const Frame& frame) {
  Result<AssessRequest> request = DecodeAssess(frame.payload);
  if (!request.ok()) {
    SendError(socket, request.status(), state.options.net);
    return;
  }
  AssignConfig config;
  std::map<int, std::vector<std::string>> models;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.config.has_value()) {
      SendError(socket,
                Status::FailedPrecondition("worker has no assignment yet"),
                state.options.net);
      return;
    }
    config = *state.config;
    models = state.models;
  }
  obs::Tracer* tracer = state.options.net.tracer;
  if (tracer != nullptr) {
    if (request->trace.trace_id != 0) {
      tracer->set_trace_id(request->trace.trace_id);
    }
    tracer->NameThisThread("assess");
  }
  // All assessment telemetry — spans included — is committed before the
  // kPartial reply goes out: the moment the coordinator holds the reply
  // it may harvest (kStatsRequest, served on another thread), and the
  // stats snapshot must already reflect this round.
  PartialResult partial;
  {
    obs::ScopedSpan span(tracer, "worker.assess");
    span.set_parent(request->trace.parent_span);
    span.AddArg("consumers", static_cast<long long>(config.shard.size()));

    // Foreign models come over the wire; the worker's own shard is
    // served through the transport's embedded in-memory path so local
    // fetches see the same deterministic fault stream as a
    // single-process run.
    TcpTransport transport(config.owners, FaultInjector{config.faults},
                           state.options.net);
    for (const auto& [publisher, versions] : models) {
      for (const std::string& payload : versions) {
        (void)transport.Publish(publisher, payload);
      }
    }

    std::vector<int> consumers = config.shard;
    std::sort(consumers.begin(), consumers.end());

    for (int consumer : consumers) {
      obs::ScopedSpan consumer_span(tracer, "worker.assess.consumer");
      consumer_span.AddArg("consumer", consumer);
      partial.consumers.push_back(AssessConsumerOverTransport(
          *state.signatures, consumer, config.num_schemas, transport,
          config.retry, config.faults.seed, config.degraded,
          partial.fetches, state.options.net.metrics,
          state.options.net.cancel));
    }
    obs::FlightRecorder::Global().Record(
        "serve",
        StrFormat("assess consumers=%zu ok", partial.consumers.size()));
  }

  (void)socket.SendFrame(FrameType::kPartial, EncodePartial(partial),
                         state.options.net);
}

/// Answers kStatsRequest with this worker's full telemetry. Deliberately
/// span-free and clock-free: the harvest reply must report the telemetry,
/// not perturb it — and this handler runs outside the deterministic
/// assign/assess sequence, so touching a SimulatedTraceClock here would
/// break the byte-identical merged-trace guarantee.
void HandleStats(State& state, Socket& socket) {
  WorkerTelemetry telemetry;
  obs::Tracer* tracer = state.options.net.tracer;
  if (tracer != nullptr) {
    telemetry.trace_id = tracer->trace_id();
    telemetry.thread_names = tracer->ThreadNames();
    telemetry.events = tracer->Events();
  }
  if (state.options.net.metrics != nullptr) {
    telemetry.metrics = state.options.net.metrics->Snapshot();
  }
  obs::FlightRecorder::Global().Record("serve", "stats ok");
  (void)socket.SendFrame(FrameType::kStats, EncodeStats(telemetry),
                         state.options.net);
}

void HandleConnection(std::shared_ptr<State> state, Socket socket) {
  Result<Frame> frame = socket.RecvFrame(state->options.net);
  if (!frame.ok()) {
    COLSCOPE_LOG(Debug) << "worker: dropping connection: "
                        << frame.status().ToString();
    return;
  }
  switch (frame->type) {
    case FrameType::kAssign:
      HandleAssign(*state, socket, *frame);
      return;
    case FrameType::kGetModel:
      HandleGetModel(*state, socket, *frame);
      return;
    case FrameType::kAssess:
      HandleAssess(*state, socket, *frame);
      return;
    case FrameType::kStatsRequest:
      HandleStats(*state, socket);
      return;
    case FrameType::kShutdown:
      state->stop.store(true);
      obs::FlightRecorder::Global().Record("serve", "shutdown ok");
      (void)socket.SendFrame(FrameType::kShutdownAck, "",
                             state->options.net);
      return;
    default:
      SendError(socket,
                Status::InvalidArgument(StrFormat(
                    "worker cannot serve frame type %u",
                    static_cast<unsigned>(frame->type))),
                state->options.net);
      return;
  }
}

}  // namespace

uint16_t WorkerServer::port() const { return state_->listener.port(); }

void WorkerServer::RequestStop() { state_->stop.store(true); }

Result<WorkerServer> WorkerServer::Create(
    const scoping::SignatureSet* signatures, WorkerOptions options) {
  if (signatures == nullptr) {
    return Status::InvalidArgument("worker needs a signature set");
  }
  Result<Listener> listener = Listener::Bind(options.listen);
  if (!listener.ok()) return listener.status();

  WorkerServer server;
  server.state_ = std::make_shared<State>();
  server.state_->signatures = signatures;
  server.state_->listener = std::move(listener).value();
  server.state_->options = std::move(options);
  if (!server.state_->options.port_file.empty()) {
    COLSCOPE_RETURN_IF_ERROR(WritePortFile(server.state_->options.port_file,
                                           server.state_->listener.port()));
  }
  COLSCOPE_LOG(Info) << "worker listening on port "
                     << server.state_->listener.port();
  return server;
}

Status WorkerServer::Serve() {
  std::vector<std::thread> threads;
  while (!state_->stop.load()) {
    Result<Socket> socket =
        state_->listener.Accept(100.0, state_->options.net);
    if (!socket.ok()) {
      if (socket.status().code() == StatusCode::kNotFound) continue;
      if (socket.status().code() == StatusCode::kCancelled) break;
      for (std::thread& thread : threads) thread.join();
      return socket.status();
    }
    threads.emplace_back(HandleConnection, state_,
                         std::move(socket).value());
  }
  for (std::thread& thread : threads) thread.join();
  return Status::Ok();
}

}  // namespace colscope::net
