#include "net/coordinator.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/strings.h"
#include "net/tcp_transport.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace colscope::net {

namespace {

/// One request/response round trip on a fresh connection, observed into
/// net.rpc_ms.<type> (connect through reply, failures included). A
/// kError reply is unwrapped into its carried status.
Result<Frame> Call(const Endpoint& endpoint, FrameType type,
                   const std::string& payload, const NetOptions& net) {
  const double start_ms = NetNowMs(net);
  Result<Frame> reply = [&]() -> Result<Frame> {
    Result<Socket> socket = Socket::Connect(endpoint, net);
    if (!socket.ok()) return socket.status();
    Status sent = socket->SendFrame(type, payload, net);
    if (!sent.ok()) return sent;
    return socket->RecvFrame(net);
  }();
  ObserveRpcLatency(net, type, NetNowMs(net) - start_ms);
  if (reply.ok() && reply->type == FrameType::kError) {
    return DecodeErrorPayload(reply->payload);
  }
  return reply;
}

/// Flight-recorder label of one RPC round outcome: "ok", the status code
/// name, or "unexpected_reply" — never messages (they can embed ports).
const char* RpcOutcome(const Result<Frame>& reply, FrameType want) {
  if (!reply.ok()) return StatusCodeToString(reply.status().code());
  return reply->type == want ? "ok" : "unexpected_reply";
}

void RecordRpcFlight(const char* what, size_t worker,
                     const char* outcome) {
  obs::FlightRecorder::Global().Record(
      "rpc", StrFormat("%s worker=%zu %s", what, worker, outcome));
}

}  // namespace

Result<DistributedScopeResult> DistributedScope(
    const scoping::SignatureSet& signatures, size_t num_schemas,
    const CoordinatorOptions& options, obs::MetricsRegistry* metrics) {
  if (options.workers.empty()) {
    return Status::InvalidArgument("distributed run needs >= 1 worker");
  }
  if (num_schemas < 2) {
    return Status::InvalidArgument(
        "collaborative scoping needs >= 2 schemas");
  }

  const size_t num_workers = options.workers.size();
  AssignConfig base;
  base.num_schemas = num_schemas;
  base.v = options.v;
  base.degraded = options.degraded;
  base.retry = options.retry;
  base.faults = options.faults;
  std::vector<std::vector<int>> shards(num_workers);
  for (size_t schema = 0; schema < num_schemas; ++schema) {
    base.owners[static_cast<int>(schema)] =
        options.workers[schema % num_workers];
    shards[schema % num_workers].push_back(static_cast<int>(schema));
  }

  DistributedScopeResult result;
  result.assign = base;
  for (size_t schema = 0; schema < num_schemas; ++schema) {
    result.assign.shard.push_back(static_cast<int>(schema));
  }

  obs::Tracer* tracer = options.net.tracer;
  const uint64_t trace_id = tracer != nullptr ? tracer->trace_id() : 0;

  // Round 1: ship every worker its assignment; it fits and publishes its
  // shard's models before acking. A worker that cannot be assigned is
  // lost — its schemas degrade exactly like a mid-run death. Each RPC
  // records an rpc.assign span whose id rides the payload, so the
  // worker's fitting span parents under it in the merged trace.
  std::vector<bool> lost(num_workers, false);
  for (size_t w = 0; w < num_workers; ++w) {
    if (shards[w].empty()) continue;
    AssignConfig config = base;
    config.shard = shards[w];
    Result<Frame> ack = Status::Internal("rpc not attempted");
    {
      obs::ScopedSpan span(tracer, "rpc.assign");
      span.AddArg("worker", static_cast<long long>(w));
      config.trace.trace_id = trace_id;
      config.trace.parent_span = span.id();
      ack = Call(options.workers[w], FrameType::kAssign,
                 EncodeAssign(config), options.net);
    }
    RecordRpcFlight("assign", w, RpcOutcome(ack, FrameType::kAssignAck));
    if (!ack.ok() || ack->type != FrameType::kAssignAck) {
      lost[w] = true;
      COLSCOPE_LOG(Warn) << "coordinator: worker " << w << " ("
                         << options.workers[w].ToString()
                         << ") lost at assignment: "
                         << (ack.ok() ? "unexpected reply frame"
                                      : ack.status().ToString());
    }
  }

  // Round 2: collect each surviving worker's combiner-style partial
  // reduction. Sequential on purpose: workers serve sibling kGetModel
  // requests on their own connection threads, so no cross-worker
  // dependency can deadlock, and the merged result stays deterministic.
  std::vector<std::optional<ConsumerPartial>> partials(num_schemas);
  std::vector<exchange::PeerFetchRecord> records;
  for (size_t w = 0; w < num_workers; ++w) {
    if (lost[w] || shards[w].empty()) continue;
    Result<Frame> reply = Status::Internal("rpc not attempted");
    {
      obs::ScopedSpan span(tracer, "rpc.assess");
      span.AddArg("worker", static_cast<long long>(w));
      AssessRequest request;
      request.trace.trace_id = trace_id;
      request.trace.parent_span = span.id();
      reply = Call(options.workers[w], FrameType::kAssess,
                   EncodeAssess(request), options.net);
    }
    RecordRpcFlight("assess", w, RpcOutcome(reply, FrameType::kPartial));
    if (!reply.ok() || reply->type != FrameType::kPartial) {
      lost[w] = true;
      COLSCOPE_LOG(Warn) << "coordinator: worker " << w << " ("
                         << options.workers[w].ToString()
                         << ") lost mid-exchange: "
                         << (reply.ok() ? "unexpected reply frame"
                                        : reply.status().ToString());
      continue;
    }
    Result<PartialResult> partial = DecodePartial(reply->payload);
    if (!partial.ok()) {
      return Status::Internal(StrFormat(
          "worker %zu sent a malformed partial: %s", w,
          partial.status().ToString().c_str()));
    }
    for (ConsumerPartial& consumer : partial->consumers) {
      const size_t index = static_cast<size_t>(consumer.consumer);
      if (index >= num_schemas ||
          std::find(shards[w].begin(), shards[w].end(),
                    consumer.consumer) == shards[w].end()) {
        return Status::Internal(StrFormat(
            "worker %zu answered for schema %d it does not own", w,
            consumer.consumer));
      }
      partials[index] = std::move(consumer);
    }
    for (exchange::PeerFetchRecord& record : partial->fetches) {
      records.push_back(std::move(record));
    }
  }

  // Lost shards: re-execute their consumers' assessments here, fetching
  // from the survivors. A dead worker's publishers refuse connections,
  // so those fetches drop — the same arrival sets (and therefore the
  // same keep bits) as an in-memory exchange with a drop-from fault on
  // the dead worker's schemas.
  std::vector<int> lost_schemas;
  for (size_t w = 0; w < num_workers; ++w) {
    if (!lost[w]) continue;
    result.lost_workers.push_back(w);
    lost_schemas.insert(lost_schemas.end(), shards[w].begin(),
                        shards[w].end());
  }
  std::sort(lost_schemas.begin(), lost_schemas.end());
  if (!lost_schemas.empty()) {
    TcpTransport transport(base.owners, FaultInjector{options.faults},
                           options.net);
    for (int consumer : lost_schemas) {
      obs::FlightRecorder::Global().Record(
          "reexec", StrFormat("consumer=%d", consumer));
      obs::ScopedSpan span(tracer, "coordinator.reexec");
      span.AddArg("consumer", consumer);
      partials[static_cast<size_t>(consumer)] = AssessConsumerOverTransport(
          signatures, consumer, num_schemas, transport, options.retry,
          options.faults.seed, options.degraded, records, metrics,
          options.net.cancel);
    }
  }

  // Telemetry harvest: ask every surviving worker for its metrics
  // snapshot + trace buffer before any shutdown. Losing a worker's
  // telemetry (dead, unresponsive, or malformed reply) leaves a hole,
  // never an error — the run already survived worse.
  result.telemetry.assign(num_workers, std::nullopt);
  for (size_t w = 0; w < num_workers; ++w) {
    if (lost[w]) {
      RecordRpcFlight("stats", w, "hole");
      continue;
    }
    Result<Frame> reply = Status::Internal("rpc not attempted");
    {
      obs::ScopedSpan span(tracer, "rpc.stats");
      span.AddArg("worker", static_cast<long long>(w));
      reply = Call(options.workers[w], FrameType::kStatsRequest, "",
                   options.net);
    }
    if (!reply.ok() || reply->type != FrameType::kStats) {
      RecordRpcFlight("stats", w, RpcOutcome(reply, FrameType::kStats));
      COLSCOPE_LOG(Warn) << "coordinator: no telemetry from worker " << w;
      continue;
    }
    Result<WorkerTelemetry> telemetry = DecodeStats(reply->payload);
    if (!telemetry.ok()) {
      RecordRpcFlight("stats", w, "malformed");
      COLSCOPE_LOG(Warn) << "coordinator: malformed telemetry from worker "
                         << w << ": " << telemetry.status().ToString();
      continue;
    }
    RecordRpcFlight("stats", w, "ok");
    result.telemetry[static_cast<size_t>(w)] = std::move(telemetry).value();
  }

  // Merge, schema-ascending like AssessAllSparse: the first consumer the
  // degradation policy refused fails the whole run with its error.
  result.keep.assign(signatures.size(), false);
  std::vector<size_t> arrived_per_schema(num_schemas, 0);
  for (size_t s = 0; s < num_schemas; ++s) {
    if (!partials[s].has_value()) {
      return Status::Internal(
          StrFormat("no partial result for schema %zu", s));
    }
    const ConsumerPartial& partial = *partials[s];
    if (!partial.ok) {
      return Status::Unavailable(partial.error);
    }
    arrived_per_schema[s] = partial.arrived;
    const std::vector<size_t> rows =
        signatures.RowsOfSchema(static_cast<int>(s));
    if (partial.bits.size() != rows.size()) {
      return Status::Internal(StrFormat(
          "schema %zu partial has %zu bits for %zu rows", s,
          partial.bits.size(), rows.size()));
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      result.keep[rows[i]] = partial.bits[i];
    }
  }
  if (metrics != nullptr) {
    const char* policy = scoping::DegradedPolicyToString(
        options.degraded.policy);
    size_t kept = 0;
    for (bool keep : result.keep) kept += keep;
    metrics->GetCounter(StrFormat("scoping.kept.%s", policy))
        .Increment(kept);
    metrics->GetCounter(StrFormat("scoping.pruned.%s", policy))
        .Increment(result.keep.size() - kept);
  }

  // Deterministic record order regardless of which worker answered
  // first: the consumer-major order ExchangeLocalModels produces.
  std::stable_sort(records.begin(), records.end(),
                   [](const exchange::PeerFetchRecord& a,
                      const exchange::PeerFetchRecord& b) {
                     if (a.consumer != b.consumer) {
                       return a.consumer < b.consumer;
                     }
                     return a.publisher < b.publisher;
                   });
  result.degradation = exchange::BuildDegradationReport(
      records, arrived_per_schema,
      scoping::DegradedPolicyToString(options.degraded.policy), num_schemas);
  return result;
}

void ShutdownWorkers(const std::vector<Endpoint>& workers,
                     const NetOptions& net) {
  for (size_t w = 0; w < workers.size(); ++w) {
    obs::ScopedSpan span(net.tracer, "rpc.shutdown");
    span.AddArg("worker", static_cast<long long>(w));
    Result<Frame> reply = Call(workers[w], FrameType::kShutdown, "", net);
    RecordRpcFlight("shutdown", w, RpcOutcome(reply, FrameType::kShutdownAck));
  }
}

}  // namespace colscope::net
