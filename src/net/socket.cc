#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/checksum.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace colscope::net {

namespace {

/// Cancellation poll granularity: the longest a blocked socket operation
/// can outlive a tripped token or an expired deadline.
constexpr int kPollTickMs = 10;

void Count(obs::MetricsRegistry* metrics, const char* name,
           uint64_t delta = 1) {
  if (metrics != nullptr) metrics->GetCounter(name).Increment(delta);
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(StrFormat("fcntl(O_NONBLOCK): %s",
                                      std::strerror(errno)));
  }
  return Status::Ok();
}

/// How long one poll() round may wait given the operation budget left and
/// the run deadline; <= 0 means the wait is already over.
double EffectiveWaitMs(double op_remaining_ms, const Deadline& deadline) {
  double wait = op_remaining_ms;
  if (!deadline.infinite()) wait = std::min(wait, deadline.remaining_ms());
  return wait;
}

/// Waits until `fd` is ready for `events`, in kPollTickMs slices so the
/// cancel token and deadline stay responsive. Ok when ready.
Status WaitReady(int fd, short events, double timeout_ms,
                 const NetOptions& options, const char* what) {
  double waited_ms = 0.0;
  for (;;) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return Status::Cancelled(StrFormat("%s cancelled", what));
    }
    if (!options.deadline.infinite() && options.deadline.expired()) {
      Count(options.metrics, "net.timeouts");
      return Status::DeadlineExceeded(
          StrFormat("%s aborted: run deadline exhausted", what));
    }
    const double remaining =
        EffectiveWaitMs(timeout_ms - waited_ms, options.deadline);
    if (remaining <= 0.0) {
      Count(options.metrics, "net.timeouts");
      return Status::DeadlineExceeded(
          StrFormat("%s timed out after %.0f ms", what, timeout_ms));
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int slice =
        static_cast<int>(std::min<double>(kPollTickMs, remaining)) + 1;
    const int ready = poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("poll during %s: %s", what,
                                        std::strerror(errno)));
    }
    if (ready > 0) {
      // Readable/writable covers hangup and error too: the following
      // read/write reports the precise failure.
      return Status::Ok();
    }
    waited_ms += slice;
  }
}

Result<struct sockaddr_in> ResolveV4(const Endpoint& endpoint) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        "not an IPv4 address (distributed mode dials numeric addresses): " +
        endpoint.host);
  }
  return addr;
}

/// Bumps the per-frame-type byte counter (satellite of the aggregate
/// net.bytes_sent/net.bytes_received kept by SendAll/RecvExact).
void CountFrameBytes(obs::MetricsRegistry* metrics, const char* direction,
                     FrameType type, uint64_t bytes) {
  if (metrics == nullptr) return;
  metrics
      ->GetCounter(StrFormat("net.bytes_%s.%s", direction,
                             FrameTypeToString(type)))
      .Increment(bytes);
}

}  // namespace

double NetNowMs(const NetOptions& options) {
  if (options.clock != nullptr) return options.clock->NowUs() / 1000.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ObserveRpcLatency(const NetOptions& options, FrameType type,
                       double elapsed_ms) {
  if (options.metrics == nullptr) return;
  options.metrics
      ->GetHistogram(StrFormat("net.rpc_ms.%s", FrameTypeToString(type)),
                     obs::ExponentialBuckets(0.001, 8.0, 8))
      .Observe(elapsed_ms);
}

std::string Endpoint::ToString() const {
  return StrFormat("%s:%u", host.c_str(), port);
}

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  const size_t colon = spec.find_last_of(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return Status::InvalidArgument("endpoint is not host:port: " + spec);
  }
  Endpoint endpoint;
  endpoint.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  char* end = nullptr;
  errno = 0;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (errno != 0 || end == port_text.c_str() || *end != '\0' ||
      port > 65535) {
    return Status::InvalidArgument("malformed endpoint port: " + spec);
  }
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Connect(const Endpoint& endpoint,
                               const NetOptions& options) {
  Result<struct sockaddr_in> addr = ResolveV4(endpoint);
  if (!addr.ok()) return addr.status();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  Socket socket(fd);
  COLSCOPE_RETURN_IF_ERROR(SetNonBlocking(fd));
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const std::string what =
      StrFormat("connect to %s", endpoint.ToString().c_str());
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&*addr),
                sizeof(*addr)) < 0) {
    // POSIX: a connect interrupted by a signal completes asynchronously,
    // exactly like EINPROGRESS — the POLLOUT wait below picks it up.
    if (errno != EINPROGRESS && errno != EINTR) {
      Count(options.metrics, "net.connect_failures");
      return Status::Unavailable(
          StrFormat("%s: %s", what.c_str(), std::strerror(errno)));
    }
    const Status ready = WaitReady(fd, POLLOUT, options.connect_timeout_ms,
                                   options, what.c_str());
    if (!ready.ok()) {
      Count(options.metrics, "net.connect_failures");
      // Keep cancellation and run-deadline statuses intact; per-connect
      // timeouts become Unavailable so retry loops treat them like any
      // other transient connect failure.
      if (ready.code() == StatusCode::kCancelled ||
          (ready.code() == StatusCode::kDeadlineExceeded &&
           !options.deadline.infinite() && options.deadline.expired())) {
        return ready;
      }
      return Status::Unavailable(ready.message());
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) < 0 ||
        error != 0) {
      Count(options.metrics, "net.connect_failures");
      return Status::Unavailable(StrFormat(
          "%s: %s", what.c_str(), std::strerror(error != 0 ? error : errno)));
    }
  }
  Count(options.metrics, "net.connects");
  return socket;
}

Status Socket::SendAll(std::string_view data, const NetOptions& options,
                       bool count_bytes) {
  if (!valid()) return Status::Internal("send on a closed socket");
  size_t sent = 0;
  while (sent < data.size()) {
    COLSCOPE_RETURN_IF_ERROR(WaitReady(fd_, POLLOUT, options.io_timeout_ms,
                                       options, "socket send"));
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;
      }
      return Status::Unavailable(
          StrFormat("send failed after %zu of %zu bytes: %s", sent,
                    data.size(), std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
    if (count_bytes) {
      Count(options.metrics, "net.bytes_sent", static_cast<uint64_t>(n));
    }
  }
  return Status::Ok();
}

Status Socket::RecvExact(std::string& out, size_t len,
                         const NetOptions& options) {
  if (!valid()) return Status::Internal("recv on a closed socket");
  size_t received = 0;
  char buffer[4096];
  while (received < len) {
    COLSCOPE_RETURN_IF_ERROR(WaitReady(fd_, POLLIN, options.io_timeout_ms,
                                       options, "socket recv"));
    const size_t want = std::min(len - received, sizeof(buffer));
    const ssize_t n = ::recv(fd_, buffer, want, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;
      }
      return Status::Unavailable(
          StrFormat("recv failed after %zu of %zu bytes: %s", received, len,
                    std::strerror(errno)));
    }
    if (n == 0) {
      return Status::Unavailable(
          StrFormat("connection closed after %zu of %zu bytes", received,
                    len));
    }
    out.append(buffer, static_cast<size_t>(n));
    received += static_cast<size_t>(n);
    Count(options.metrics, "net.bytes_received", static_cast<uint64_t>(n));
  }
  return Status::Ok();
}

Status Socket::SendFrame(FrameType type, std::string_view payload,
                         const NetOptions& options) {
  const std::string encoded = EncodeFrame(type, payload);
  // Accounting first, wire second (see the header contract): once the
  // peer holds this frame it may harvest a telemetry snapshot, and that
  // snapshot must already include this frame's counts.
  Count(options.metrics, "net.frames_sent");
  Count(options.metrics, "net.bytes_sent",
        static_cast<uint64_t>(encoded.size()));
  CountFrameBytes(options.metrics, "sent", type, encoded.size());
  return SendAll(encoded, options, /*count_bytes=*/false);
}

Result<Frame> Socket::RecvFrame(const NetOptions& options) {
  std::string header;
  header.reserve(kFrameHeaderSize);
  COLSCOPE_RETURN_IF_ERROR(RecvExact(header, kFrameHeaderSize, options));
  Result<FrameHeader> parsed = ParseFrameHeader(header);
  if (!parsed.ok()) {
    Count(options.metrics, "net.frames_rejected");
    return parsed.status();
  }
  Frame frame;
  frame.type = parsed->type;
  frame.payload.reserve(parsed->payload_len);
  const Status body = RecvExact(frame.payload, parsed->payload_len, options);
  if (!body.ok()) {
    // A peer that dies mid-payload is wire truncation, not a protocol
    // violation — keep the transport-level status code.
    Count(options.metrics, "net.frames_rejected");
    return body;
  }
  if (Fnv1a64(frame.payload) != parsed->checksum) {
    Count(options.metrics, "net.frames_rejected");
    return Status::InvalidArgument("frame payload checksum mismatch");
  }
  Count(options.metrics, "net.frames_received");
  CountFrameBytes(options.metrics, "received", parsed->type,
                  kFrameHeaderSize + parsed->payload_len);
  return frame;
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Bind(const Endpoint& endpoint) {
  Result<struct sockaddr_in> addr = ResolveV4(endpoint);
  if (!addr.ok()) return addr.status();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  Listener listener;
  listener.fd_ = fd;
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  COLSCOPE_RETURN_IF_ERROR(SetNonBlocking(fd));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&*addr),
             sizeof(*addr)) < 0) {
    return Status::Unavailable(StrFormat("bind %s: %s",
                                         endpoint.ToString().c_str(),
                                         std::strerror(errno)));
  }
  if (::listen(fd, 64) < 0) {
    return Status::Internal(StrFormat("listen: %s", std::strerror(errno)));
  }
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) <
      0) {
    return Status::Internal(StrFormat("getsockname: %s",
                                      std::strerror(errno)));
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<Socket> Listener::Accept(double wait_ms, const NetOptions& options) {
  if (!valid()) return Status::Internal("accept on a closed listener");
  NetOptions accept_options = options;
  accept_options.io_timeout_ms = wait_ms;
  // An empty accept slice is the serve loop's normal idle tick, not an
  // I/O failure — keep it out of net.timeouts (whose value must not
  // depend on how fast peers happen to connect).
  accept_options.metrics = nullptr;
  const Status ready =
      WaitReady(fd_, POLLIN, wait_ms, accept_options, "accept");
  if (!ready.ok()) {
    if (ready.code() == StatusCode::kDeadlineExceeded) {
      return Status::NotFound("no connection within the accept wait");
    }
    return ready;
  }
  int fd = -1;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
    // A signal (the daemon's SIGTERM handler, a debugger attach) can
    // interrupt accept after poll said a connection is pending; the
    // connection is still there, so retry instead of surfacing a
    // spurious Unavailable. EAGAIN means the peer vanished between poll
    // and accept — an idle tick, not a failure.
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::NotFound("no connection within the accept wait");
    }
    return Status::Unavailable(StrFormat("accept: %s",
                                         std::strerror(errno)));
  }
  Socket socket(fd);
  const Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) return nonblocking;
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

}  // namespace colscope::net
