#include "net/frame.h"

#include "common/checksum.h"
#include "common/strings.h"

namespace colscope::net {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'N', 'F'};

void PutU16(std::string& out, uint16_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
}

void PutU32(std::string& out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

uint16_t GetU16(std::string_view bytes, size_t at) {
  return static_cast<uint16_t>(static_cast<uint8_t>(bytes[at]) |
                               static_cast<uint8_t>(bytes[at + 1]) << 8);
}

uint32_t GetU32(std::string_view bytes, size_t at) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = value << 8 | static_cast<uint8_t>(bytes[at + i]);
  }
  return value;
}

uint64_t GetU64(std::string_view bytes, size_t at) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = value << 8 | static_cast<uint8_t>(bytes[at + i]);
  }
  return value;
}

}  // namespace

bool IsKnownFrameType(uint8_t value) {
  return value >= static_cast<uint8_t>(FrameType::kAssign) &&
         value <= static_cast<uint8_t>(FrameType::kHealth);
}

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kAssign:
      return "assign";
    case FrameType::kAssignAck:
      return "assign_ack";
    case FrameType::kGetModel:
      return "get_model";
    case FrameType::kModel:
      return "model";
    case FrameType::kError:
      return "error";
    case FrameType::kAssess:
      return "assess";
    case FrameType::kPartial:
      return "partial";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kShutdownAck:
      return "shutdown_ack";
    case FrameType::kStatsRequest:
      return "stats_request";
    case FrameType::kStats:
      return "stats";
    case FrameType::kScopeRequest:
      return "scope_request";
    case FrameType::kScopeResponse:
      return "scope_response";
    case FrameType::kHealth:
      return "health";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  PutU16(out, kFrameVersion);
  out.push_back(static_cast<char>(type));
  out.push_back('\0');  // flags, reserved
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU64(out, Fnv1a64(payload));
  out.append(payload);
  return out;
}

Result<FrameHeader> ParseFrameHeader(std::string_view header) {
  if (header.size() != kFrameHeaderSize) {
    return Status::InvalidArgument(
        StrFormat("frame header is %zu bytes, want %zu", header.size(),
                  kFrameHeaderSize));
  }
  if (header.compare(0, sizeof(kMagic),
                     std::string_view(kMagic, sizeof(kMagic))) != 0) {
    return Status::InvalidArgument("bad frame magic");
  }
  const uint16_t version = GetU16(header, 4);
  if (version < kMinFrameVersion || version > kFrameVersion) {
    return Status::InvalidArgument(StrFormat(
        "frame version %u, this build speaks %u..%u (version-skewed peer?)",
        version, kMinFrameVersion, kFrameVersion));
  }
  const uint8_t type = static_cast<uint8_t>(header[6]);
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument(StrFormat("unknown frame type %u", type));
  }
  if (header[7] != '\0') {
    return Status::InvalidArgument("nonzero frame flags");
  }
  FrameHeader parsed;
  parsed.type = static_cast<FrameType>(type);
  parsed.version = version;
  parsed.payload_len = GetU32(header, 8);
  if (parsed.payload_len > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrFormat("frame payload of %u bytes exceeds the %u byte cap",
                  parsed.payload_len, kMaxFramePayload));
  }
  parsed.checksum = GetU64(header, 12);
  return parsed;
}

Result<Frame> DecodeFrame(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::InvalidArgument(
        StrFormat("frame truncated inside the header: %zu of %zu bytes",
                  bytes.size(), kFrameHeaderSize));
  }
  Result<FrameHeader> header =
      ParseFrameHeader(bytes.substr(0, kFrameHeaderSize));
  if (!header.ok()) return header.status();
  const std::string_view body = bytes.substr(kFrameHeaderSize);
  if (body.size() < header->payload_len) {
    return Status::InvalidArgument(
        StrFormat("frame truncated inside the payload: %zu of %u bytes",
                  body.size(), header->payload_len));
  }
  if (body.size() > header->payload_len) {
    return Status::InvalidArgument(StrFormat(
        "%zu bytes of trailing garbage after the frame payload",
        body.size() - header->payload_len));
  }
  if (Fnv1a64(body) != header->checksum) {
    return Status::InvalidArgument("frame payload checksum mismatch");
  }
  Frame frame;
  frame.type = header->type;
  frame.payload.assign(body);
  return frame;
}

}  // namespace colscope::net
