#ifndef COLSCOPE_NET_PROTOCOL_H_
#define COLSCOPE_NET_PROTOCOL_H_

#include <map>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"
#include "exchange/exchange.h"
#include "net/socket.h"
#include "scoping/collaborative.h"

namespace colscope::net {

/// Distributed trace context carried on request frames (frame version
/// 2): the run-level trace id every process of one run shares, plus the
/// caller's span id so the callee's spans parent under the RPC span
/// that caused them. All-zero means "untraced" — the codec treats the
/// fields as optional, so version-1 peers interoperate.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

/// Everything a worker needs to act in one distributed run, shipped in
/// the kAssign frame: which schemas it owns (and must fit + publish),
/// where every other schema's owner listens, and the exchange discipline
/// (retry, degradation policy, socket-level fault injection) the whole
/// run agreed on. Text encoded, line oriented, hardened like
/// scoping/model_io.h.
struct AssignConfig {
  size_t num_schemas = 0;
  /// Explained-variance target v of Algorithm 1.
  double v = 0.8;
  scoping::DegradedOptions degraded;
  exchange::RetryPolicy retry;
  /// Socket-level fault injection profile applied by *serving* workers
  /// (see TcpTransport); seed included so runs reproduce.
  FaultProfile faults;
  /// Schema indices this worker owns (fits, publishes, assesses).
  std::vector<int> shard;
  /// Owning worker endpoint of every schema index.
  std::map<int, Endpoint> owners;
  /// Trace context of the coordinator's rpc.assign span (optional
  /// "trace" line; absent from v1 payloads).
  TraceContext trace;
};

std::string EncodeAssign(const AssignConfig& config);
Result<AssignConfig> DecodeAssign(const std::string& payload);

/// kGetModel payload: which publisher's model, on behalf of which
/// consumer, on which (0-based) retry attempt — the triple the
/// deterministic fault injector keys on.
struct GetModelRequest {
  int publisher = 0;
  int consumer = 0;
  int attempt = 0;
  /// Trace context of the caller's rpc.get_model span. Encoded as two
  /// trailing tokens only when the trace id is nonzero, so v1 payloads
  /// (4 tokens) decode unchanged.
  TraceContext trace;
};

std::string EncodeGetModel(const GetModelRequest& request);
Result<GetModelRequest> DecodeGetModel(const std::string& payload);

/// kAssess payload. The assessment round carried an empty payload
/// before frame version 2; an empty payload still decodes (to an
/// untraced request), which is the version-skew path.
struct AssessRequest {
  TraceContext trace;
};

std::string EncodeAssess(const AssessRequest& request);
Result<AssessRequest> DecodeAssess(const std::string& payload);

/// kError payload: "<status_code_name> <message>". Decoding an unknown
/// code yields kUnavailable (fail towards retry, not towards crash).
std::string EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(const std::string& payload);

/// One schema's combiner-style partial reduction: the |rows| keep bits
/// (already OR-reduced over every foreign model verdict at the worker)
/// instead of the |rows| x |models| verdict matrix — the memory-bounded
/// aggregation shape of Mimir-style MapReduce combiners.
struct ConsumerPartial {
  int consumer = 0;
  /// False when the degradation policy refused this schema (e.g. quorum
  /// unmet); `error` then carries the policy's message and `bits` is
  /// empty.
  bool ok = false;
  std::string error;
  /// Foreign models this consumer obtained.
  size_t arrived = 0;
  std::vector<bool> bits;
};

/// kPartial payload: per-consumer reduced masks plus the fetch
/// accounting records the coordinator folds into the DegradationReport.
struct PartialResult {
  std::vector<ConsumerPartial> consumers;
  std::vector<exchange::PeerFetchRecord> fetches;
};

std::string EncodePartial(const PartialResult& partial);
Result<PartialResult> DecodePartial(const std::string& payload);

}  // namespace colscope::net

#endif  // COLSCOPE_NET_PROTOCOL_H_
