#include "net/telemetry.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/strings.h"

namespace colscope::net {

namespace {

/// Caps mirroring the other hardened codecs: a hostile count must never
/// size an allocation, and one malicious worker must not balloon the
/// coordinator.
constexpr size_t kMaxMetricEntries = 8192;
constexpr size_t kMaxHistogramBounds = 64;
constexpr size_t kMaxTraceEvents = 65536;
constexpr size_t kMaxSpanArgs = 64;
constexpr size_t kMaxNameBytes = 4096;
constexpr size_t kMaxThreads = 4096;

bool ParseFiniteDouble(const std::string& token, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0' &&
         end != token.c_str() && std::isfinite(out);
}

bool ParseU64(const std::string& token, uint64_t& out) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(token.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

bool ParseI64(const std::string& token, long long& out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(token.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

Status Malformed(const char* what, const std::string& line) {
  return Status::InvalidArgument(
      StrFormat("malformed stats %s line: %s", what, line.c_str()));
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string EncodeStatsToken(const std::string& raw) {
  if (raw.empty()) return "%";
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    if (c <= 0x20 || c == '%' || c == 0x7f) {
      out += '%';
      out += hex[c >> 4];
      out += hex[c & 0xf];
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

Result<std::string> DecodeStatsToken(const std::string& token) {
  if (token == "%") return std::string();
  std::string out;
  out.reserve(token.size());
  for (size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out += token[i];
      continue;
    }
    if (i + 2 >= token.size()) {
      return Status::InvalidArgument("truncated %-escape in stats token");
    }
    const int hi = HexDigit(token[i + 1]);
    const int lo = HexDigit(token[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("bad %-escape in stats token");
    }
    out += static_cast<char>(hi << 4 | lo);
    i += 2;
  }
  return out;
}

std::string EncodeStats(const WorkerTelemetry& telemetry) {
  std::string out = "colscope-stats v1\n";
  out += StrFormat("trace_id %llu\n",
                   static_cast<unsigned long long>(telemetry.trace_id));
  for (size_t tid = 0; tid < telemetry.thread_names.size(); ++tid) {
    out += StrFormat("thread %zu %s\n", tid,
                     EncodeStatsToken(telemetry.thread_names[tid]).c_str());
  }
  for (const auto& [name, value] : telemetry.metrics.counters) {
    out += StrFormat("counter %s %llu\n", EncodeStatsToken(name).c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : telemetry.metrics.gauges) {
    out += StrFormat("gauge %s %.17g\n", EncodeStatsToken(name).c_str(),
                     value);
  }
  for (const auto& [name, hist] : telemetry.metrics.histograms) {
    out += StrFormat("hist %s %llu %.17g %zu", EncodeStatsToken(name).c_str(),
                     static_cast<unsigned long long>(hist.total_count),
                     hist.sum, hist.upper_bounds.size());
    for (double bound : hist.upper_bounds) out += StrFormat(" %.17g", bound);
    for (uint64_t count : hist.counts) {
      out += StrFormat(" %llu", static_cast<unsigned long long>(count));
    }
    out += '\n';
  }
  for (const obs::TraceEvent& event : telemetry.events) {
    out += StrFormat("event %s %.17g %.17g %d %llu %llu %zu",
                     EncodeStatsToken(event.name).c_str(), event.ts_us,
                     event.dur_us, event.tid,
                     static_cast<unsigned long long>(event.span_id),
                     static_cast<unsigned long long>(event.parent_span_id),
                     event.args.size());
    for (const auto& [key, value] : event.args) {
      out += StrFormat(" %s %lld", EncodeStatsToken(key).c_str(), value);
    }
    out += '\n';
  }
  out += "end\n";
  return out;
}

Result<WorkerTelemetry> DecodeStats(const std::string& payload) {
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != "colscope-stats v1") {
    return Status::InvalidArgument("bad stats header: " + line);
  }
  WorkerTelemetry telemetry;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    const std::vector<std::string> tokens = SplitString(line, " \t");
    if (tokens.empty()) return Malformed("stats", line);
    if (tokens[0] == "trace_id" && tokens.size() == 2) {
      if (!ParseU64(tokens[1], telemetry.trace_id)) {
        return Malformed("trace_id", line);
      }
    } else if (tokens[0] == "thread" && tokens.size() == 3) {
      uint64_t tid = 0;
      if (!ParseU64(tokens[1], tid) || tid >= kMaxThreads ||
          tid != telemetry.thread_names.size() ||
          tokens[2].size() > kMaxNameBytes) {
        return Malformed("thread", line);
      }
      Result<std::string> name = DecodeStatsToken(tokens[2]);
      if (!name.ok()) return name.status();
      telemetry.thread_names.push_back(std::move(name).value());
    } else if (tokens[0] == "counter" && tokens.size() == 3) {
      uint64_t value = 0;
      if (tokens[1].size() > kMaxNameBytes || !ParseU64(tokens[2], value) ||
          telemetry.metrics.counters.size() >= kMaxMetricEntries) {
        return Malformed("counter", line);
      }
      Result<std::string> name = DecodeStatsToken(tokens[1]);
      if (!name.ok()) return name.status();
      telemetry.metrics.counters.emplace_back(std::move(name).value(), value);
    } else if (tokens[0] == "gauge" && tokens.size() == 3) {
      double value = 0.0;
      if (tokens[1].size() > kMaxNameBytes ||
          !ParseFiniteDouble(tokens[2], value) ||
          telemetry.metrics.gauges.size() >= kMaxMetricEntries) {
        return Malformed("gauge", line);
      }
      Result<std::string> name = DecodeStatsToken(tokens[1]);
      if (!name.ok()) return name.status();
      telemetry.metrics.gauges.emplace_back(std::move(name).value(), value);
    } else if (tokens[0] == "hist" && tokens.size() >= 5) {
      if (telemetry.metrics.histograms.size() >= kMaxMetricEntries ||
          tokens[1].size() > kMaxNameBytes) {
        return Malformed("hist", line);
      }
      Result<std::string> name = DecodeStatsToken(tokens[1]);
      if (!name.ok()) return name.status();
      obs::Histogram::Snapshot hist;
      uint64_t bounds = 0;
      if (!ParseU64(tokens[2], hist.total_count) ||
          !ParseFiniteDouble(tokens[3], hist.sum) ||
          !ParseU64(tokens[4], bounds) || bounds > kMaxHistogramBounds) {
        return Malformed("hist", line);
      }
      // nbounds finite edges followed by nbounds+1 bucket counts.
      if (tokens.size() != 5 + bounds + bounds + 1) {
        return Malformed("hist", line);
      }
      hist.upper_bounds.reserve(bounds);
      for (size_t i = 0; i < bounds; ++i) {
        double edge = 0.0;
        if (!ParseFiniteDouble(tokens[5 + i], edge)) {
          return Malformed("hist bound", line);
        }
        hist.upper_bounds.push_back(edge);
      }
      hist.counts.reserve(bounds + 1);
      for (size_t i = 0; i <= bounds; ++i) {
        uint64_t count = 0;
        if (!ParseU64(tokens[5 + bounds + i], count)) {
          return Malformed("hist count", line);
        }
        hist.counts.push_back(count);
      }
      telemetry.metrics.histograms.emplace_back(std::move(name).value(),
                                                std::move(hist));
    } else if (tokens[0] == "event" && tokens.size() >= 8) {
      if (telemetry.events.size() >= kMaxTraceEvents ||
          tokens[1].size() > kMaxNameBytes) {
        return Malformed("event", line);
      }
      Result<std::string> name = DecodeStatsToken(tokens[1]);
      if (!name.ok()) return name.status();
      obs::TraceEvent event;
      event.name = std::move(name).value();
      long long tid = 0;
      uint64_t args = 0;
      if (!ParseFiniteDouble(tokens[2], event.ts_us) ||
          !ParseFiniteDouble(tokens[3], event.dur_us) ||
          !ParseI64(tokens[4], tid) || tid < 0 ||
          tid >= static_cast<long long>(kMaxThreads) ||
          !ParseU64(tokens[5], event.span_id) ||
          !ParseU64(tokens[6], event.parent_span_id) ||
          !ParseU64(tokens[7], args) || args > kMaxSpanArgs) {
        return Malformed("event", line);
      }
      event.tid = static_cast<int>(tid);
      if (tokens.size() != 8 + 2 * args) return Malformed("event", line);
      event.args.reserve(args);
      for (size_t i = 0; i < args; ++i) {
        const std::string& key_token = tokens[8 + 2 * i];
        if (key_token.size() > kMaxNameBytes) return Malformed("event", line);
        Result<std::string> key = DecodeStatsToken(key_token);
        if (!key.ok()) return key.status();
        long long value = 0;
        if (!ParseI64(tokens[9 + 2 * i], value)) {
          return Malformed("event arg", line);
        }
        event.args.emplace_back(std::move(key).value(), value);
      }
      telemetry.events.push_back(std::move(event));
    } else {
      return Malformed("stats", line);
    }
  }
  if (!saw_end) {
    return Status::InvalidArgument("stats payload missing end marker");
  }
  return telemetry;
}

}  // namespace colscope::net
