#ifndef COLSCOPE_NET_COORDINATOR_H_
#define COLSCOPE_NET_COORDINATOR_H_

#include <optional>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injector.h"
#include "common/status.h"
#include "exchange/exchange.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "net/telemetry.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"

namespace colscope::net {

struct CoordinatorOptions {
  /// One endpoint per live-launched worker process. Schemas are sharded
  /// round-robin: schema i belongs to workers[i % workers.size()].
  std::vector<Endpoint> workers;
  /// Explained-variance target v of Algorithm 1.
  double v = 0.8;
  scoping::DegradedOptions degraded;
  exchange::RetryPolicy retry;
  /// Socket-level fault injection applied by serving workers; the seed
  /// also drives the deterministic retry backoff.
  FaultProfile faults;
  NetOptions net;
};

/// Outcome of one distributed scoping run.
struct DistributedScopeResult {
  /// Keep-mask in signature row order, merged from the workers' partial
  /// reductions (and local re-executions of lost shards).
  std::vector<bool> keep;
  exchange::DegradationReport degradation;
  /// Worker list indices that failed assignment or died before
  /// delivering their partial result.
  std::vector<size_t> lost_workers;
  /// The effective assignment every worker received (shard map, owners,
  /// retry/fault/degradation config) — echoed into the JSON report so a
  /// degraded run is reproducible from the report alone.
  AssignConfig assign;
  /// Telemetry harvested (kStatsRequest -> kStats) from each worker
  /// after assessment, indexed like `options.workers`. A dead or
  /// unresponsive worker is a hole (nullopt), never an error: losing a
  /// worker's telemetry must not fail a run that already survived
  /// losing the worker itself.
  std::vector<std::optional<WorkerTelemetry>> telemetry;
};

/// Phase II + III across worker processes: shards the schemas
/// round-robin over `options.workers`, ships each worker its assignment
/// (kAssign), then asks each for its combiner-style partial reduction
/// (kAssess -> kPartial) — per-consumer keep bits instead of the
/// |rows| x |models| verdict matrix.
///
/// Workers that refuse assignment or die before answering are *lost*:
/// their consumers' assessments are re-executed at the coordinator
/// against the surviving workers' published models, so a lost peer
/// degrades the run exactly like an in-memory exchange whose fetches
/// from that peer all drop — the equivalence the quorum ctest pins,
/// byte for byte, against the `drop-from` fault profile.
///
/// Fails (like AssessAllSparse) when any consumer's degradation policy
/// refuses its arrivals — quorum unmet surfaces as Unavailable.
///
/// With a tracer in `options.net` every RPC round records an
/// rpc.assign/rpc.assess/rpc.stats span whose id rides the request
/// payload as the worker's parent span, client-side round trips feed
/// the net.rpc_ms.<type> histograms, and each round leaves one
/// flight-recorder event per worker (indices and status code names
/// only — reproducible bytes).
Result<DistributedScopeResult> DistributedScope(
    const scoping::SignatureSet& signatures, size_t num_schemas,
    const CoordinatorOptions& options,
    obs::MetricsRegistry* metrics = nullptr);

/// Best-effort kShutdown to every worker; errors are ignored (a dead
/// worker cannot be shut down twice).
void ShutdownWorkers(const std::vector<Endpoint>& workers,
                     const NetOptions& net);

}  // namespace colscope::net

#endif  // COLSCOPE_NET_COORDINATOR_H_
