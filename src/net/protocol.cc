#include "net/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/strings.h"

namespace colscope::net {

namespace {

/// Caps mirroring the hardened deserializers elsewhere in the repo: a
/// hostile count must never size an allocation.
constexpr size_t kMaxSchemas = 4096;
constexpr size_t kMaxRowsPerSchema = 1u << 20;
constexpr size_t kMaxFetchRecords = kMaxSchemas * 64;

bool ParseFiniteDouble(const std::string& token, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0' &&
         end != token.c_str() && std::isfinite(out);
}

bool ParseInt(const std::string& token, long long min, long long max,
              long long& out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(token.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0' && out >= min &&
         out <= max;
}

bool ParseUint64(const std::string& token, uint64_t& out) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(token.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

Result<FaultKind> FaultKindFromString(const std::string& name) {
  for (size_t kind = 0; kind < kNumFaultKinds; ++kind) {
    if (name == FaultKindToString(static_cast<FaultKind>(kind))) {
      return static_cast<FaultKind>(kind);
    }
  }
  return Status::InvalidArgument("unknown fault kind: " + name);
}

/// Splits one line into whitespace tokens.
std::vector<std::string> Tokens(const std::string& line) {
  return SplitString(line, " \t");
}

Status Malformed(const char* what, const std::string& line) {
  return Status::InvalidArgument(
      StrFormat("malformed %s line: %s", what, line.c_str()));
}

}  // namespace

std::string EncodeAssign(const AssignConfig& config) {
  std::string out = "colscope-assign v1\n";
  out += StrFormat("num_schemas %zu\n", config.num_schemas);
  out += StrFormat("v %.17g\n", config.v);
  out += StrFormat("policy %s %zu\n",
                   scoping::DegradedPolicyToString(config.degraded.policy),
                   config.degraded.quorum);
  out += StrFormat("retry %d %.17g %.17g %.17g %.17g %.17g\n",
                   config.retry.max_attempts, config.retry.initial_backoff_ms,
                   config.retry.backoff_multiplier, config.retry.max_backoff_ms,
                   config.retry.jitter, config.retry.deadline_ms);
  out += StrFormat(
      "faults %.17g %.17g %.17g %.17g %.17g %.17g %.17g %llu %d\n",
      config.faults.drop_probability, config.faults.delay_probability,
      config.faults.truncate_probability, config.faults.corrupt_probability,
      config.faults.stale_probability, config.faults.base_latency_ms,
      config.faults.delay_latency_ms,
      static_cast<unsigned long long>(config.faults.seed),
      config.faults.drop_from);
  // Optional line, like "trace" below: the fixed-width "faults" line
  // predates partitions, and v2 decoders require its exact token count,
  // so the new field rides its own line (omitted when unset) instead of
  // widening the existing one.
  if (config.faults.partition_from >= 0) {
    out += StrFormat("partition_from %d\n", config.faults.partition_from);
  }
  out += "shard";
  for (int index : config.shard) out += StrFormat(" %d", index);
  out += '\n';
  if (config.trace.trace_id != 0) {
    out += StrFormat("trace %llu %llu\n",
                     static_cast<unsigned long long>(config.trace.trace_id),
                     static_cast<unsigned long long>(config.trace.parent_span));
  }
  for (const auto& [index, endpoint] : config.owners) {
    out += StrFormat("owner %d %s\n", index, endpoint.ToString().c_str());
  }
  out += "end\n";
  return out;
}

Result<AssignConfig> DecodeAssign(const std::string& payload) {
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != "colscope-assign v1") {
    return Status::InvalidArgument("bad assign header: " + line);
  }
  AssignConfig config;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    const std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) return Malformed("assign", line);
    long long n = 0;
    if (tokens[0] == "num_schemas" && tokens.size() == 2) {
      if (!ParseInt(tokens[1], 2, static_cast<long long>(kMaxSchemas), n)) {
        return Malformed("num_schemas", line);
      }
      config.num_schemas = static_cast<size_t>(n);
    } else if (tokens[0] == "v" && tokens.size() == 2) {
      if (!ParseFiniteDouble(tokens[1], config.v) || config.v <= 0.0 ||
          config.v > 1.0) {
        return Malformed("v", line);
      }
    } else if (tokens[0] == "policy" && tokens.size() == 3) {
      Result<scoping::DegradedOptions> parsed =
          scoping::ParseDegradedPolicy(tokens[1]);
      if (!parsed.ok()) return parsed.status();
      config.degraded = *parsed;
      if (!ParseInt(tokens[2], 1, static_cast<long long>(kMaxSchemas), n)) {
        return Malformed("policy quorum", line);
      }
      config.degraded.quorum = static_cast<size_t>(n);
    } else if (tokens[0] == "retry" && tokens.size() == 7) {
      if (!ParseInt(tokens[1], 1, 1000, n)) return Malformed("retry", line);
      config.retry.max_attempts = static_cast<int>(n);
      if (!ParseFiniteDouble(tokens[2], config.retry.initial_backoff_ms) ||
          !ParseFiniteDouble(tokens[3], config.retry.backoff_multiplier) ||
          !ParseFiniteDouble(tokens[4], config.retry.max_backoff_ms) ||
          !ParseFiniteDouble(tokens[5], config.retry.jitter) ||
          !ParseFiniteDouble(tokens[6], config.retry.deadline_ms)) {
        return Malformed("retry", line);
      }
    } else if (tokens[0] == "faults" && tokens.size() == 10) {
      double* slots[] = {&config.faults.drop_probability,
                         &config.faults.delay_probability,
                         &config.faults.truncate_probability,
                         &config.faults.corrupt_probability,
                         &config.faults.stale_probability,
                         &config.faults.base_latency_ms,
                         &config.faults.delay_latency_ms};
      for (size_t i = 0; i < 7; ++i) {
        if (!ParseFiniteDouble(tokens[1 + i], *slots[i]) || *slots[i] < 0.0) {
          return Malformed("faults", line);
        }
      }
      if (!ParseUint64(tokens[8], config.faults.seed)) {
        return Malformed("faults seed", line);
      }
      if (!ParseInt(tokens[9], -1, static_cast<long long>(kMaxSchemas), n)) {
        return Malformed("faults drop-from", line);
      }
      config.faults.drop_from = static_cast<int>(n);
    } else if (tokens[0] == "partition_from" && tokens.size() == 2) {
      if (!ParseInt(tokens[1], -1, static_cast<long long>(kMaxSchemas), n)) {
        return Malformed("partition_from", line);
      }
      config.faults.partition_from = static_cast<int>(n);
    } else if (tokens[0] == "shard") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        if (!ParseInt(tokens[i], 0, static_cast<long long>(kMaxSchemas), n)) {
          return Malformed("shard", line);
        }
        config.shard.push_back(static_cast<int>(n));
      }
      if (config.shard.size() > kMaxSchemas) return Malformed("shard", line);
    } else if (tokens[0] == "trace" && tokens.size() == 3) {
      if (!ParseUint64(tokens[1], config.trace.trace_id) ||
          !ParseUint64(tokens[2], config.trace.parent_span)) {
        return Malformed("trace", line);
      }
    } else if (tokens[0] == "owner" && tokens.size() == 3) {
      if (!ParseInt(tokens[1], 0, static_cast<long long>(kMaxSchemas), n)) {
        return Malformed("owner", line);
      }
      Result<Endpoint> endpoint = ParseEndpoint(tokens[2]);
      if (!endpoint.ok()) return endpoint.status();
      if (config.owners.size() >= kMaxSchemas) {
        return Malformed("owner", line);
      }
      config.owners[static_cast<int>(n)] = std::move(endpoint).value();
    } else {
      return Malformed("assign", line);
    }
  }
  if (!saw_end) {
    return Status::InvalidArgument("assign payload missing end marker");
  }
  if (config.num_schemas == 0) {
    return Status::InvalidArgument("assign payload missing num_schemas");
  }
  if (config.owners.size() != config.num_schemas) {
    return Status::InvalidArgument(StrFormat(
        "assign names %zu owners for %zu schemas", config.owners.size(),
        config.num_schemas));
  }
  for (int index : config.shard) {
    if (static_cast<size_t>(index) >= config.num_schemas) {
      return Status::InvalidArgument(
          StrFormat("shard index %d out of range", index));
    }
  }
  return config;
}

std::string EncodeGetModel(const GetModelRequest& request) {
  std::string out = StrFormat("get %d %d %d", request.publisher,
                              request.consumer, request.attempt);
  if (request.trace.trace_id != 0) {
    out += StrFormat(" %llu %llu",
                     static_cast<unsigned long long>(request.trace.trace_id),
                     static_cast<unsigned long long>(request.trace.parent_span));
  }
  return out;
}

Result<GetModelRequest> DecodeGetModel(const std::string& payload) {
  const std::vector<std::string> tokens = Tokens(payload);
  long long publisher = 0, consumer = 0, attempt = 0;
  if ((tokens.size() != 4 && tokens.size() != 6) || tokens[0] != "get" ||
      !ParseInt(tokens[1], 0, static_cast<long long>(kMaxSchemas),
                publisher) ||
      !ParseInt(tokens[2], 0, static_cast<long long>(kMaxSchemas),
                consumer) ||
      !ParseInt(tokens[3], 0, 1000, attempt)) {
    return Malformed("get-model", payload);
  }
  GetModelRequest request;
  request.publisher = static_cast<int>(publisher);
  request.consumer = static_cast<int>(consumer);
  request.attempt = static_cast<int>(attempt);
  if (tokens.size() == 6) {
    if (!ParseUint64(tokens[4], request.trace.trace_id) ||
        !ParseUint64(tokens[5], request.trace.parent_span)) {
      return Malformed("get-model trace", payload);
    }
  }
  return request;
}

std::string EncodeAssess(const AssessRequest& request) {
  if (request.trace.trace_id == 0) return std::string();
  return StrFormat("assess %llu %llu",
                   static_cast<unsigned long long>(request.trace.trace_id),
                   static_cast<unsigned long long>(request.trace.parent_span));
}

Result<AssessRequest> DecodeAssess(const std::string& payload) {
  AssessRequest request;
  if (payload.empty()) return request;  // v1 assess frames: no payload.
  const std::vector<std::string> tokens = Tokens(payload);
  if (tokens.size() != 3 || tokens[0] != "assess" ||
      !ParseUint64(tokens[1], request.trace.trace_id) ||
      !ParseUint64(tokens[2], request.trace.parent_span)) {
    return Malformed("assess", payload);
  }
  return request;
}

std::string EncodeErrorPayload(const Status& status) {
  return StrFormat("%s %s", StatusCodeToString(status.code()),
                   status.message().c_str());
}

Status DecodeErrorPayload(const std::string& payload) {
  const size_t space = payload.find(' ');
  const std::string code_name =
      space == std::string::npos ? payload : payload.substr(0, space);
  const std::string message =
      space == std::string::npos ? "" : payload.substr(space + 1);
  for (int code = 1; code <= static_cast<int>(StatusCode::kOverloaded);
       ++code) {
    if (code_name == StatusCodeToString(static_cast<StatusCode>(code))) {
      return Status(static_cast<StatusCode>(code), message);
    }
  }
  return Status::Unavailable("peer error: " + payload);
}

std::string EncodePartial(const PartialResult& partial) {
  std::string out = "colscope-partial v1\n";
  out += StrFormat("consumers %zu\n", partial.consumers.size());
  out += StrFormat("fetches %zu\n", partial.fetches.size());
  for (const ConsumerPartial& consumer : partial.consumers) {
    if (consumer.ok) {
      std::string bits;
      bits.reserve(consumer.bits.size());
      for (bool bit : consumer.bits) bits += bit ? '1' : '0';
      out += StrFormat("consumer %d ok %zu %s\n", consumer.consumer,
                       consumer.arrived, bits.c_str());
    } else {
      out += StrFormat("consumer %d err %zu %s\n", consumer.consumer,
                       consumer.arrived, consumer.error.c_str());
    }
  }
  for (const exchange::PeerFetchRecord& fetch : partial.fetches) {
    std::string faults("-");
    for (size_t i = 0; i < fetch.faults.size(); ++i) {
      if (i == 0) faults.clear();
      if (i > 0) faults += ',';
      faults += FaultKindToString(fetch.faults[i]);
    }
    out += StrFormat("fetch %d %d %d %.17g %d %d %s %s\n", fetch.consumer,
                     fetch.publisher, fetch.attempts, fetch.elapsed_ms,
                     fetch.ok ? 1 : 0, fetch.skipped ? 1 : 0, faults.c_str(),
                     fetch.error.c_str());
  }
  out += "end\n";
  return out;
}

Result<PartialResult> DecodePartial(const std::string& payload) {
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != "colscope-partial v1") {
    return Status::InvalidArgument("bad partial header: " + line);
  }
  long long num_consumers = -1;
  long long num_fetches = -1;
  PartialResult partial;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    const std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) return Malformed("partial", line);
    long long n = 0;
    if (tokens[0] == "consumers" && tokens.size() == 2) {
      if (!ParseInt(tokens[1], 0, static_cast<long long>(kMaxSchemas),
                    num_consumers)) {
        return Malformed("consumers", line);
      }
    } else if (tokens[0] == "fetches" && tokens.size() == 2) {
      if (!ParseInt(tokens[1], 0, static_cast<long long>(kMaxFetchRecords),
                    num_fetches)) {
        return Malformed("fetches", line);
      }
    } else if (tokens[0] == "consumer" && tokens.size() >= 4) {
      ConsumerPartial consumer;
      if (!ParseInt(tokens[1], 0, static_cast<long long>(kMaxSchemas), n)) {
        return Malformed("consumer", line);
      }
      consumer.consumer = static_cast<int>(n);
      if (!ParseInt(tokens[3], 0,
                    static_cast<long long>(kMaxSchemas), n)) {
        return Malformed("consumer arrived", line);
      }
      consumer.arrived = static_cast<size_t>(n);
      if (tokens[2] == "ok") {
        consumer.ok = true;
        const std::string& bits = tokens.size() == 5 ? tokens[4] : line;
        if (tokens.size() != 5 || bits.size() > kMaxRowsPerSchema) {
          return Malformed("consumer bits", line);
        }
        consumer.bits.reserve(bits.size());
        for (char bit : bits) {
          if (bit != '0' && bit != '1') {
            return Malformed("consumer bits", line);
          }
          consumer.bits.push_back(bit == '1');
        }
      } else if (tokens[2] == "err") {
        consumer.ok = false;
        // The error message is everything after the fourth token.
        size_t at = line.find(tokens[3]);
        at = line.find(' ', at);
        consumer.error =
            at == std::string::npos ? "" : line.substr(at + 1);
      } else {
        return Malformed("consumer", line);
      }
      if (partial.consumers.size() >= kMaxSchemas) {
        return Malformed("consumer", line);
      }
      partial.consumers.push_back(std::move(consumer));
    } else if (tokens[0] == "fetch" && tokens.size() >= 8) {
      exchange::PeerFetchRecord fetch;
      long long consumer = 0, publisher = 0, attempts = 0, ok = 0,
                skipped = 0;
      if (!ParseInt(tokens[1], 0, static_cast<long long>(kMaxSchemas),
                    consumer) ||
          !ParseInt(tokens[2], 0, static_cast<long long>(kMaxSchemas),
                    publisher) ||
          !ParseInt(tokens[3], 0, 1000, attempts) ||
          !ParseFiniteDouble(tokens[4], fetch.elapsed_ms) ||
          !ParseInt(tokens[5], 0, 1, ok) ||
          !ParseInt(tokens[6], 0, 1, skipped)) {
        return Malformed("fetch", line);
      }
      fetch.consumer = static_cast<int>(consumer);
      fetch.publisher = static_cast<int>(publisher);
      fetch.attempts = static_cast<int>(attempts);
      fetch.ok = ok == 1;
      fetch.skipped = skipped == 1;
      if (tokens[7] != "-") {
        for (const std::string& name : SplitString(tokens[7], ",")) {
          Result<FaultKind> kind = FaultKindFromString(name);
          if (!kind.ok()) return kind.status();
          if (fetch.faults.size() >= 1000) return Malformed("fetch", line);
          fetch.faults.push_back(*kind);
        }
      }
      // The error message is everything after the faults token.
      size_t at = 0;
      for (int field = 0; field < 7 && at != std::string::npos; ++field) {
        at = line.find(' ', at + 1);
      }
      if (at != std::string::npos) fetch.error = line.substr(at + 1);
      if (partial.fetches.size() >= kMaxFetchRecords) {
        return Malformed("fetch", line);
      }
      partial.fetches.push_back(std::move(fetch));
    } else {
      return Malformed("partial", line);
    }
  }
  if (!saw_end) {
    return Status::InvalidArgument("partial payload missing end marker");
  }
  if (num_consumers < 0 ||
      partial.consumers.size() != static_cast<size_t>(num_consumers)) {
    return Status::InvalidArgument(StrFormat(
        "partial declares %lld consumers but carries %zu", num_consumers,
        partial.consumers.size()));
  }
  if (num_fetches < 0 ||
      partial.fetches.size() != static_cast<size_t>(num_fetches)) {
    return Status::InvalidArgument(
        StrFormat("partial declares %lld fetches but carries %zu",
                  num_fetches, partial.fetches.size()));
  }
  return partial;
}

}  // namespace colscope::net
