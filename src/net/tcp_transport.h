#ifndef COLSCOPE_NET_TCP_TRANSPORT_H_
#define COLSCOPE_NET_TCP_TRANSPORT_H_

#include <map>
#include <string>
#include <utility>

#include "common/fault_injector.h"
#include "exchange/transport.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "scoping/signatures.h"

namespace colscope::net {

/// ModelTransport over real POSIX sockets: each Fetch dials the worker
/// that owns `publisher`, sends one kGetModel frame, and reads back one
/// kModel (payload = the hardened text serialization, byte-identical to
/// what InMemoryTransport would hand over) or kError frame.
///
/// Failure classification mirrors the in-memory fault taxonomy so the
/// retry loop and DegradationReport treat both transports identically:
///   - connect refused / reset / closed before a response  -> kDrop
///   - frame truncated mid-payload                         -> kTruncate
///   - checksum mismatch (payload corrupted in flight)     -> kCorrupt
/// Payload-level truncation/corruption/staleness injected by the serving
/// worker arrives as an intact frame and — exactly like the in-memory
/// path — does not fail here; the receiver detects it by parsing.
///
/// Publishers owned by this process (a worker fetching a sibling shard's
/// model) are served through an embedded InMemoryTransport carrying the
/// run's FaultInjector, so local fetches draw from the *same*
/// deterministic fault stream as the equivalent single-process run —
/// the property the byte-identical report guarantee rests on.
///
/// latency_ms of remote fetches is always 0: the distributed clock is
/// real, not simulated, and real waits are enforced by the socket
/// timeouts in NetOptions. Local fetches report the injector's simulated
/// latency exactly like InMemoryTransport.
class TcpTransport : public exchange::ModelTransport {
 public:
  TcpTransport(std::map<int, Endpoint> owners, FaultInjector injector,
               NetOptions options)
      : owners_(std::move(owners)),
        local_(std::move(injector)),
        options_(options) {}

  /// Registers a publisher owned by this process: subsequent fetches of
  /// `publisher` are served locally (its bytes never cross a socket).
  Status Publish(int publisher, std::string payload) override;

  /// Remote fetches additionally record an "rpc.get_model" span on the
  /// options' tracer (carrying the run trace context on the wire so the
  /// serving worker can parent under it), observe net.rpc_ms.get_model,
  /// and leave one flight-recorder "fetch" event per attempt.
  exchange::FetchResponse Fetch(int publisher, int consumer,
                                int attempt) const override;

 private:
  /// The socket round trip of one remote fetch; `parent_span` rides the
  /// kGetModel payload as this side's trace context.
  exchange::FetchResponse FetchRemote(const Endpoint& owner, int publisher,
                                      int consumer, int attempt,
                                      uint64_t parent_span) const;

  std::map<int, Endpoint> owners_;
  std::map<int, bool> local_publishers_;
  exchange::InMemoryTransport local_;
  NetOptions options_;
};

/// One consumer's side of the distributed exchange + assessment: fetches
/// every foreign model (publishers ascending, own schema skipped) over
/// `transport` with the run's retry discipline, appends one
/// PeerFetchRecord per publisher to `fetches`, and reduces whatever
/// arrived to keep bits under `degraded` — the combiner-style partial
/// a worker ships in kPartial, and the exact loop the coordinator
/// re-executes locally for a lost worker's consumers.
ConsumerPartial AssessConsumerOverTransport(
    const scoping::SignatureSet& signatures, int consumer,
    size_t num_schemas, const exchange::ModelTransport& transport,
    const exchange::RetryPolicy& retry, uint64_t backoff_seed,
    const scoping::DegradedOptions& degraded,
    std::vector<exchange::PeerFetchRecord>& fetches,
    obs::MetricsRegistry* metrics = nullptr,
    const CancellationToken* cancel = nullptr);

}  // namespace colscope::net

#endif  // COLSCOPE_NET_TCP_TRANSPORT_H_
