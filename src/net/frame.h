#ifndef COLSCOPE_NET_FRAME_H_
#define COLSCOPE_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace colscope::net {

/// Message kinds of the coordinator/worker protocol (docs/DISTRIBUTED.md).
/// Values are part of the wire format — append, never renumber.
enum class FrameType : uint8_t {
  kAssign = 1,       ///< coordinator -> worker: shard + exchange config.
  kAssignAck = 2,    ///< worker -> coordinator: models fitted + published.
  kGetModel = 3,     ///< any -> worker: fetch one published model.
  kModel = 4,        ///< worker -> caller: a serialized LocalModel.
  kError = 5,        ///< worker -> caller: "<status_code> <message>".
  kAssess = 6,       ///< coordinator -> worker: run phase III on the shard.
  kPartial = 7,      ///< worker -> coordinator: partial keep-mask + records.
  kShutdown = 8,      ///< coordinator -> worker: exit after acking.
  kShutdownAck = 9,   ///< worker -> coordinator: goodbye.
  kStatsRequest = 10, ///< coordinator -> worker: hand over your telemetry.
  kStats = 11,        ///< worker -> coordinator: serialized WorkerTelemetry.
  kScopeRequest = 12, ///< client -> colscoped: run a scoping/matching job.
  kScopeResponse = 13,///< colscoped -> client: the pipeline's JSON report.
  kHealth = 14,       ///< both ways: empty = probe, non-empty = health info.
};

/// True for values that map onto a FrameType member.
bool IsKnownFrameType(uint8_t value);

/// Stable lowercase label for metric names and flight-recorder lines
/// ("assign", "get_model", "stats", ...); "unknown" for values outside
/// the enum.
const char* FrameTypeToString(FrameType type);

/// The version this build emits. Version 2 (PR 7) added the optional
/// trace-context fields to the assign/get-model/assess payload codecs
/// and the kStatsRequest/kStats telemetry frames.
inline constexpr uint16_t kFrameVersion = 2;

/// Oldest version this build still accepts. Version-1 peers simply
/// never send trace context or stats frames, and every v2 payload codec
/// treats the trace fields as optional — so a mid-upgrade fleet (stale
/// worker binary behind a new coordinator, or vice versa) degrades to
/// untraced RPCs instead of failing. Frames outside
/// [kMinFrameVersion, kFrameVersion] are rejected before their payload
/// is read.
inline constexpr uint16_t kMinFrameVersion = 1;

/// Fixed frame header size in bytes: magic(4) + version(2) + type(1) +
/// flags(1) + payload_len(4) + fnv1a64(payload)(8).
inline constexpr size_t kFrameHeaderSize = 20;

/// Hard cap on one frame's payload. Anything larger is rejected from the
/// header alone — a hostile or corrupt length field never triggers the
/// allocation. Serialized model sets are tens of KB; 16 MiB is generous.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

/// One decoded protocol message.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Validated header of a frame whose payload has not been read yet.
struct FrameHeader {
  FrameType type = FrameType::kError;
  /// Wire version the peer spoke, within [kMinFrameVersion,
  /// kFrameVersion]. Codecs use it only for diagnostics — optional
  /// fields make v1 payloads decode as-is.
  uint16_t version = kFrameVersion;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
};

/// Encodes `payload` into a wire frame: header (little-endian fixed
/// layout, FNV-1a 64 checksum of the payload) followed by the payload
/// bytes. Byte-deterministic for identical inputs.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Parses and validates exactly kFrameHeaderSize header bytes: magic,
/// version, known type, and payload_len <= kMaxFramePayload. Rejecting
/// happens before any payload allocation.
Result<FrameHeader> ParseFrameHeader(std::string_view header);

/// Decodes one complete frame from `bytes`: header validation, exact
/// length match (no truncation, no trailing garbage), checksum match.
/// The error message names what was wrong; no outcome allocates more
/// than `bytes.size()` bytes.
Result<Frame> DecodeFrame(std::string_view bytes);

}  // namespace colscope::net

#endif  // COLSCOPE_NET_FRAME_H_
