#ifndef COLSCOPE_NET_WORKER_H_
#define COLSCOPE_NET_WORKER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "scoping/signatures.h"

namespace colscope::net {

struct WorkerOptions {
  /// Address to listen on; port 0 binds an ephemeral port (the
  /// collision-free choice for tests) — port() reports the real one.
  Endpoint listen;
  /// When nonempty, the chosen port is written here (tmp file + rename,
  /// so a polling harness never reads a half-written value).
  std::string port_file;
  /// Test hook: raise(SIGKILL) immediately after acknowledging kAssign —
  /// the deterministic "worker dies mid-exchange" scenario the quorum
  /// ctest drives.
  bool crash_after_assign = false;
  /// Socket discipline for every serving and fetching operation.
  NetOptions net;
};

/// One worker process of a distributed scoping run. Serves, in a
/// thread-per-connection accept loop (so sibling workers' model fetches
/// proceed while an assessment is in flight):
///   kAssign   -> fit + publish the assigned shard's models, ack
///   kGetModel -> serve a published model, subject to the run's
///                socket-level FaultInjector (drop = close without
///                responding, truncate = send a strict prefix of the
///                encoded frame, corrupt = flip a payload byte under an
///                honest checksum, delay = sleep before responding,
///                stale = serve the oldest published version)
///   kAssess   -> fetch foreign models for each owned consumer via
///                TcpTransport + FetchModelWithRetry, reduce to per-
///                consumer keep bits, reply kPartial
///   kStatsRequest -> reply kStats with the serialized MetricsSnapshot,
///                trace buffer, and thread names (the coordinator's
///                pre-shutdown telemetry harvest; see net/telemetry.h)
///   kShutdown -> ack and stop serving
/// Wiring a tracer into WorkerOptions::net makes the assign/assess
/// handlers record spans parented (via the frame trace context) under
/// the coordinator's RPC spans; the get-model/stats/shutdown handlers
/// never touch the tracer so concurrent fetches cannot perturb the
/// deterministic trace.
/// Every signature row stays local: only fitted models and reduced keep
/// bits cross the wire, mirroring the paper's collaboration contract.
class WorkerServer {
 public:
  /// Opaque shared worker state; public only so the connection threads
  /// in worker.cc can name it.
  struct State;

  /// Binds the listener (and writes the port file). `signatures` must
  /// outlive the server; the worker fits and assesses only the schemas
  /// later assigned to it.
  static Result<WorkerServer> Create(const scoping::SignatureSet* signatures,
                                     WorkerOptions options);

  WorkerServer(WorkerServer&&) = default;
  WorkerServer& operator=(WorkerServer&&) = default;

  uint16_t port() const;

  /// Accept loop; returns after a kShutdown frame (or a fatal listener
  /// error), once every in-flight connection thread has been joined.
  Status Serve();

  /// Makes Serve() return from another thread; pending connections
  /// finish first.
  void RequestStop();

 private:
  WorkerServer() = default;

  std::shared_ptr<State> state_;
};

}  // namespace colscope::net

#endif  // COLSCOPE_NET_WORKER_H_
