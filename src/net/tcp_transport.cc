#include "net/tcp_transport.h"

#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace colscope::net {

using exchange::FetchResponse;

namespace {

/// One flight-recorder line per remote fetch outcome. Details carry
/// schema indices and status code names only (never endpoints or
/// durations) so deterministic runs dump identical bytes.
void RecordFetchFlight(int publisher, int consumer, int attempt,
                       const Status& status) {
  obs::FlightRecorder::Global().Record(
      "fetch", StrFormat("get_model publisher=%d consumer=%d attempt=%d %s",
                         publisher, consumer, attempt,
                         status.ok() ? "ok"
                                     : StatusCodeToString(status.code())));
}

}  // namespace

Status TcpTransport::Publish(int publisher, std::string payload) {
  local_publishers_[publisher] = true;
  return local_.Publish(publisher, std::move(payload));
}

FetchResponse TcpTransport::Fetch(int publisher, int consumer,
                                  int attempt) const {
  if (local_publishers_.count(publisher) > 0) {
    return local_.Fetch(publisher, consumer, attempt);
  }

  const auto owner = owners_.find(publisher);
  if (owner == owners_.end()) {
    // No process claims this schema: permanent, like an unpublished
    // in-memory model. Not an RPC, so no span or flight event.
    FetchResponse response;
    response.status = Status::NotFound(
        StrFormat("no worker owns schema %d", publisher));
    return response;
  }

  obs::ScopedSpan span(options_.tracer, "rpc.get_model");
  span.AddArg("publisher", publisher);
  span.AddArg("consumer", consumer);
  span.AddArg("attempt", attempt);
  const double start_ms = NetNowMs(options_);
  FetchResponse response =
      FetchRemote(owner->second, publisher, consumer, attempt, span.id());
  ObserveRpcLatency(options_, FrameType::kGetModel,
                    NetNowMs(options_) - start_ms);
  RecordFetchFlight(publisher, consumer, attempt, response.status);
  return response;
}

FetchResponse TcpTransport::FetchRemote(const Endpoint& owner, int publisher,
                                        int consumer, int attempt,
                                        uint64_t parent_span) const {
  FetchResponse response;
  Result<Socket> socket = Socket::Connect(owner, options_);
  if (!socket.ok()) {
    // Refused / unreachable / reset reads as a dropped payload; cancel
    // and run-deadline outcomes keep their codes so the retry loop stops
    // instead of burning attempts.
    response.status = socket.status();
    if (socket.status().code() == StatusCode::kUnavailable) {
      response.fault = FaultKind::kDrop;
    }
    return response;
  }

  GetModelRequest request;
  request.publisher = publisher;
  request.consumer = consumer;
  request.attempt = attempt;
  if (options_.tracer != nullptr) {
    request.trace.trace_id = options_.tracer->trace_id();
    request.trace.parent_span = parent_span;
  }
  Status sent = socket->SendFrame(FrameType::kGetModel,
                                  EncodeGetModel(request), options_);
  if (!sent.ok()) {
    response.status = std::move(sent);
    if (response.status.code() == StatusCode::kUnavailable) {
      response.fault = FaultKind::kDrop;
    }
    return response;
  }

  Result<Frame> frame = socket->RecvFrame(options_);
  if (!frame.ok()) {
    response.status = frame.status();
    switch (frame.status().code()) {
      case StatusCode::kUnavailable: {
        // Peer closed the connection. Nothing arrived at all -> the
        // response was dropped; some frame bytes arrived -> the frame
        // was truncated mid-wire.
        const std::string& message = frame.status().message();
        const bool nothing_arrived =
            message.find(StrFormat("connection closed after 0 of %zu",
                                   kFrameHeaderSize)) != std::string::npos;
        response.fault =
            nothing_arrived ? FaultKind::kDrop : FaultKind::kTruncate;
        break;
      }
      case StatusCode::kInvalidArgument:
        // Header parsed but the payload failed validation: a corrupt
        // frame if the checksum disagreed, a truncated one otherwise.
        response.fault =
            frame.status().message().find("checksum") != std::string::npos
                ? FaultKind::kCorrupt
                : FaultKind::kTruncate;
        break;
      case StatusCode::kDeadlineExceeded:
        // The connection was accepted and the request sent, but no reply
        // byte arrived inside the io timeout — the partition signature.
        // When the *run* deadline is the one that fired, keep
        // DeadlineExceeded so the retry loop stops; a per-frame stall
        // with run budget left is remapped to Unavailable, which the
        // retry loop treats as transient (and quorum can absorb).
        if (options_.deadline.infinite() || !options_.deadline.expired()) {
          response.fault = FaultKind::kPartition;
          response.status = Status::Unavailable(
              StrFormat("no reply from the schema %d owner: %s (partitioned "
                        "peer?)",
                        publisher, frame.status().message().c_str()));
        }
        break;
      default:
        break;  // Cancelled carries no fault kind.
    }
    return response;
  }

  if (frame->type == FrameType::kError) {
    response.status = DecodeErrorPayload(frame->payload);
    if (response.status.code() == StatusCode::kUnavailable) {
      response.fault = FaultKind::kDrop;
    }
    return response;
  }
  if (frame->type != FrameType::kModel) {
    response.status = Status::InvalidArgument(
        StrFormat("expected a model frame, got type %u",
                  static_cast<unsigned>(frame->type)));
    return response;
  }

  // An intact frame may still carry a server-injected truncated, corrupt,
  // or stale payload — deliberately not failed here, matching
  // InMemoryTransport: the receiver detects it by parsing.
  response.status = Status::Ok();
  response.payload = std::move(frame->payload);
  return response;
}

ConsumerPartial AssessConsumerOverTransport(
    const scoping::SignatureSet& signatures, int consumer,
    size_t num_schemas, const exchange::ModelTransport& transport,
    const exchange::RetryPolicy& retry, uint64_t backoff_seed,
    const scoping::DegradedOptions& degraded,
    std::vector<exchange::PeerFetchRecord>& fetches,
    obs::MetricsRegistry* metrics, const CancellationToken* cancel) {
  std::vector<scoping::LocalModel> arrived;
  for (size_t p = 0; p < num_schemas; ++p) {
    const int publisher = static_cast<int>(p);
    if (publisher == consumer) continue;
    exchange::FetchOutcome outcome = exchange::FetchModelWithRetry(
        transport, publisher, consumer, retry, backoff_seed, metrics,
        cancel);
    exchange::PeerFetchRecord record;
    record.publisher = publisher;
    record.consumer = consumer;
    record.attempts = outcome.attempts;
    record.elapsed_ms = outcome.elapsed_ms;
    record.ok = outcome.status.ok();
    record.faults = std::move(outcome.faults);
    if (record.ok) {
      arrived.push_back(std::move(*outcome.model));
    } else {
      record.error = outcome.status.ToString();
    }
    fetches.push_back(std::move(record));
  }

  ConsumerPartial reduced;
  reduced.consumer = consumer;
  reduced.arrived = arrived.size();
  const size_t expected_peers = num_schemas > 0 ? num_schemas - 1 : 0;
  Result<std::vector<bool>> bits = scoping::AssessLinkabilityDegraded(
      signatures.SchemaSignatures(consumer), consumer, arrived,
      expected_peers, degraded);
  if (bits.ok()) {
    reduced.ok = true;
    reduced.bits = std::move(bits).value();
  } else {
    reduced.ok = false;
    reduced.error = bits.status().ToString();
  }
  return reduced;
}

}  // namespace colscope::net
