#ifndef COLSCOPE_NET_TELEMETRY_H_
#define COLSCOPE_NET_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace colscope::net {

/// Everything one worker hands back on a kStatsRequest: its full
/// MetricsSnapshot, its trace buffer (events in registration order, the
/// same order Tracer::Events() yields), the thread labels for the
/// merged Chrome trace, and the run trace id it was assigned. The
/// coordinator merges these into one trace (worker i under pid i+1) and
/// one `worker.<i>.*`-prefixed metrics block.
struct WorkerTelemetry {
  uint64_t trace_id = 0;
  obs::MetricsSnapshot metrics;
  std::vector<std::string> thread_names;
  std::vector<obs::TraceEvent> events;
};

/// kStats payload codec: line oriented and hardened like the other
/// protocol codecs ("colscope-stats v1" header, per-section caps, "end"
/// marker, no allocation sized by a hostile count). Metric, thread, span
/// and arg names are percent-encoded into single whitespace-free tokens,
/// so arbitrary bytes (spaces, newlines, quotes) survive the line
/// framing.
std::string EncodeStats(const WorkerTelemetry& telemetry);
Result<WorkerTelemetry> DecodeStats(const std::string& payload);

/// Token escaping used by the stats codec, exposed for tests: escapes
/// '%', bytes <= 0x20, and 0x7f as %XX; the empty string encodes as the
/// bare sentinel "%".
std::string EncodeStatsToken(const std::string& raw);
Result<std::string> DecodeStatsToken(const std::string& token);

}  // namespace colscope::net

#endif  // COLSCOPE_NET_TELEMETRY_H_
