#include "outlier/pca_oda.h"

#include "common/check.h"
#include "common/strings.h"
#include "linalg/pca.h"

namespace colscope::outlier {

std::string PcaDetector::name() const {
  return StrFormat("pca(v=%.2f)", explained_variance_);
}

linalg::Vector PcaDetector::Scores(const linalg::Matrix& signatures) const {
  Result<linalg::PcaModel> model =
      linalg::PcaModel::FitWithVariance(signatures, explained_variance_);
  COLSCOPE_CHECK_MSG(model.ok(), model.status().ToString().c_str());
  return model->ReconstructionErrors(signatures);
}

}  // namespace colscope::outlier
