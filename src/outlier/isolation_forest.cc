#include "outlier/isolation_forest.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"

namespace colscope::outlier {

namespace {

/// Average unsuccessful-search path length of a BST with n nodes — the
/// normalizer c(n) of the isolation-forest score.
double AveragePathLength(size_t n) {
  if (n <= 1) return 0.0;
  const double h = std::log(static_cast<double>(n - 1)) + 0.5772156649;
  return 2.0 * h - 2.0 * static_cast<double>(n - 1) / static_cast<double>(n);
}

/// One random isolation tree, built on a subsample, then used to compute
/// path lengths for all points. Nodes are stored in a flat vector.
class IsolationTree {
 public:
  IsolationTree(const linalg::Matrix& data,
                const std::vector<size_t>& sample, size_t max_depth,
                Rng& rng)
      : data_(data) {
    root_ = Build(sample, 0, max_depth, rng);
  }

  double PathLength(size_t row) const {
    int node = root_;
    double depth = 0.0;
    while (node >= 0 && nodes_[node].feature >= 0) {
      const Node& n = nodes_[node];
      node = data_(row, static_cast<size_t>(n.feature)) < n.split
                 ? n.left
                 : n.right;
      depth += 1.0;
    }
    if (node >= 0) depth += AveragePathLength(nodes_[node].count);
    return depth;
  }

 private:
  struct Node {
    int feature = -1;  // -1: leaf.
    double split = 0.0;
    int left = -1;
    int right = -1;
    size_t count = 0;  // Leaf population (external-node adjustment).
  };

  int Build(const std::vector<size_t>& sample, size_t depth,
            size_t max_depth, Rng& rng) {
    Node node;
    if (sample.size() <= 1 || depth >= max_depth) {
      node.count = sample.size();
      nodes_.push_back(node);
      return static_cast<int>(nodes_.size() - 1);
    }
    // Pick a feature with spread; give up after a few attempts (all
    // candidate features constant -> leaf).
    for (int attempt = 0; attempt < 8; ++attempt) {
      const size_t f = rng.NextBounded(data_.cols());
      double lo = data_(sample[0], f), hi = lo;
      for (size_t row : sample) {
        lo = std::min(lo, data_(row, f));
        hi = std::max(hi, data_(row, f));
      }
      if (hi <= lo) continue;
      const double split = lo + rng.NextDouble() * (hi - lo);
      std::vector<size_t> left, right;
      for (size_t row : sample) {
        (data_(row, f) < split ? left : right).push_back(row);
      }
      if (left.empty() || right.empty()) continue;
      node.feature = static_cast<int>(f);
      node.split = split;
      const int self = static_cast<int>(nodes_.size());
      nodes_.push_back(node);
      const int l = Build(left, depth + 1, max_depth, rng);
      const int r = Build(right, depth + 1, max_depth, rng);
      nodes_[self].left = l;
      nodes_[self].right = r;
      return self;
    }
    node.count = sample.size();
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }

  const linalg::Matrix& data_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace

std::string IsolationForestDetector::name() const {
  return StrFormat("iforest(t=%zu,psi=%zu)", options_.num_trees,
                   options_.subsample_size);
}

linalg::Vector IsolationForestDetector::Scores(
    const linalg::Matrix& signatures) const {
  const size_t n = signatures.rows();
  linalg::Vector scores(n, 0.0);
  if (n == 0) return scores;
  const size_t psi = std::max<size_t>(2, std::min(options_.subsample_size, n));
  const size_t max_depth =
      static_cast<size_t>(std::ceil(std::log2(static_cast<double>(psi)))) + 1;

  Rng rng(options_.seed);
  linalg::Vector path_sum(n, 0.0);
  for (size_t t = 0; t < options_.num_trees; ++t) {
    // Subsample without replacement (partial Fisher-Yates).
    std::vector<size_t> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = i;
    for (size_t i = 0; i < psi; ++i) {
      std::swap(ids[i], ids[i + rng.NextBounded(n - i)]);
    }
    ids.resize(psi);
    IsolationTree tree(signatures, ids, max_depth, rng);
    for (size_t i = 0; i < n; ++i) path_sum[i] += tree.PathLength(i);
  }
  const double c = AveragePathLength(psi);
  for (size_t i = 0; i < n; ++i) {
    const double mean_path =
        path_sum[i] / static_cast<double>(options_.num_trees);
    scores[i] = c > 0.0 ? std::pow(2.0, -mean_path / c) : 0.5;
  }
  return scores;
}

}  // namespace colscope::outlier
