#include "outlier/autoencoder.h"

#include "common/rng.h"
#include "common/strings.h"
#include "linalg/stats.h"
#include "nn/network.h"

namespace colscope::outlier {

std::string AutoencoderDetector::name() const {
  return StrFormat("autoencoder(x%d,e%d)", options_.ensemble_size,
                   options_.epochs);
}

linalg::Vector AutoencoderDetector::Scores(
    const linalg::Matrix& signatures) const {
  linalg::Vector scores(signatures.rows(), 0.0);
  if (signatures.rows() == 0) return scores;

  std::vector<size_t> dims;
  dims.push_back(signatures.cols());
  dims.insert(dims.end(), options_.hidden_dims.begin(),
              options_.hidden_dims.end());
  dims.push_back(signatures.cols());

  nn::TrainOptions train;
  train.epochs = options_.epochs;
  train.learning_rate = options_.learning_rate;
  train.batch_size = options_.batch_size;

  Rng seed_rng(options_.seed);
  for (int e = 0; e < options_.ensemble_size; ++e) {
    nn::Mlp net(dims, seed_rng.NextUint64());
    net.Fit(signatures, signatures, train);
    const linalg::Matrix reconstructed = net.Predict(signatures);
    const linalg::Vector errors =
        linalg::RowwiseMse(signatures, reconstructed);
    for (size_t i = 0; i < scores.size(); ++i) scores[i] += errors[i];
  }
  return scores;
}

}  // namespace colscope::outlier
