#ifndef COLSCOPE_OUTLIER_ODA_H_
#define COLSCOPE_OUTLIER_ODA_H_

#include <string>

#include "linalg/matrix.h"

namespace colscope::outlier {

/// Outlier detection algorithm (Section 2.4): assigns every row of a
/// signature matrix an outlier score. Higher score = more anomalous =
/// more likely unlinkable. Scores are comparable within one call only.
class OutlierDetector {
 public:
  virtual ~OutlierDetector() = default;

  /// Name used in reports ("z-score", "lof", "pca(v=0.5)", ...).
  virtual std::string name() const = 0;

  /// Scores every row of `signatures`.
  virtual linalg::Vector Scores(const linalg::Matrix& signatures) const = 0;
};

}  // namespace colscope::outlier

#endif  // COLSCOPE_OUTLIER_ODA_H_
