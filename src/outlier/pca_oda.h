#ifndef COLSCOPE_OUTLIER_PCA_ODA_H_
#define COLSCOPE_OUTLIER_PCA_ODA_H_

#include "outlier/oda.h"

namespace colscope::outlier {

/// PCA reconstruction-error ODA (Section 2.4): fits PCA on the full
/// signature set at an explained-variance level v and scores each row by
/// its reconstruction MSE. The paper evaluates v in {0.3, 0.5, 0.7} as
/// the global-scoping baseline.
class PcaDetector : public OutlierDetector {
 public:
  explicit PcaDetector(double explained_variance)
      : explained_variance_(explained_variance) {}

  std::string name() const override;
  linalg::Vector Scores(const linalg::Matrix& signatures) const override;

  double explained_variance() const { return explained_variance_; }

 private:
  double explained_variance_;
};

}  // namespace colscope::outlier

#endif  // COLSCOPE_OUTLIER_PCA_ODA_H_
