#ifndef COLSCOPE_OUTLIER_AUTOENCODER_H_
#define COLSCOPE_OUTLIER_AUTOENCODER_H_

#include <cstdint>
#include <vector>

#include "outlier/oda.h"

namespace colscope::outlier {

/// Configuration of the ensemble autoencoder baseline (Section 4.1):
/// a dense network input|100|10|100|input with ReLU hidden layers,
/// trained with Adam on the MSE reconstruction loss; `ensemble_size`
/// independently initialized networks are trained for `epochs` epochs
/// each and their per-row reconstruction errors are summed. The paper
/// uses ensemble_size=100, epochs=50; the benches default to a smaller
/// ensemble for single-core wall-clock (EXPERIMENTS.md documents both).
struct AutoencoderOptions {
  std::vector<size_t> hidden_dims = {100, 10, 100};
  int ensemble_size = 100;
  int epochs = 50;
  double learning_rate = 1e-3;
  size_t batch_size = 32;
  uint64_t seed = 0xae5eed;
};

/// Neural autoencoder ODA: outlier score = summed reconstruction MSE
/// across the ensemble.
class AutoencoderDetector : public OutlierDetector {
 public:
  explicit AutoencoderDetector(AutoencoderOptions options = {})
      : options_(options) {}

  std::string name() const override;
  linalg::Vector Scores(const linalg::Matrix& signatures) const override;

  const AutoencoderOptions& options() const { return options_; }

 private:
  AutoencoderOptions options_;
};

}  // namespace colscope::outlier

#endif  // COLSCOPE_OUTLIER_AUTOENCODER_H_
