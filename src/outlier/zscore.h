#ifndef COLSCOPE_OUTLIER_ZSCORE_H_
#define COLSCOPE_OUTLIER_ZSCORE_H_

#include "outlier/oda.h"

namespace colscope::outlier {

/// Z-score ODA: per-dimension standardized deviation from the column
/// mean, aggregated over dimensions by mean absolute z-value (the
/// SciPy-zscore-based baseline of Section 4.1). Complexity O(|S| |v|).
class ZScoreDetector : public OutlierDetector {
 public:
  std::string name() const override { return "z-score"; }
  linalg::Vector Scores(const linalg::Matrix& signatures) const override;
};

}  // namespace colscope::outlier

#endif  // COLSCOPE_OUTLIER_ZSCORE_H_
