#include "outlier/zscore.h"

#include <cmath>

#include "linalg/stats.h"

namespace colscope::outlier {

linalg::Vector ZScoreDetector::Scores(
    const linalg::Matrix& signatures) const {
  const linalg::Vector mean = linalg::ColumnMean(signatures);
  const linalg::Vector sd = linalg::ColumnStdDev(signatures, mean);
  linalg::Vector scores(signatures.rows(), 0.0);
  if (signatures.cols() == 0) return scores;
  for (size_t r = 0; r < signatures.rows(); ++r) {
    const double* row = signatures.RowPtr(r);
    double sum = 0.0;
    for (size_t c = 0; c < signatures.cols(); ++c) {
      if (sd[c] > 0.0) sum += std::fabs(row[c] - mean[c]) / sd[c];
    }
    scores[r] = sum / static_cast<double>(signatures.cols());
  }
  return scores;
}

}  // namespace colscope::outlier
