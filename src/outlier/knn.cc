#include "outlier/knn.h"

#include <algorithm>

#include "common/strings.h"
#include "linalg/stats.h"

namespace colscope::outlier {

std::string KnnDetector::name() const {
  return StrFormat("knn(k=%zu,%s)", k_,
                   aggregate_ == Aggregate::kMean ? "mean" : "max");
}

linalg::Vector KnnDetector::Scores(const linalg::Matrix& signatures) const {
  const size_t n = signatures.rows();
  linalg::Vector scores(n, 0.0);
  if (n <= 1) return scores;
  const size_t k = std::min(k_, n - 1);

  for (size_t i = 0; i < n; ++i) {
    linalg::Vector dist;
    dist.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dist.push_back(
          linalg::L2Distance(signatures.RowSpan(i), signatures.RowSpan(j)));
    }
    std::nth_element(dist.begin(), dist.begin() + static_cast<long>(k - 1),
                     dist.end());
    if (aggregate_ == Aggregate::kMax) {
      scores[i] = *std::max_element(dist.begin(),
                                    dist.begin() + static_cast<long>(k));
    } else {
      double sum = 0.0;
      for (size_t m = 0; m < k; ++m) sum += dist[m];
      scores[i] = sum / static_cast<double>(k);
    }
  }
  return scores;
}

}  // namespace colscope::outlier
