#ifndef COLSCOPE_OUTLIER_ISOLATION_FOREST_H_
#define COLSCOPE_OUTLIER_ISOLATION_FOREST_H_

#include <cstdint>

#include "outlier/oda.h"

namespace colscope::outlier {

/// Isolation Forest (Liu et al. 2008): ensemble of random isolation
/// trees; anomalous points isolate in fewer random splits. Scores are
/// the standard s(x, psi) = 2^(-E[h(x)] / c(psi)) in (0, 1), higher =
/// more anomalous. Deterministic for a fixed seed. Included as a
/// widely-used ODA the scoping baseline family can swap in.
struct IsolationForestOptions {
  size_t num_trees = 100;
  size_t subsample_size = 64;  ///< psi; clamped to the data size.
  uint64_t seed = 0x150f;
};

class IsolationForestDetector : public OutlierDetector {
 public:
  explicit IsolationForestDetector(IsolationForestOptions options = {})
      : options_(options) {}

  std::string name() const override;
  linalg::Vector Scores(const linalg::Matrix& signatures) const override;

 private:
  IsolationForestOptions options_;
};

}  // namespace colscope::outlier

#endif  // COLSCOPE_OUTLIER_ISOLATION_FOREST_H_
