#ifndef COLSCOPE_OUTLIER_KNN_H_
#define COLSCOPE_OUTLIER_KNN_H_

#include "outlier/oda.h"

namespace colscope::outlier {

/// k-nearest-neighbour distance ODA: an element's outlier score is its
/// (mean or max) distance to its k nearest neighbours in the unified
/// signature set — the classic distance-based detector family the
/// paper's related work builds on. O(|S|^2 |v|).
class KnnDetector : public OutlierDetector {
 public:
  enum class Aggregate { kMean, kMax };

  explicit KnnDetector(size_t k = 10, Aggregate aggregate = Aggregate::kMean)
      : k_(k), aggregate_(aggregate) {}

  std::string name() const override;
  linalg::Vector Scores(const linalg::Matrix& signatures) const override;

 private:
  size_t k_;
  Aggregate aggregate_;
};

}  // namespace colscope::outlier

#endif  // COLSCOPE_OUTLIER_KNN_H_
