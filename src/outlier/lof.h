#ifndef COLSCOPE_OUTLIER_LOF_H_
#define COLSCOPE_OUTLIER_LOF_H_

#include "outlier/oda.h"

namespace colscope::outlier {

/// Local Outlier Factor (Breunig et al., SIGMOD 2000) with the paper's
/// default neighborhood size n = 20 (sklearn's default). Scores are the
/// LOF values: ~1 for inliers, > 1 for local outliers. Complexity
/// O(|S|^2 |v|) for the pairwise distances.
class LofDetector : public OutlierDetector {
 public:
  explicit LofDetector(size_t num_neighbors = 20)
      : num_neighbors_(num_neighbors) {}

  std::string name() const override;
  linalg::Vector Scores(const linalg::Matrix& signatures) const override;

  size_t num_neighbors() const { return num_neighbors_; }

 private:
  size_t num_neighbors_;
};

}  // namespace colscope::outlier

#endif  // COLSCOPE_OUTLIER_LOF_H_
