#include "outlier/lof.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/strings.h"
#include "linalg/stats.h"

namespace colscope::outlier {

std::string LofDetector::name() const {
  return StrFormat("lof(n=%zu)", num_neighbors_);
}

linalg::Vector LofDetector::Scores(const linalg::Matrix& signatures) const {
  const size_t n = signatures.rows();
  linalg::Vector scores(n, 1.0);
  if (n <= 1) return scores;
  const size_t k = std::min(num_neighbors_, n - 1);

  // Pairwise distances.
  linalg::Matrix dist(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d = linalg::L2Distance(signatures.RowSpan(i),
                                          signatures.RowSpan(j));
      dist(i, j) = d;
      dist(j, i) = d;
    }
  }

  // k nearest neighbors and k-distance for every point.
  std::vector<std::vector<size_t>> neighbors(n);
  linalg::Vector k_distance(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    order.erase(order.begin() + static_cast<long>(i));
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return dist(i, a) < dist(i, b);
    });
    order.resize(k);
    neighbors[i] = order;
    k_distance[i] = dist(i, order.back());
  }

  // Local reachability density.
  linalg::Vector lrd(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double reach_sum = 0.0;
    for (size_t j : neighbors[i]) {
      reach_sum += std::max(k_distance[j], dist(i, j));
    }
    lrd[i] = reach_sum > 0.0 ? static_cast<double>(k) / reach_sum
                             : std::numeric_limits<double>::infinity();
  }

  // LOF = mean neighbor lrd / own lrd.
  for (size_t i = 0; i < n; ++i) {
    double ratio_sum = 0.0;
    for (size_t j : neighbors[i]) {
      if (std::isinf(lrd[i]) && std::isinf(lrd[j])) {
        ratio_sum += 1.0;  // Duplicate cluster: inlier by convention.
      } else if (std::isinf(lrd[i])) {
        ratio_sum += 0.0;
      } else {
        ratio_sum += lrd[j] / lrd[i];
      }
    }
    scores[i] = ratio_sum / static_cast<double>(k);
  }
  return scores;
}

}  // namespace colscope::outlier
