#ifndef COLSCOPE_EVAL_METRICS_H_
#define COLSCOPE_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace colscope::eval {

/// Binary confusion counts: positives are *linkable* elements.
struct Confusion {
  size_t true_positive = 0;
  size_t false_positive = 0;
  size_t true_negative = 0;
  size_t false_negative = 0;

  size_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
  double Accuracy() const;
  double Precision() const;  ///< 0 when no positive predictions.
  double Recall() const;     ///< 0 when no positive labels (TPR).
  double F1() const;
  double FalsePositiveRate() const;  ///< 0 when no negative labels.
};

/// Confusion matrix of predictions vs labels (sizes must match).
Confusion Evaluate(const std::vector<bool>& labels,
                   const std::vector<bool>& predictions);

}  // namespace colscope::eval

#endif  // COLSCOPE_EVAL_METRICS_H_
