#ifndef COLSCOPE_EVAL_BREAKDOWN_H_
#define COLSCOPE_EVAL_BREAKDOWN_H_

#include <map>
#include <utility>

#include "eval/matching_metrics.h"
#include "schema/schema_set.h"

namespace colscope::eval {

/// Per-schema-pair decomposition of a matching result: the multi-source
/// totals of EvaluateMatching split along the (unordered) schema-pair
/// axis, so the Oracle-MySQL / Oracle-HANA / MySQL-HANA contributions of
/// Table 3 can be inspected separately. Keys are (min, max) schema
/// indices; the Cartesian denominator per pair is tables x tables +
/// attributes x attributes of the ORIGINAL schemas.
std::map<std::pair<int, int>, MatchingQuality> EvaluateMatchingPerPair(
    const std::set<matching::ElementPair>& generated,
    const datasets::GroundTruth& truth, const schema::SchemaSet& set);

}  // namespace colscope::eval

#endif  // COLSCOPE_EVAL_BREAKDOWN_H_
