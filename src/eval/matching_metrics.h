#ifndef COLSCOPE_EVAL_MATCHING_METRICS_H_
#define COLSCOPE_EVAL_MATCHING_METRICS_H_

#include <set>

#include "datasets/linkage.h"
#include "matching/matcher.h"

namespace colscope::eval {

/// Matching-quality metrics of Section 4.2:
///   PQ (pair quality / precision)     = |A(S') ∩ L(S)| / |A(S')|
///   PC (pair completeness / recall)   = |A(S') ∩ L(S)| / |L(S)|
///   F1                                 = harmonic mean of PQ and PC
///   RR (reduction ratio)               = 1 - |A(S')| / Cartesian(S)
struct MatchingQuality {
  size_t generated = 0;       ///< |A(S')|.
  size_t true_linkages = 0;   ///< |A(S') ∩ L(S)|.
  size_t ground_truth = 0;    ///< |L(S)|.
  size_t cartesian = 0;       ///< Cartesian product size of the originals.

  double PairQuality() const;
  double PairCompleteness() const;
  double F1() const;
  double ReductionRatio() const;
};

/// Scores a generated candidate set against the annotated ground truth.
/// `cartesian` is the element-wise comparison count on the ORIGINAL
/// schemas (tables x tables + attributes x attributes summed over schema
/// pairs, i.e. Table 3).
MatchingQuality EvaluateMatching(
    const std::set<matching::ElementPair>& generated,
    const datasets::GroundTruth& truth, size_t cartesian);

}  // namespace colscope::eval

#endif  // COLSCOPE_EVAL_MATCHING_METRICS_H_
