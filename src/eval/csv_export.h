#ifndef COLSCOPE_EVAL_CSV_EXPORT_H_
#define COLSCOPE_EVAL_CSV_EXPORT_H_

#include <string>

#include "common/status.h"
#include "eval/curves.h"

namespace colscope::eval {

/// Renders a curve as CSV text with the given column headers.
std::string CurveToCsv(const Curve& curve, const std::string& x_name,
                       const std::string& y_name);

/// Renders a hyperparameter sweep as CSV (parameter + the four metrics).
std::string SweepToCsv(const std::vector<SweepPoint>& sweep,
                       const std::string& parameter_name);

/// Writes text to `path`, creating/overwriting the file.
Status WriteTextFile(const std::string& path, const std::string& text);

}  // namespace colscope::eval

#endif  // COLSCOPE_EVAL_CSV_EXPORT_H_
