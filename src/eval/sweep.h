#ifndef COLSCOPE_EVAL_SWEEP_H_
#define COLSCOPE_EVAL_SWEEP_H_

#include <vector>

#include "eval/curves.h"
#include "outlier/oda.h"
#include "scoping/signatures.h"

namespace colscope {
class ThreadPool;
}  // namespace colscope

namespace colscope::eval {

/// Uniform hyperparameter grid over (0, 1): {step, 2*step, ..., <= max}.
/// The paper sweeps p in (0..1) for scoping and v in (1..0) for
/// collaborative scoping; both use this grid (default 0.01 .. 0.99 plus
/// optionally 1.0 for p).
std::vector<double> ParameterGrid(double step = 0.01, double max = 0.99);

/// Scoping sweep: computes ODA scores once on the unified signature set
/// and evaluates the keep-p-portion rule at every grid value. A non-null
/// `pool` evaluates grid points in parallel; every point writes its own
/// slot, so the sweep is identical at any thread count.
std::vector<SweepPoint> ScopingSweep(const scoping::SignatureSet& signatures,
                                     const std::vector<bool>& labels,
                                     const outlier::OutlierDetector& detector,
                                     const std::vector<double>& grid,
                                     ThreadPool* pool = nullptr);

/// Same, but from precomputed outlier scores (lets callers reuse one
/// expensive scoring run, e.g. the autoencoder ensemble).
std::vector<SweepPoint> ScopingSweepFromScores(
    const std::vector<double>& scores, const std::vector<bool>& labels,
    const std::vector<double>& grid, ThreadPool* pool = nullptr);

/// Collaborative-scoping sweep: refits the local models and reruns the
/// distributed assessment at every explained-variance value v in `grid`
/// (in parallel across grid points when `pool` is non-null).
std::vector<SweepPoint> CollaborativeSweep(
    const scoping::SignatureSet& signatures, size_t num_schemas,
    const std::vector<bool>& labels, const std::vector<double>& grid,
    ThreadPool* pool = nullptr);

/// The four AUC summary scores of Table 4 (reported in percent).
struct AucReport {
  double auc_f1 = 0.0;
  double auc_roc = 0.0;
  double auc_roc_smoothed = 0.0;  ///< AUC-ROC' (monotone smoothed).
  double auc_pr = 0.0;
};

/// Report for a *scoping* method: AUC-F1 is the sweep-mean F1; ROC and
/// PR integrate the continuous outlier-score ranking (lower score =
/// linkable), as in the paper's use of sklearn-style estimators.
AucReport ReportForScoping(const std::vector<bool>& labels,
                           const std::vector<double>& scores,
                           const std::vector<SweepPoint>& sweep);

/// Report for *collaborative* scoping: every curve derives from the
/// per-v sweep points (there is no global score ranking); the ROC may
/// end below FPR = 100%, which AUC-ROC' compensates (Section 4.2).
AucReport ReportForCollaborative(const std::vector<SweepPoint>& sweep);

}  // namespace colscope::eval

#endif  // COLSCOPE_EVAL_SWEEP_H_
