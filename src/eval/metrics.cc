#include "eval/metrics.h"

#include "common/check.h"

namespace colscope::eval {

double Confusion::Accuracy() const {
  const size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(n);
}

double Confusion::Precision() const {
  const size_t predicted_positive = true_positive + false_positive;
  if (predicted_positive == 0) return 0.0;
  return static_cast<double>(true_positive) /
         static_cast<double>(predicted_positive);
}

double Confusion::Recall() const {
  const size_t positives = true_positive + false_negative;
  if (positives == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(positives);
}

double Confusion::F1() const {
  const double p = Precision();
  const double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double Confusion::FalsePositiveRate() const {
  const size_t negatives = false_positive + true_negative;
  if (negatives == 0) return 0.0;
  return static_cast<double>(false_positive) /
         static_cast<double>(negatives);
}

Confusion Evaluate(const std::vector<bool>& labels,
                   const std::vector<bool>& predictions) {
  COLSCOPE_CHECK(labels.size() == predictions.size());
  Confusion c;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] && predictions[i]) {
      ++c.true_positive;
    } else if (!labels[i] && predictions[i]) {
      ++c.false_positive;
    } else if (labels[i] && !predictions[i]) {
      ++c.false_negative;
    } else {
      ++c.true_negative;
    }
  }
  return c;
}

}  // namespace colscope::eval
