#ifndef COLSCOPE_EVAL_CURVES_H_
#define COLSCOPE_EVAL_CURVES_H_

#include <vector>

#include "eval/metrics.h"

namespace colscope::eval {

/// A 2-D curve as ordered points. ROC curves use x = FPR, y = TPR; PR
/// curves use x = recall, y = precision; parameter-sweep curves use
/// x = parameter value.
struct CurvePoint {
  double x = 0.0;
  double y = 0.0;
};
using Curve = std::vector<CurvePoint>;

/// Trapezoidal area under the curve after sorting points by x. Does NOT
/// normalize or extend the domain: a ROC curve whose FPR never reaches 1
/// integrates to less than the usual [0,1]-domain AUC — exactly the
/// penalty the paper discusses for collaborative scoping (Section 4.2).
double TrapezoidAuc(Curve curve);

/// Mean value of y over the x-span (trapezoid integral / span). Used for
/// AUC-F1 over a hyperparameter sweep, per the outlier-detection practice
/// the paper follows.
double MeanOverSweep(Curve curve);

/// The ROC' transformation of Section 4.2: sorts by x, takes the
/// monotone upper envelope (cumulative max of TPR), smooths it with a
/// centered moving-average spline approximation (our substitute for
/// SciPy splrep s=0.2, see DESIGN.md), and extends the final TPR to
/// x = 1 so families whose FPR never reaches 100% are comparable.
Curve SmoothRocCurve(Curve curve, int smoothing_window = 3);

/// ROC from continuous outlier scores, where LOWER score = predicted
/// linkable (positive). Sweeps every distinct threshold; returns points
/// from (0,0) to (1,1) ordered by FPR.
Curve RocFromScores(const std::vector<bool>& labels,
                    const std::vector<double>& scores);

/// Precision-recall curve from continuous outlier scores (lower =
/// positive), ordered by recall ascending.
Curve PrFromScores(const std::vector<bool>& labels,
                   const std::vector<double>& scores);

/// Average precision (AUC-PR) from scores via the step-wise integral
/// (the sklearn average_precision definition).
double AveragePrecisionFromScores(const std::vector<bool>& labels,
                                  const std::vector<double>& scores);

/// A parameter sweep point: the confusion at one hyperparameter value
/// (p for scoping, v for collaborative scoping).
struct SweepPoint {
  double parameter = 0.0;
  Confusion confusion;
};

/// Curves extracted from a sweep.
Curve F1Curve(const std::vector<SweepPoint>& sweep);
Curve PrecisionCurve(const std::vector<SweepPoint>& sweep);
Curve RecallCurve(const std::vector<SweepPoint>& sweep);
Curve AccuracyCurve(const std::vector<SweepPoint>& sweep);
/// ROC points (FPR, TPR) of each sweep entry, sorted by FPR.
Curve RocFromSweep(const std::vector<SweepPoint>& sweep);
/// PR points (recall, precision) of each sweep entry, sorted by recall.
Curve PrFromSweep(const std::vector<SweepPoint>& sweep);
/// AUC-PR of a sweep-derived PR curve (trapezoid over recall span).
double PrAucFromSweep(const std::vector<SweepPoint>& sweep);

}  // namespace colscope::eval

#endif  // COLSCOPE_EVAL_CURVES_H_
