#include "eval/breakdown.h"

#include <algorithm>

namespace colscope::eval {

std::map<std::pair<int, int>, MatchingQuality> EvaluateMatchingPerPair(
    const std::set<matching::ElementPair>& generated,
    const datasets::GroundTruth& truth, const schema::SchemaSet& set) {
  std::map<std::pair<int, int>, MatchingQuality> out;

  // Initialize every schema pair with its Cartesian size and its share
  // of the ground truth.
  const int k = static_cast<int>(set.num_schemas());
  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      MatchingQuality q;
      q.cartesian = set.schema(a).num_tables() * set.schema(b).num_tables() +
                    set.schema(a).num_attributes() *
                        set.schema(b).num_attributes();
      q.ground_truth = truth.CountsForSchemaPair(a, b).total();
      out[{a, b}] = q;
    }
  }

  for (const matching::ElementPair& pair : generated) {
    const int a = std::min(pair.first.schema, pair.second.schema);
    const int b = std::max(pair.first.schema, pair.second.schema);
    auto it = out.find({a, b});
    if (it == out.end()) continue;  // Pair outside the schema set.
    ++it->second.generated;
    if (truth.ContainsPair(pair.first, pair.second)) {
      ++it->second.true_linkages;
    }
  }
  return out;
}

}  // namespace colscope::eval
