#include "eval/csv_export.h"

#include <fstream>

#include "common/strings.h"

namespace colscope::eval {

std::string CurveToCsv(const Curve& curve, const std::string& x_name,
                       const std::string& y_name) {
  std::string out = x_name + "," + y_name + "\n";
  for (const CurvePoint& p : curve) {
    out += StrFormat("%.6f,%.6f\n", p.x, p.y);
  }
  return out;
}

std::string SweepToCsv(const std::vector<SweepPoint>& sweep,
                       const std::string& parameter_name) {
  std::string out = parameter_name + ",accuracy,precision,recall,f1\n";
  for (const SweepPoint& p : sweep) {
    out += StrFormat("%.4f,%.6f,%.6f,%.6f,%.6f\n", p.parameter,
                     p.confusion.Accuracy(), p.confusion.Precision(),
                     p.confusion.Recall(), p.confusion.F1());
  }
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out << text;
  if (!out.good()) {
    return Status::Internal("write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace colscope::eval
