#include "eval/sweep.h"

#include "common/check.h"
#include "common/thread_pool.h"
#include "scoping/collaborative.h"
#include "scoping/scoping.h"

namespace colscope::eval {

namespace {

/// Runs `point(i)` for every grid index — across `pool` when it has
/// workers to offer, serially otherwise. Each index owns its output
/// slot, so both paths produce identical sweeps.
void ForEachGridPoint(size_t count, ThreadPool* pool,
                      const std::function<void(size_t)>& point) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < count; ++i) point(i);
    return;
  }
  (void)pool->ParallelFor(count, point);
}

}  // namespace

std::vector<double> ParameterGrid(double step, double max) {
  COLSCOPE_CHECK(step > 0.0 && step < 1.0);
  std::vector<double> grid;
  // Multiply rather than accumulate so rounding error cannot push a grid
  // value past `max` (p/v must stay within [0, 1]).
  for (int i = 1; i * step <= max + 1e-12; ++i) {
    grid.push_back(std::min(1.0, i * step));
  }
  return grid;
}

std::vector<SweepPoint> ScopingSweepFromScores(
    const std::vector<double>& scores, const std::vector<bool>& labels,
    const std::vector<double>& grid, ThreadPool* pool) {
  COLSCOPE_CHECK(scores.size() == labels.size());
  std::vector<SweepPoint> sweep(grid.size());
  ForEachGridPoint(grid.size(), pool, [&](size_t i) {
    const std::vector<bool> keep = scoping::ScopeByScores(scores, grid[i]);
    sweep[i] = {grid[i], Evaluate(labels, keep)};
  });
  return sweep;
}

std::vector<SweepPoint> ScopingSweep(const scoping::SignatureSet& signatures,
                                     const std::vector<bool>& labels,
                                     const outlier::OutlierDetector& detector,
                                     const std::vector<double>& grid,
                                     ThreadPool* pool) {
  return ScopingSweepFromScores(detector.Scores(signatures.signatures),
                                labels, grid, pool);
}

std::vector<SweepPoint> CollaborativeSweep(
    const scoping::SignatureSet& signatures, size_t num_schemas,
    const std::vector<bool>& labels, const std::vector<double>& grid,
    ThreadPool* pool) {
  COLSCOPE_CHECK(signatures.size() == labels.size());
  // The expensive refit+assess per grid point runs in parallel into
  // per-index slots; status checks and the (cheap) confusion counts
  // happen serially afterwards so a failed fit aborts deterministically.
  std::vector<Result<std::vector<bool>>> keeps(
      grid.size(), Result<std::vector<bool>>(std::vector<bool>{}));
  ForEachGridPoint(grid.size(), pool, [&](size_t i) {
    keeps[i] =
        scoping::CollaborativeScoping(signatures, num_schemas, grid[i]);
  });
  std::vector<SweepPoint> sweep;
  sweep.reserve(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    COLSCOPE_CHECK_MSG(keeps[i].ok(), keeps[i].status().ToString().c_str());
    sweep.push_back({grid[i], Evaluate(labels, *keeps[i])});
  }
  return sweep;
}

AucReport ReportForScoping(const std::vector<bool>& labels,
                           const std::vector<double>& scores,
                           const std::vector<SweepPoint>& sweep) {
  AucReport report;
  report.auc_f1 = 100.0 * MeanOverSweep(F1Curve(sweep));
  const Curve roc = RocFromScores(labels, scores);
  report.auc_roc = 100.0 * TrapezoidAuc(roc);
  report.auc_roc_smoothed = 100.0 * TrapezoidAuc(SmoothRocCurve(roc));
  report.auc_pr = 100.0 * AveragePrecisionFromScores(labels, scores);
  return report;
}

AucReport ReportForCollaborative(const std::vector<SweepPoint>& sweep) {
  AucReport report;
  report.auc_f1 = 100.0 * MeanOverSweep(F1Curve(sweep));
  const Curve roc = RocFromSweep(sweep);
  report.auc_roc = 100.0 * TrapezoidAuc(roc);
  report.auc_roc_smoothed = 100.0 * TrapezoidAuc(SmoothRocCurve(roc));
  report.auc_pr = 100.0 * PrAucFromSweep(sweep);
  return report;
}

}  // namespace colscope::eval
