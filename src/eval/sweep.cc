#include "eval/sweep.h"

#include "common/check.h"
#include "scoping/collaborative.h"
#include "scoping/scoping.h"

namespace colscope::eval {

std::vector<double> ParameterGrid(double step, double max) {
  COLSCOPE_CHECK(step > 0.0 && step < 1.0);
  std::vector<double> grid;
  // Multiply rather than accumulate so rounding error cannot push a grid
  // value past `max` (p/v must stay within [0, 1]).
  for (int i = 1; i * step <= max + 1e-12; ++i) {
    grid.push_back(std::min(1.0, i * step));
  }
  return grid;
}

std::vector<SweepPoint> ScopingSweepFromScores(
    const std::vector<double>& scores, const std::vector<bool>& labels,
    const std::vector<double>& grid) {
  COLSCOPE_CHECK(scores.size() == labels.size());
  std::vector<SweepPoint> sweep;
  sweep.reserve(grid.size());
  for (double p : grid) {
    const std::vector<bool> keep = scoping::ScopeByScores(scores, p);
    sweep.push_back({p, Evaluate(labels, keep)});
  }
  return sweep;
}

std::vector<SweepPoint> ScopingSweep(const scoping::SignatureSet& signatures,
                                     const std::vector<bool>& labels,
                                     const outlier::OutlierDetector& detector,
                                     const std::vector<double>& grid) {
  return ScopingSweepFromScores(detector.Scores(signatures.signatures),
                                labels, grid);
}

std::vector<SweepPoint> CollaborativeSweep(
    const scoping::SignatureSet& signatures, size_t num_schemas,
    const std::vector<bool>& labels, const std::vector<double>& grid) {
  COLSCOPE_CHECK(signatures.size() == labels.size());
  std::vector<SweepPoint> sweep;
  sweep.reserve(grid.size());
  for (double v : grid) {
    Result<std::vector<bool>> keep =
        scoping::CollaborativeScoping(signatures, num_schemas, v);
    COLSCOPE_CHECK_MSG(keep.ok(), keep.status().ToString().c_str());
    sweep.push_back({v, Evaluate(labels, *keep)});
  }
  return sweep;
}

AucReport ReportForScoping(const std::vector<bool>& labels,
                           const std::vector<double>& scores,
                           const std::vector<SweepPoint>& sweep) {
  AucReport report;
  report.auc_f1 = 100.0 * MeanOverSweep(F1Curve(sweep));
  const Curve roc = RocFromScores(labels, scores);
  report.auc_roc = 100.0 * TrapezoidAuc(roc);
  report.auc_roc_smoothed = 100.0 * TrapezoidAuc(SmoothRocCurve(roc));
  report.auc_pr = 100.0 * AveragePrecisionFromScores(labels, scores);
  return report;
}

AucReport ReportForCollaborative(const std::vector<SweepPoint>& sweep) {
  AucReport report;
  report.auc_f1 = 100.0 * MeanOverSweep(F1Curve(sweep));
  const Curve roc = RocFromSweep(sweep);
  report.auc_roc = 100.0 * TrapezoidAuc(roc);
  report.auc_roc_smoothed = 100.0 * TrapezoidAuc(SmoothRocCurve(roc));
  report.auc_pr = 100.0 * PrAucFromSweep(sweep);
  return report;
}

}  // namespace colscope::eval
