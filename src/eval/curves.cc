#include "eval/curves.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace colscope::eval {

namespace {

void SortByX(Curve& curve) {
  std::stable_sort(curve.begin(), curve.end(),
                   [](const CurvePoint& a, const CurvePoint& b) {
                     if (a.x != b.x) return a.x < b.x;
                     return a.y < b.y;
                   });
}

/// Indices of `scores` sorted ascending (lower score = stronger positive
/// prediction for linkability).
std::vector<size_t> AscendingOrder(const std::vector<double>& scores) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  return order;
}

}  // namespace

double TrapezoidAuc(Curve curve) {
  if (curve.size() < 2) return 0.0;
  SortByX(curve);
  double auc = 0.0;
  for (size_t i = 1; i < curve.size(); ++i) {
    const double dx = curve[i].x - curve[i - 1].x;
    auc += dx * 0.5 * (curve[i].y + curve[i - 1].y);
  }
  return auc;
}

double MeanOverSweep(Curve curve) {
  if (curve.empty()) return 0.0;
  if (curve.size() == 1) return curve[0].y;
  SortByX(curve);
  const double span = curve.back().x - curve.front().x;
  if (span <= 0.0) {
    double sum = 0.0;
    for (const CurvePoint& p : curve) sum += p.y;
    return sum / static_cast<double>(curve.size());
  }
  return TrapezoidAuc(curve) / span;
}

Curve SmoothRocCurve(Curve curve, int smoothing_window) {
  if (curve.empty()) return curve;
  SortByX(curve);

  // Monotone upper envelope: TPR may only rise with FPR.
  double running_max = 0.0;
  for (CurvePoint& p : curve) {
    running_max = std::max(running_max, p.y);
    p.y = running_max;
  }

  // Centered moving average (light spline-style smoothing); the envelope
  // is re-applied afterwards so smoothing cannot break monotonicity.
  if (smoothing_window > 1 && curve.size() > 2) {
    Curve smoothed = curve;
    const int half = smoothing_window / 2;
    for (size_t i = 0; i < curve.size(); ++i) {
      double sum = 0.0;
      int count = 0;
      for (int d = -half; d <= half; ++d) {
        const long j = static_cast<long>(i) + d;
        if (j < 0 || j >= static_cast<long>(curve.size())) continue;
        sum += curve[static_cast<size_t>(j)].y;
        ++count;
      }
      smoothed[i].y = sum / count;
    }
    running_max = 0.0;
    for (CurvePoint& p : smoothed) {
      running_max = std::max(running_max, p.y);
      p.y = running_max;
    }
    curve = std::move(smoothed);
  }

  // Anchor at the origin and extend the last TPR to FPR = 1.
  if (curve.front().x > 0.0) {
    curve.insert(curve.begin(), CurvePoint{0.0, 0.0});
  }
  if (curve.back().x < 1.0) {
    curve.push_back(CurvePoint{1.0, curve.back().y});
  }
  return curve;
}

Curve RocFromScores(const std::vector<bool>& labels,
                    const std::vector<double>& scores) {
  COLSCOPE_CHECK(labels.size() == scores.size());
  const std::vector<size_t> order = AscendingOrder(scores);
  size_t positives = 0;
  for (bool l : labels) positives += l;
  const size_t negatives = labels.size() - positives;

  Curve curve;
  curve.push_back({0.0, 0.0});
  size_t tp = 0, fp = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]]) {
      ++tp;
    } else {
      ++fp;
    }
    // Emit a point after each distinct score value (threshold).
    if (i + 1 < order.size() &&
        scores[order[i + 1]] == scores[order[i]]) {
      continue;
    }
    curve.push_back({negatives == 0 ? 0.0
                                    : static_cast<double>(fp) /
                                          static_cast<double>(negatives),
                     positives == 0 ? 0.0
                                    : static_cast<double>(tp) /
                                          static_cast<double>(positives)});
  }
  return curve;
}

Curve PrFromScores(const std::vector<bool>& labels,
                   const std::vector<double>& scores) {
  COLSCOPE_CHECK(labels.size() == scores.size());
  const std::vector<size_t> order = AscendingOrder(scores);
  size_t positives = 0;
  for (bool l : labels) positives += l;

  Curve curve;
  size_t tp = 0, predicted = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    ++predicted;
    if (labels[order[i]]) ++tp;
    if (i + 1 < order.size() &&
        scores[order[i + 1]] == scores[order[i]]) {
      continue;
    }
    const double recall = positives == 0
                              ? 0.0
                              : static_cast<double>(tp) /
                                    static_cast<double>(positives);
    const double precision =
        static_cast<double>(tp) / static_cast<double>(predicted);
    curve.push_back({recall, precision});
  }
  return curve;
}

double AveragePrecisionFromScores(const std::vector<bool>& labels,
                                  const std::vector<double>& scores) {
  COLSCOPE_CHECK(labels.size() == scores.size());
  const std::vector<size_t> order = AscendingOrder(scores);
  size_t positives = 0;
  for (bool l : labels) positives += l;
  if (positives == 0) return 0.0;

  // AP = sum over thresholds of (recall_i - recall_{i-1}) * precision_i.
  double ap = 0.0;
  double prev_recall = 0.0;
  size_t tp = 0, predicted = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    ++predicted;
    if (labels[order[i]]) ++tp;
    if (i + 1 < order.size() &&
        scores[order[i + 1]] == scores[order[i]]) {
      continue;
    }
    const double recall =
        static_cast<double>(tp) / static_cast<double>(positives);
    const double precision =
        static_cast<double>(tp) / static_cast<double>(predicted);
    ap += (recall - prev_recall) * precision;
    prev_recall = recall;
  }
  return ap;
}

namespace {
Curve ExtractCurve(const std::vector<SweepPoint>& sweep,
                   double (Confusion::*metric)() const) {
  Curve curve;
  curve.reserve(sweep.size());
  for (const SweepPoint& p : sweep) {
    curve.push_back({p.parameter, (p.confusion.*metric)()});
  }
  return curve;
}
}  // namespace

Curve F1Curve(const std::vector<SweepPoint>& sweep) {
  return ExtractCurve(sweep, &Confusion::F1);
}
Curve PrecisionCurve(const std::vector<SweepPoint>& sweep) {
  return ExtractCurve(sweep, &Confusion::Precision);
}
Curve RecallCurve(const std::vector<SweepPoint>& sweep) {
  return ExtractCurve(sweep, &Confusion::Recall);
}
Curve AccuracyCurve(const std::vector<SweepPoint>& sweep) {
  return ExtractCurve(sweep, &Confusion::Accuracy);
}

Curve RocFromSweep(const std::vector<SweepPoint>& sweep) {
  Curve curve;
  curve.reserve(sweep.size() + 1);
  curve.push_back({0.0, 0.0});
  for (const SweepPoint& p : sweep) {
    curve.push_back({p.confusion.FalsePositiveRate(), p.confusion.Recall()});
  }
  std::stable_sort(curve.begin(), curve.end(),
                   [](const CurvePoint& a, const CurvePoint& b) {
                     if (a.x != b.x) return a.x < b.x;
                     return a.y < b.y;
                   });
  return curve;
}

Curve PrFromSweep(const std::vector<SweepPoint>& sweep) {
  Curve curve;
  curve.reserve(sweep.size() + 1);
  for (const SweepPoint& p : sweep) {
    curve.push_back({p.confusion.Recall(), p.confusion.Precision()});
  }
  std::stable_sort(curve.begin(), curve.end(),
                   [](const CurvePoint& a, const CurvePoint& b) {
                     if (a.x != b.x) return a.x < b.x;
                     return a.y > b.y;
                   });
  // Anchor at recall = 0 with the precision of the lowest-recall point
  // (the standard step extension), so AUC-PR integrates over the same
  // [0, max-recall] domain as the score-based average precision — a
  // sweep whose recall never drops low would otherwise be penalized for
  // being uniformly good (the PR analogue of the FPR < 100% ROC artefact
  // discussed in Section 4.2).
  if (!curve.empty() && curve.front().x > 0.0) {
    curve.insert(curve.begin(), CurvePoint{0.0, curve.front().y});
  }
  return curve;
}

double PrAucFromSweep(const std::vector<SweepPoint>& sweep) {
  return TrapezoidAuc(PrFromSweep(sweep));
}

}  // namespace colscope::eval
