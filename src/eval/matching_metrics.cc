#include "eval/matching_metrics.h"

namespace colscope::eval {

double MatchingQuality::PairQuality() const {
  if (generated == 0) return 0.0;
  return static_cast<double>(true_linkages) / static_cast<double>(generated);
}

double MatchingQuality::PairCompleteness() const {
  if (ground_truth == 0) return 0.0;
  return static_cast<double>(true_linkages) /
         static_cast<double>(ground_truth);
}

double MatchingQuality::F1() const {
  const double pq = PairQuality();
  const double pc = PairCompleteness();
  if (pq + pc == 0.0) return 0.0;
  return 2.0 * pq * pc / (pq + pc);
}

double MatchingQuality::ReductionRatio() const {
  if (cartesian == 0) return 0.0;
  const double ratio =
      static_cast<double>(generated) / static_cast<double>(cartesian);
  return 1.0 - ratio;
}

MatchingQuality EvaluateMatching(
    const std::set<matching::ElementPair>& generated,
    const datasets::GroundTruth& truth, size_t cartesian) {
  MatchingQuality q;
  q.generated = generated.size();
  q.ground_truth = truth.size();
  q.cartesian = cartesian;
  for (const matching::ElementPair& pair : generated) {
    if (truth.ContainsPair(pair.first, pair.second)) ++q.true_linkages;
  }
  return q;
}

}  // namespace colscope::eval
