#ifndef COLSCOPE_PIPELINE_REPORT_H_
#define COLSCOPE_PIPELINE_REPORT_H_

#include <string>

#include "pipeline/pipeline.h"

namespace colscope::pipeline {

/// Serializes a pipeline run to a machine-readable JSON report:
/// per-element linkability, generated linkages, and (when ground truth
/// was supplied) the PQ/PC/F1/RR quality block. Intended for driving
/// dashboards / downstream tooling from the CLI (`--json`).
std::string RunToJson(const PipelineRun& run, const schema::SchemaSet& set);

}  // namespace colscope::pipeline

#endif  // COLSCOPE_PIPELINE_REPORT_H_
