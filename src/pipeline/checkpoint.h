#ifndef COLSCOPE_PIPELINE_CHECKPOINT_H_
#define COLSCOPE_PIPELINE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "schema/schema_set.h"

namespace colscope::pipeline {

struct PipelineOptions;

/// The phase artifacts a run persists as it progresses. Later phases are
/// cheap to recompute (streamline/match/evaluate), so only the expensive
/// prefix is checkpointed.
enum class CheckpointPhase {
  kSignatures,   ///< Phase I: serialized + encoded SignatureSet.
  kLocalModels,  ///< Phase II: the fitted per-schema model set.
  kKeepMask,     ///< Phase III: the linkability keep mask.
};

/// Stable lower-snake name of `phase` ("signatures", "local_models",
/// "keep_mask") — used as the on-disk filename and in CLI flags/tests.
const char* CheckpointPhaseToString(CheckpointPhase phase);

/// Fingerprints a run's identity: the serialized schema-set content plus
/// every option that changes a phase artifact (scoper, explained
/// variance, keep portion, exchange settings). A checkpoint written
/// under a different fingerprint is never trusted — resuming a run over
/// different data or config silently mixing artifacts would be worse
/// than recomputing.
uint64_t ComputeRunFingerprint(const schema::SchemaSet& set,
                               const PipelineOptions& options);

/// Canonical rendering of every option that changes a phase artifact —
/// the options half of ComputeRunFingerprint, shared with the artifact
/// cache's keep-mask keys (see cache/pipeline_cache.h). Observability
/// hooks, thread counts, and cache/checkpoint paths are deliberately
/// excluded: they change what gets recorded or reused, never what gets
/// computed.
std::string SemanticOptionsString(const PipelineOptions& options);

/// Crash-safe on-disk store of one run's phase artifacts. Each artifact
/// is a single file `<dir>/<phase>.ckpt` in a versioned, checksummed
/// envelope:
///   colscope-checkpoint v1
///   phase <name>
///   fingerprint <16 hex digits>
///   bytes <payload byte count>
///   checksum <16 hex digits, FNV-1a 64 of the payload>
///   <payload>
/// Writes go to a temp file in the same directory followed by an atomic
/// rename, so a crash mid-write can never leave a torn checkpoint under
/// the final name — at worst a stale temp file that is ignored.
///
/// When `metrics` is non-null the store emits checkpoint.write /
/// checkpoint.load / checkpoint.corrupt / checkpoint.miss counters.
class CheckpointStore {
 public:
  /// `dir` is created on first Write if absent. `metrics` is borrowed
  /// and may be null.
  CheckpointStore(std::string dir, uint64_t fingerprint,
                  obs::MetricsRegistry* metrics = nullptr);

  /// Atomically persists `payload` as the artifact of `phase`,
  /// overwriting any previous version.
  Status Write(CheckpointPhase phase, const std::string& payload) const;

  /// Loads and validates the artifact of `phase`. NotFound when the file
  /// does not exist; FailedPrecondition when it exists but was written
  /// under a different fingerprint; InvalidArgument when the envelope is
  /// malformed, truncated, or fails its checksum (counted as
  /// checkpoint.corrupt). Callers treat every failure the same way: the
  /// phase is recomputed from scratch.
  Result<std::string> Load(CheckpointPhase phase) const;

  const std::string& dir() const { return dir_; }
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  std::string PathFor(CheckpointPhase phase) const;

  std::string dir_;
  uint64_t fingerprint_;
  obs::MetricsRegistry* metrics_;
};

}  // namespace colscope::pipeline

#endif  // COLSCOPE_PIPELINE_CHECKPOINT_H_
