#include "pipeline/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/checksum.h"
#include "common/strings.h"
#include "pipeline/pipeline.h"
#include "schema/serialize.h"
#include "scoping/io_util.h"

namespace colscope::pipeline {

namespace {

constexpr char kEnvelopeHeader[] = "colscope-checkpoint v1";
// An envelope is five short header lines plus the payload; payloads
// larger than this are certainly not ours (a signature checkpoint for
// kMaxTotalValues doubles stays well under it).
constexpr size_t kMaxPayloadBytes = size_t{1} << 31;

void Count(obs::MetricsRegistry* metrics, const char* name) {
  if (metrics != nullptr) metrics->GetCounter(name).Increment();
}

/// Parses "<key> <value>" returning the value, or an error naming the
/// expected key. The payload follows the last header line verbatim, so
/// header values themselves never contain spaces.
Result<std::string> ExpectKeyLine(std::istream& in, std::string_view key) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(
        StrFormat("checkpoint truncated before %s line",
                  std::string(key).c_str()));
  }
  const std::vector<std::string> tokens =
      SplitString(StripAsciiWhitespace(line), " \t");
  if (tokens.size() != 2 || tokens[0] != key) {
    return Status::InvalidArgument(
        StrFormat("malformed checkpoint %s line: %s",
                  std::string(key).c_str(), line.c_str()));
  }
  return tokens[1];
}

/// Parses exactly 16 lowercase hex digits into a uint64.
bool ParseHex64(const std::string& token, uint64_t& out) {
  if (token.size() != 16) return false;
  uint64_t value = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  out = value;
  return true;
}

}  // namespace

const char* CheckpointPhaseToString(CheckpointPhase phase) {
  switch (phase) {
    case CheckpointPhase::kSignatures:
      return "signatures";
    case CheckpointPhase::kLocalModels:
      return "local_models";
    case CheckpointPhase::kKeepMask:
      return "keep_mask";
  }
  return "unknown";
}

uint64_t ComputeRunFingerprint(const schema::SchemaSet& set,
                               const PipelineOptions& options) {
  // Chain FNV-1a over every serialized element text (the exact strings
  // the encoder sees) plus a canonical rendering of each option that
  // changes a checkpointed artifact. Observability hooks and the
  // detector pointer are deliberately excluded: they alter what gets
  // recorded, never what gets computed.
  uint64_t h = Fnv1a64("colscope-run-fingerprint v1");
  for (size_t i = 0; i < set.num_schemas(); ++i) {
    const std::vector<schema::SerializedElement> elements =
        schema::SerializeSchema(set.schema(static_cast<int>(i)),
                                static_cast<int>(i));
    for (const schema::SerializedElement& element : elements) {
      h = Fnv1a64(element.text, h);
    }
  }
  return Fnv1a64(SemanticOptionsString(options), h);
}

std::string SemanticOptionsString(const PipelineOptions& options) {
  std::string opts = StrFormat(
      "scoper=%d ev=%.17g keep=%.17g exchange=%d", static_cast<int>(options.scoper),
      options.explained_variance, options.keep_portion,
      options.exchange.enabled ? 1 : 0);
  if (options.exchange.enabled) {
    const FaultProfile& f = options.exchange.faults;
    const exchange::RetryPolicy& r = options.exchange.retry;
    opts += StrFormat(
        " seed=%llu drop=%.17g corrupt=%.17g truncate=%.17g delay=%.17g"
        " stale=%.17g base_lat=%.17g delay_lat=%.17g"
        " attempts=%d backoff=%.17g mult=%.17g max_backoff=%.17g"
        " jitter=%.17g deadline=%.17g policy=%d quorum=%zu",
        static_cast<unsigned long long>(f.seed), f.drop_probability,
        f.corrupt_probability, f.truncate_probability, f.delay_probability,
        f.stale_probability, f.base_latency_ms, f.delay_latency_ms,
        r.max_attempts, r.initial_backoff_ms, r.backoff_multiplier,
        r.max_backoff_ms, r.jitter, r.deadline_ms,
        static_cast<int>(options.exchange.degraded.policy),
        options.exchange.degraded.quorum);
  }
  return opts;
}

CheckpointStore::CheckpointStore(std::string dir, uint64_t fingerprint,
                                 obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)), fingerprint_(fingerprint), metrics_(metrics) {}

std::string CheckpointStore::PathFor(CheckpointPhase phase) const {
  return dir_ + "/" + CheckpointPhaseToString(phase) + ".ckpt";
}

Status CheckpointStore::Write(CheckpointPhase phase,
                              const std::string& payload) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal(
        StrFormat("cannot create checkpoint dir %s: %s", dir_.c_str(),
                  ec.message().c_str()));
  }
  const std::string final_path = PathFor(phase);
  const std::string tmp_path = final_path + ".tmp";

  std::string envelope;
  envelope.reserve(payload.size() + 128);
  envelope += kEnvelopeHeader;
  envelope += '\n';
  envelope += StrFormat("phase %s\n", CheckpointPhaseToString(phase));
  envelope += StrFormat("fingerprint %s\n",
                        Fnv1a64Hex(fingerprint_).c_str());
  envelope += StrFormat("bytes %zu\n", payload.size());
  envelope += StrFormat("checksum %s\n",
                        Fnv1a64Hex(Fnv1a64(payload)).c_str());
  envelope += payload;

  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open checkpoint temp file: " +
                              tmp_path);
    }
    out.write(envelope.data(),
              static_cast<std::streamsize>(envelope.size()));
    out.flush();
    if (!out) {
      return Status::Internal("short write to checkpoint temp file: " +
                              tmp_path);
    }
  }
  // rename(2) within one directory is atomic: readers see either the old
  // complete checkpoint or the new complete one, never a torn file.
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return Status::Internal(
        StrFormat("cannot publish checkpoint %s: %s", final_path.c_str(),
                  ec.message().c_str()));
  }
  Count(metrics_, "checkpoint.write");
  return Status::Ok();
}

Result<std::string> CheckpointStore::Load(CheckpointPhase phase) const {
  const std::string path = PathFor(phase);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Count(metrics_, "checkpoint.miss");
    return Status::NotFound("no checkpoint at " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();

  const auto corrupt = [&](const std::string& why) -> Status {
    Count(metrics_, "checkpoint.corrupt");
    return Status::InvalidArgument(
        StrFormat("corrupt checkpoint %s: %s", path.c_str(), why.c_str()));
  };

  std::istringstream stream(contents);
  std::string line;
  if (!std::getline(stream, line) ||
      StripAsciiWhitespace(line) != kEnvelopeHeader) {
    return corrupt("missing or unsupported envelope header");
  }
  Result<std::string> phase_name = ExpectKeyLine(stream, "phase");
  if (!phase_name.ok()) return corrupt(phase_name.status().message());
  if (*phase_name != CheckpointPhaseToString(phase)) {
    return corrupt(StrFormat("phase mismatch: expected %s, found %s",
                             CheckpointPhaseToString(phase),
                             phase_name->c_str()));
  }
  Result<std::string> fp_text = ExpectKeyLine(stream, "fingerprint");
  if (!fp_text.ok()) return corrupt(fp_text.status().message());
  uint64_t fp = 0;
  if (!ParseHex64(*fp_text, fp)) {
    return corrupt("malformed fingerprint: " + *fp_text);
  }
  Result<std::string> bytes_text = ExpectKeyLine(stream, "bytes");
  if (!bytes_text.ok()) return corrupt(bytes_text.status().message());
  size_t declared_bytes = 0;
  if (!scoping::io::ParseSize(*bytes_text, declared_bytes) ||
      declared_bytes > kMaxPayloadBytes) {
    return corrupt("malformed byte count: " + *bytes_text);
  }
  Result<std::string> sum_text = ExpectKeyLine(stream, "checksum");
  if (!sum_text.ok()) return corrupt(sum_text.status().message());
  uint64_t declared_sum = 0;
  if (!ParseHex64(*sum_text, declared_sum)) {
    return corrupt("malformed checksum: " + *sum_text);
  }

  // The payload is everything after the checksum line, verbatim.
  const std::streampos pos = stream.tellg();
  if (pos < 0) return corrupt("truncated before payload");
  const std::string payload =
      contents.substr(static_cast<size_t>(pos));
  if (payload.size() != declared_bytes) {
    return corrupt(StrFormat("payload is %zu bytes, envelope declares %zu",
                             payload.size(), declared_bytes));
  }
  if (Fnv1a64(payload) != declared_sum) {
    return corrupt("payload checksum mismatch");
  }
  // Fingerprint is validated after integrity: a stale-but-intact
  // checkpoint from another run/config is a precondition failure, not
  // corruption.
  if (fp != fingerprint_) {
    return Status::FailedPrecondition(
        StrFormat("checkpoint %s was written for a different run "
                  "(fingerprint %s, expected %s)",
                  path.c_str(), fp_text->c_str(),
                  Fnv1a64Hex(fingerprint_).c_str()));
  }
  Count(metrics_, "checkpoint.load");
  return payload;
}

}  // namespace colscope::pipeline
