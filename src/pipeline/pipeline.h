#ifndef COLSCOPE_PIPELINE_PIPELINE_H_
#define COLSCOPE_PIPELINE_PIPELINE_H_

#include <optional>
#include <set>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injector.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "datasets/linkage.h"
#include "embed/encoder.h"
#include "eval/matching_metrics.h"
#include "exchange/exchange.h"
#include "matching/matcher.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "outlier/oda.h"
#include "scoping/collaborative.h"
#include "scoping/neural_collaborative.h"
#include "scoping/signatures.h"

namespace colscope::cache {
class ArtifactCache;
}  // namespace colscope::cache

namespace colscope::pipeline {

/// Which pre-processing scoper the pipeline applies before matching.
enum class ScoperKind {
  kNone,                  ///< Traditional pipeline (Figure 2): no pruning.
  kCollaborativePca,      ///< The paper's method (Algorithms 1 + 2).
  kCollaborativeNeural,   ///< Future-work variant: neural encoder-decoders.
  kGlobalScoping,         ///< Prior-work baseline: one ODA + threshold p.
};

/// Simulated model-exchange settings for kCollaborativePca: when
/// enabled, phase III runs over an in-memory transport with the given
/// fault profile, retrying per `retry` and degrading per `degraded`
/// instead of assuming every peer model arrives intact.
struct ExchangeSimOptions {
  bool enabled = false;
  FaultProfile faults;
  exchange::RetryPolicy retry;
  scoping::DegradedOptions degraded;
};

/// End-to-end configuration: extract -> serialize -> encode -> scope ->
/// match. The encoder and (for kGlobalScoping) the ODA are borrowed
/// pointers and must outlive the pipeline.
struct PipelineOptions {
  ScoperKind scoper = ScoperKind::kCollaborativePca;
  /// Explained-variance target v for kCollaborativePca.
  double explained_variance = 0.8;
  /// Keep portion p and detector for kGlobalScoping.
  double keep_portion = 0.5;
  const outlier::OutlierDetector* detector = nullptr;
  /// Options for kCollaborativeNeural.
  scoping::NeuralLocalModelOptions neural;
  /// Fault-tolerant model exchange for kCollaborativePca.
  ExchangeSimOptions exchange;
  /// Optional observability hooks, both borrowed and both off (null) by
  /// default so uninstrumented runs pay only predicted branches. A
  /// non-null tracer records one span per phase (pipeline.serialize,
  /// .embed, .fit_local_models, .exchange, .assess, .streamline, .match,
  /// .evaluate under a pipeline.run root); a non-null registry collects
  /// element-count gauges, the exchange.* / scoping.* counters, and
  /// per-phase "pipeline.<phase>_ms" latency histograms, and is
  /// snapshotted into PipelineRun::metrics. Phase latencies are measured
  /// on the tracer's clock when a tracer is present (so simulated-clock
  /// runs produce deterministic histograms) and on a steady wall clock
  /// otherwise.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Run-level time budget in milliseconds; non-positive means no
  /// deadline. Checked cooperatively at phase boundaries and propagated
  /// into the model exchange, where each fetch's effective deadline is
  /// capped by the budget remaining. An exhausted budget ends the run
  /// early with PipelineRun::status = kDeadlineExceeded and whatever
  /// artifacts completed phases produced — not an error.
  double deadline_ms = 0.0;
  /// Clock the deadline is measured on. Borrowed; null means a
  /// steady-clock wall timer private to the run. Inject a
  /// SimulatedRunClock to exhaust deadlines deterministically in tests.
  RunClock* clock = nullptr;
  /// Cooperative cancellation: when the token trips, the run stops at
  /// the next phase boundary (and in-flight exchange fetches abort)
  /// with PipelineRun::status = kCancelled. Borrowed; null means not
  /// cancellable.
  const CancellationToken* cancel = nullptr;
  /// When non-empty, each expensive phase's artifact (signatures, local
  /// models, keep mask) is checkpointed to this directory as it
  /// completes, atomically and checksummed — see pipeline/checkpoint.h.
  std::string checkpoint_dir;
  /// When true (and checkpoint_dir is set), valid same-fingerprint
  /// checkpoints are loaded instead of recomputed. Corrupt, stale, or
  /// missing checkpoints silently fall back to recomputation; resuming
  /// is an optimization, never a correctness risk. The keep mask is
  /// only trusted for non-exchange runs — exchange runs replay phase
  /// III so the degradation report is regenerated faithfully.
  bool resume = false;
  /// Test hook: after the named phase ("signatures", "local_models",
  /// "keep_mask") completes and its checkpoint is written, abort the
  /// run with an Internal error — simulating a crash at the worst
  /// moment a real one could happen.
  std::string crash_after_phase;
  /// When non-empty, a content-addressed artifact cache at this
  /// directory memoizes per-source signatures, local models, keep-mask
  /// slices, and per-source-pair similarity blocks (see
  /// cache/pipeline_cache.h). A warm re-run after editing one source
  /// recomputes only that source's artifacts plus the similarity blocks
  /// that touch it, and produces a byte-identical report. Unlike
  /// checkpoints (which fingerprint the whole run), cache entries are
  /// keyed per source, so the cache survives — and exploits — partial
  /// schema deltas. A cache that cannot be opened disables itself with a
  /// warning; it is never a correctness risk.
  std::string cache_dir;
  /// Soft size cap for cache_dir in bytes; 0 means unbounded. Exceeding
  /// it evicts least-recently-used entries.
  uint64_t cache_max_bytes = 0;
  /// Borrowed, already-open artifact cache shared across runs (the
  /// resident server keeps one alive so every request hits warm
  /// entries). Overrides cache_dir/cache_max_bytes when non-null; must
  /// outlive Run(). ArtifactCache::Get is lock-free for concurrent
  /// readers and Put serializes internally, so one cache may back many
  /// concurrent runs.
  cache::ArtifactCache* cache = nullptr;
  /// Worker threads for the parallel phases (signature encoding and
  /// local-model fitting). 1 — the default — keeps every phase on the
  /// calling thread and starts no pool at all; 0 picks the hardware
  /// concurrency. Reports and artifacts are byte-identical at any
  /// setting: parallel phases write per-index slots that are merged in
  /// index order.
  size_t num_threads = 1;
  /// Borrowed worker pool shared with the caller (e.g. the CLI shares
  /// one pool between the pipeline and a pool-aware matcher). Overrides
  /// num_threads when non-null; must outlive Run().
  ThreadPool* pool = nullptr;
};

/// Everything one pipeline run produces; intermediate artifacts are kept
/// so callers can inspect or reuse them.
struct PipelineRun {
  scoping::SignatureSet signatures;
  std::vector<bool> keep;               ///< Linkability mask (phase III).
  schema::SchemaSet streamlined;        ///< The S' schemas.
  std::set<matching::ElementPair> linkages;
  /// Filled when ground truth was supplied to Run().
  std::optional<eval::MatchingQuality> quality;
  /// Filled when the run went through the simulated model exchange:
  /// peers lost, retries, faults survived, and the policy applied.
  std::optional<exchange::DegradationReport> degradation;
  /// The effective exchange + transport configuration (fault seed,
  /// retry, policy, worker ownership) of exchange runs, echoed into the
  /// JSON report so degraded runs reproduce from the report alone.
  std::optional<exchange::ExchangeConfigEcho> exchange_config;
  /// Snapshot of PipelineOptions::metrics taken at the end of Run(), so
  /// every report doubles as a profile. Absent for uninstrumented runs.
  std::optional<obs::MetricsSnapshot> metrics;
  /// kOk for a complete run; kCancelled or kDeadlineExceeded when the
  /// run stopped early at a phase boundary. Partial runs are still OK
  /// Results — the artifacts of every completed phase are valid.
  Status status;
  /// Names of the phases that ran to completion, in order (subset of
  /// signatures, local_models, keep_mask, streamline, match, evaluate).
  std::vector<std::string> phases_completed;
  /// How many phases were restored from checkpoints instead of
  /// recomputed (surfaced in metrics as pipeline.phases_resumed, never
  /// in the JSON report — resumed and fresh runs must stay
  /// byte-identical).
  size_t phases_resumed = 0;
  /// Flight-recorder dump: the last RPC / fault / retry events this
  /// process recorded, serialized into the JSON report when non-empty.
  /// Run() never fills this — comparing two fresh runs must not see
  /// ring state bleed between them. The CLI copies
  /// obs::FlightRecorder::Global().Snapshot() here for runs that ended
  /// degraded (non-OK status or lost workers), where the recent-event
  /// ledger is the post-mortem.
  std::vector<obs::FlightEvent> flight;

  size_t num_kept() const;
  size_t num_pruned() const { return keep.size() - num_kept(); }
};

/// The full workflow of Figure 4 glued together. Stateless between runs;
/// thread-compatible (each Run call is independent).
class Pipeline {
 public:
  /// `encoder` is borrowed and must outlive the pipeline.
  Pipeline(const embed::SentenceEncoder* encoder, PipelineOptions options);

  /// Runs scope + match over `set` with `matcher`. When `truth` is
  /// non-null, PQ/PC/F1/RR are computed against it.
  Result<PipelineRun> Run(const schema::SchemaSet& set,
                          const matching::Matcher& matcher,
                          const datasets::GroundTruth* truth = nullptr) const;

  const PipelineOptions& options() const { return options_; }

 private:
  const embed::SentenceEncoder* encoder_;
  PipelineOptions options_;
};

}  // namespace colscope::pipeline

#endif  // COLSCOPE_PIPELINE_PIPELINE_H_
