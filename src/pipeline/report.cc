#include "pipeline/report.h"

#include "common/json_writer.h"
#include "obs/metrics.h"

namespace colscope::pipeline {

std::string RunToJson(const PipelineRun& run, const schema::SchemaSet& set) {
  JsonWriter json;
  json.BeginObject();

  json.Key("status").String(StatusCodeToString(run.status.code()));
  json.Key("phases_completed").BeginArray();
  for (const std::string& phase : run.phases_completed) {
    json.String(phase);
  }
  json.EndArray();

  json.Key("num_elements").Int(static_cast<long long>(run.keep.size()));
  json.Key("num_kept").Int(static_cast<long long>(run.num_kept()));
  json.Key("num_pruned").Int(static_cast<long long>(run.num_pruned()));

  json.Key("elements").BeginArray();
  for (size_t i = 0; i < run.keep.size(); ++i) {
    json.BeginObject();
    json.Key("name").String(set.QualifiedName(run.signatures.refs[i]));
    json.Key("kind").String(run.signatures.refs[i].is_table() ? "table"
                                                              : "attribute");
    json.Key("linkable").Bool(run.keep[i]);
    json.EndObject();
  }
  json.EndArray();

  json.Key("linkages").BeginArray();
  for (const auto& [a, b] : run.linkages) {
    json.BeginObject();
    json.Key("a").String(set.QualifiedName(a));
    json.Key("b").String(set.QualifiedName(b));
    json.EndObject();
  }
  json.EndArray();

  if (run.degradation.has_value()) {
    const exchange::DegradationReport& deg = *run.degradation;
    json.Key("degradation").BeginObject();
    json.Key("policy").String(deg.policy);
    json.Key("num_schemas").Int(static_cast<long long>(deg.num_schemas));
    json.Key("total_fetches").Int(static_cast<long long>(deg.total_fetches));
    json.Key("failed_fetches")
        .Int(static_cast<long long>(deg.failed_fetches));
    json.Key("skipped_fetches")
        .Int(static_cast<long long>(deg.skipped_fetches));
    json.Key("aborted").String(deg.aborted);
    json.Key("total_attempts")
        .Int(static_cast<long long>(deg.total_attempts));
    json.Key("total_retries").Int(static_cast<long long>(deg.total_retries));
    json.Key("simulated_ms").Number(deg.simulated_ms);
    json.Key("faults").BeginObject();
    for (size_t kind = 1; kind < kNumFaultKinds; ++kind) {
      json.Key(FaultKindToString(static_cast<FaultKind>(kind)))
          .Int(static_cast<long long>(deg.fault_counts[kind]));
    }
    json.EndObject();
    json.Key("peers_lost").BeginArray();
    for (const auto& [consumer, publisher] : deg.peers_lost) {
      json.BeginObject();
      json.Key("consumer").Int(consumer);
      json.Key("publisher").Int(publisher);
      json.EndObject();
    }
    json.EndArray();
    json.Key("arrived_per_schema").BeginArray();
    for (size_t arrived : deg.arrived_per_schema) {
      json.Int(static_cast<long long>(arrived));
    }
    json.EndArray();
    json.EndObject();
  } else {
    json.Key("degradation").Null();
  }

  if (run.exchange_config.has_value()) {
    const exchange::ExchangeConfigEcho& echo = *run.exchange_config;
    json.Key("exchange_config").BeginObject();
    json.Key("transport").String(echo.transport);
    json.Key("policy").String(echo.policy);
    json.Key("quorum").Int(static_cast<long long>(echo.quorum));
    json.Key("faults").BeginObject();
    json.Key("drop").Number(echo.faults.drop_probability);
    json.Key("delay").Number(echo.faults.delay_probability);
    json.Key("truncate").Number(echo.faults.truncate_probability);
    json.Key("corrupt").Number(echo.faults.corrupt_probability);
    json.Key("stale").Number(echo.faults.stale_probability);
    json.Key("base_latency_ms").Number(echo.faults.base_latency_ms);
    json.Key("delay_latency_ms").Number(echo.faults.delay_latency_ms);
    json.Key("seed").Int(static_cast<long long>(echo.faults.seed));
    json.Key("drop_from").Int(echo.faults.drop_from);
    // Emitted only when set, so pre-partition reports stay byte-stable.
    if (echo.faults.partition_from >= 0) {
      json.Key("partition_from").Int(echo.faults.partition_from);
    }
    json.EndObject();
    json.Key("retry").BeginObject();
    json.Key("max_attempts").Int(echo.retry.max_attempts);
    json.Key("initial_backoff_ms").Number(echo.retry.initial_backoff_ms);
    json.Key("backoff_multiplier").Number(echo.retry.backoff_multiplier);
    json.Key("max_backoff_ms").Number(echo.retry.max_backoff_ms);
    json.Key("jitter").Number(echo.retry.jitter);
    json.Key("deadline_ms").Number(echo.retry.deadline_ms);
    json.EndObject();
    json.Key("owners").BeginArray();
    for (const auto& [schema, worker] : echo.owners) {
      json.BeginObject();
      json.Key("schema").Int(schema);
      json.Key("worker").String(worker);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  } else {
    json.Key("exchange_config").Null();
  }

  if (run.metrics.has_value()) {
    json.Key("metrics");
    obs::SnapshotToJson(*run.metrics, json);
  } else {
    json.Key("metrics").Null();
  }

  if (!run.flight.empty()) {
    json.Key("flight_recorder").BeginArray();
    for (const obs::FlightEvent& event : run.flight) {
      json.BeginObject();
      json.Key("seq").Int(static_cast<long long>(event.seq));
      json.Key("kind").String(event.kind);
      json.Key("detail").String(event.detail);
      json.EndObject();
    }
    json.EndArray();
  } else {
    json.Key("flight_recorder").Null();
  }

  if (run.quality.has_value()) {
    json.Key("quality").BeginObject();
    json.Key("generated").Int(static_cast<long long>(run.quality->generated));
    json.Key("true_linkages")
        .Int(static_cast<long long>(run.quality->true_linkages));
    json.Key("ground_truth")
        .Int(static_cast<long long>(run.quality->ground_truth));
    json.Key("pair_quality").Number(run.quality->PairQuality());
    json.Key("pair_completeness").Number(run.quality->PairCompleteness());
    json.Key("f1").Number(run.quality->F1());
    json.Key("reduction_ratio").Number(run.quality->ReductionRatio());
    json.EndObject();
  } else {
    json.Key("quality").Null();
  }

  json.EndObject();
  return json.str();
}

}  // namespace colscope::pipeline
