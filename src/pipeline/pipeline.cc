#include "pipeline/pipeline.h"

#include "common/check.h"
#include "exchange/transport.h"
#include "scoping/collaborative.h"
#include "scoping/scoping.h"
#include "scoping/streamline.h"

namespace colscope::pipeline {

namespace {

/// Phase III over the simulated faulty transport: publish every fitted
/// model, fetch peers' models with retry, then apply the degradation
/// policy to whatever arrived. Fills `run.degradation` even when the
/// policy ultimately rejects the run's arrivals.
Result<std::vector<bool>> ScopeViaExchange(const scoping::SignatureSet& sigs,
                                           size_t num_schemas,
                                           const PipelineOptions& options,
                                           PipelineRun& run) {
  Result<std::vector<scoping::LocalModel>> models = scoping::FitLocalModels(
      sigs, num_schemas, options.explained_variance);
  if (!models.ok()) return models.status();

  exchange::InMemoryTransport transport{FaultInjector(options.exchange.faults)};
  Result<exchange::ExchangeResult> exchanged = exchange::ExchangeLocalModels(
      *models, transport, options.exchange.retry,
      options.exchange.faults.seed);
  if (!exchanged.ok()) return exchanged.status();

  run.degradation = exchange::BuildDegradationReport(
      *exchanged,
      scoping::DegradedPolicyToString(options.exchange.degraded.policy),
      num_schemas);
  return scoping::AssessAllSparse(sigs, num_schemas, exchanged->arrived,
                                  options.exchange.degraded);
}

}  // namespace

size_t PipelineRun::num_kept() const {
  size_t n = 0;
  for (bool k : keep) n += k;
  return n;
}

Pipeline::Pipeline(const embed::SentenceEncoder* encoder,
                   PipelineOptions options)
    : encoder_(encoder), options_(options) {
  COLSCOPE_CHECK(encoder_ != nullptr);
}

Result<PipelineRun> Pipeline::Run(const schema::SchemaSet& set,
                                  const matching::Matcher& matcher,
                                  const datasets::GroundTruth* truth) const {
  if (set.num_schemas() < 2) {
    return Status::InvalidArgument("matching needs at least two schemas");
  }
  if (options_.exchange.enabled &&
      options_.scoper != ScoperKind::kCollaborativePca) {
    return Status::InvalidArgument(
        "model-exchange simulation requires the collaborative pca scoper");
  }
  PipelineRun run;
  run.signatures = scoping::BuildSignatures(set, *encoder_);

  switch (options_.scoper) {
    case ScoperKind::kNone:
      run.keep.assign(run.signatures.size(), true);
      break;
    case ScoperKind::kCollaborativePca: {
      Result<std::vector<bool>> keep =
          options_.exchange.enabled
              ? ScopeViaExchange(run.signatures, set.num_schemas(), options_,
                                 run)
              : scoping::CollaborativeScoping(run.signatures,
                                              set.num_schemas(),
                                              options_.explained_variance);
      if (!keep.ok()) return keep.status();
      run.keep = std::move(keep).value();
      break;
    }
    case ScoperKind::kCollaborativeNeural: {
      Result<std::vector<bool>> keep = scoping::CollaborativeScopingNeural(
          run.signatures, set.num_schemas(), options_.neural);
      if (!keep.ok()) return keep.status();
      run.keep = std::move(keep).value();
      break;
    }
    case ScoperKind::kGlobalScoping: {
      if (options_.detector == nullptr) {
        return Status::InvalidArgument(
            "global scoping requires PipelineOptions::detector");
      }
      if (options_.keep_portion < 0.0 || options_.keep_portion > 1.0) {
        return Status::InvalidArgument("keep portion must be in [0, 1]");
      }
      run.keep = scoping::GlobalScoping(run.signatures, *options_.detector,
                                        options_.keep_portion);
      break;
    }
  }

  run.streamlined =
      scoping::BuildStreamlinedSchemas(set, run.signatures, run.keep);
  run.linkages = matcher.Match(run.signatures, run.keep);
  if (truth != nullptr) {
    run.quality = eval::EvaluateMatching(
        run.linkages, *truth,
        set.TableCartesianSize() + set.AttributeCartesianSize());
  }
  return run;
}

}  // namespace colscope::pipeline
