#include "pipeline/pipeline.h"

#include "common/check.h"
#include "scoping/collaborative.h"
#include "scoping/scoping.h"
#include "scoping/streamline.h"

namespace colscope::pipeline {

size_t PipelineRun::num_kept() const {
  size_t n = 0;
  for (bool k : keep) n += k;
  return n;
}

Pipeline::Pipeline(const embed::SentenceEncoder* encoder,
                   PipelineOptions options)
    : encoder_(encoder), options_(options) {
  COLSCOPE_CHECK(encoder_ != nullptr);
}

Result<PipelineRun> Pipeline::Run(const schema::SchemaSet& set,
                                  const matching::Matcher& matcher,
                                  const datasets::GroundTruth* truth) const {
  if (set.num_schemas() < 2) {
    return Status::InvalidArgument("matching needs at least two schemas");
  }
  PipelineRun run;
  run.signatures = scoping::BuildSignatures(set, *encoder_);

  switch (options_.scoper) {
    case ScoperKind::kNone:
      run.keep.assign(run.signatures.size(), true);
      break;
    case ScoperKind::kCollaborativePca: {
      Result<std::vector<bool>> keep = scoping::CollaborativeScoping(
          run.signatures, set.num_schemas(), options_.explained_variance);
      if (!keep.ok()) return keep.status();
      run.keep = std::move(keep).value();
      break;
    }
    case ScoperKind::kCollaborativeNeural: {
      Result<std::vector<bool>> keep = scoping::CollaborativeScopingNeural(
          run.signatures, set.num_schemas(), options_.neural);
      if (!keep.ok()) return keep.status();
      run.keep = std::move(keep).value();
      break;
    }
    case ScoperKind::kGlobalScoping: {
      if (options_.detector == nullptr) {
        return Status::InvalidArgument(
            "global scoping requires PipelineOptions::detector");
      }
      if (options_.keep_portion < 0.0 || options_.keep_portion > 1.0) {
        return Status::InvalidArgument("keep portion must be in [0, 1]");
      }
      run.keep = scoping::GlobalScoping(run.signatures, *options_.detector,
                                        options_.keep_portion);
      break;
    }
  }

  run.streamlined =
      scoping::BuildStreamlinedSchemas(set, run.signatures, run.keep);
  run.linkages = matcher.Match(run.signatures, run.keep);
  if (truth != nullptr) {
    run.quality = eval::EvaluateMatching(
        run.linkages, *truth,
        set.TableCartesianSize() + set.AttributeCartesianSize());
  }
  return run;
}

}  // namespace colscope::pipeline
