#include "pipeline/pipeline.h"

#include <chrono>
#include <optional>
#include <utility>

#include "cache/artifact_cache.h"
#include "cache/pipeline_cache.h"
#include "common/check.h"
#include "common/checksum.h"
#include "common/strings.h"
#include "exchange/transport.h"
#include "obs/log.h"
#include "pipeline/checkpoint.h"
#include "scoping/collaborative.h"
#include "scoping/model_io.h"
#include "scoping/scoping.h"
#include "scoping/signature_io.h"
#include "scoping/streamline.h"

namespace colscope::pipeline {

namespace {

/// RAII phase stopwatch: records the enclosing scope's duration into a
/// "pipeline.<phase>_ms" histogram. Measures on the tracer's clock when
/// one is present — a SimulatedTraceClock then makes the recorded
/// values (and therefore the metrics file) byte-deterministic — and on
/// std::chrono::steady_clock otherwise. Inert when `metrics` is null.
class PhaseTimer {
 public:
  PhaseTimer(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
             const char* phase)
      : metrics_(metrics), tracer_(tracer), phase_(phase) {
    if (metrics_ == nullptr) return;
    start_us_ = NowUs();
  }

  ~PhaseTimer() {
    if (metrics_ == nullptr) return;
    metrics_
        ->GetHistogram(StrFormat("pipeline.%s_ms", phase_),
                       obs::ExponentialBuckets(0.1, 4.0, 10))
        .Observe((NowUs() - start_us_) / 1000.0);
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double NowUs() {
    if (tracer_ != nullptr) return tracer_->clock().NowUs();
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;
  const char* phase_;
  double start_us_ = 0.0;
};

/// Phase III over the simulated faulty transport: publish every fitted
/// model, fetch peers' models with retry under the run's deadline and
/// cancellation token, then apply the degradation policy to whatever
/// arrived. Fills `run.degradation` even when the policy ultimately
/// rejects the run's arrivals or the exchange aborted early.
Result<std::vector<bool>> ScopeViaExchange(
    const scoping::SignatureSet& sigs, size_t num_schemas,
    const std::vector<scoping::LocalModel>& models,
    const PipelineOptions& options, const CancellationToken* cancel,
    Deadline run_deadline, PipelineRun& run) {
  exchange::InMemoryTransport transport{FaultInjector(options.exchange.faults)};
  Result<exchange::ExchangeResult> exchanged = [&] {
    obs::ScopedSpan span(options.tracer, "pipeline.exchange");
    span.AddArg("models", static_cast<long long>(models.size()));
    return exchange::ExchangeLocalModels(models, transport,
                                         options.exchange.retry,
                                         options.exchange.faults.seed,
                                         options.metrics, cancel,
                                         run_deadline);
  }();
  if (!exchanged.ok()) return exchanged.status();

  run.degradation = exchange::BuildDegradationReport(
      *exchanged,
      scoping::DegradedPolicyToString(options.exchange.degraded.policy),
      num_schemas);
  exchange::ExchangeConfigEcho echo;
  echo.transport = "in_memory";
  echo.faults = options.exchange.faults;
  echo.retry = options.exchange.retry;
  echo.policy =
      scoping::DegradedPolicyToString(options.exchange.degraded.policy);
  echo.quorum = options.exchange.degraded.quorum;
  run.exchange_config = std::move(echo);
  obs::ScopedSpan span(options.tracer, "pipeline.assess");
  return scoping::AssessAllSparse(sigs, num_schemas, exchanged->arrived,
                                  options.exchange.degraded,
                                  options.metrics);
}

}  // namespace

size_t PipelineRun::num_kept() const {
  size_t n = 0;
  for (bool k : keep) n += k;
  return n;
}

Pipeline::Pipeline(const embed::SentenceEncoder* encoder,
                   PipelineOptions options)
    : encoder_(encoder), options_(options) {
  COLSCOPE_CHECK(encoder_ != nullptr);
}

Result<PipelineRun> Pipeline::Run(const schema::SchemaSet& set,
                                  const matching::Matcher& matcher,
                                  const datasets::GroundTruth* truth) const {
  if (set.num_schemas() < 2) {
    return Status::InvalidArgument("matching needs at least two schemas");
  }
  if (options_.exchange.enabled &&
      options_.scoper != ScoperKind::kCollaborativePca) {
    return Status::InvalidArgument(
        "model-exchange simulation requires the collaborative pca scoper");
  }
  PipelineRun run;
  obs::ScopedSpan run_span(options_.tracer, "pipeline.run");
  run_span.AddArg("schemas", static_cast<long long>(set.num_schemas()));

  // Worker pool for the parallel phases: borrowed when the caller shared
  // one, private otherwise — and absent entirely in the default serial
  // configuration, which pays no thread start-up at all.
  std::optional<ThreadPool> private_pool;
  ThreadPool* pool = options_.pool;
  if (pool == nullptr && options_.num_threads != 1) {
    private_pool.emplace(options_.num_threads);
    pool = &*private_pool;
  }

  // Deadline and cancellation plumbing. The fallback clock lives on this
  // stack frame, so the derived Deadline (which borrows it) must not
  // outlive Run — it doesn't; copies only flow down the call stack.
  SystemRunClock fallback_clock;
  Deadline deadline;
  if (options_.deadline_ms > 0.0) {
    RunClock* clock =
        options_.clock != nullptr ? options_.clock : &fallback_clock;
    deadline = Deadline::After(clock, options_.deadline_ms);
  }

  std::optional<CheckpointStore> store;
  if (!options_.checkpoint_dir.empty()) {
    store.emplace(options_.checkpoint_dir,
                  ComputeRunFingerprint(set, options_), options_.metrics);
  }

  // Content-addressed artifact cache: either borrowed from the caller
  // (the resident server shares one across requests) or opened per run
  // (the deadline and cancel token are run-scoped), disabled with a
  // warning on failure.
  std::optional<cache::ArtifactCache> artifacts;
  std::optional<cache::PipelineCache> memo;
  cache::ArtifactCache* active_cache = options_.cache;
  if (active_cache == nullptr && !options_.cache_dir.empty()) {
    cache::ArtifactCacheOptions copts;
    copts.dir = options_.cache_dir;
    copts.max_bytes = options_.cache_max_bytes;
    copts.metrics = options_.metrics;
    copts.cancel = options_.cancel;
    copts.deadline = deadline;
    Result<cache::ArtifactCache> opened =
        cache::ArtifactCache::Open(std::move(copts));
    if (opened.ok()) {
      artifacts.emplace(std::move(opened).value());
      active_cache = &*artifacts;
    } else {
      COLSCOPE_LOG(Warn) << "artifact cache disabled: "
                         << opened.status().ToString();
    }
  }
  if (active_cache != nullptr) {
    memo.emplace(active_cache, encoder_, set,
                 Fnv1a64(SemanticOptionsString(options_)));
  }

  /// Non-OK when the run should stop at this phase boundary.
  const auto interrupted = [&]() -> Status {
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      if (options_.metrics != nullptr) {
        options_.metrics->GetCounter("pipeline.cancelled").Increment();
      }
      return Status::Cancelled("pipeline run cancelled");
    }
    if (deadline.expired()) {
      if (options_.metrics != nullptr) {
        options_.metrics->GetCounter("pipeline.deadline_exceeded")
            .Increment();
      }
      return Status::DeadlineExceeded(StrFormat(
          "pipeline run exceeded its %.17g ms deadline",
          options_.deadline_ms));
    }
    return Status::Ok();
  };

  /// Ends the run early but cleanly: completed phases' artifacts stay in
  /// `run`, the stop reason lands in run.status, and the metrics
  /// snapshot still happens so the partial report doubles as a profile.
  const auto finish_partial = [&](Status why) -> PipelineRun {
    COLSCOPE_LOG(Warn) << "pipeline run stopped early: " << why.ToString()
                       << " (completed " << run.phases_completed.size()
                       << " phases)";
    run.status = std::move(why);
    if (options_.metrics != nullptr) {
      run.metrics = options_.metrics->Snapshot();
    }
    return std::move(run);
  };

  /// Loads the payload of `phase` when resuming; nullopt (and a warning
  /// for anything but a clean miss) means recompute.
  const auto try_load = [&](CheckpointPhase phase)
      -> std::optional<std::string> {
    if (!options_.resume || !store.has_value()) return std::nullopt;
    Result<std::string> payload = store->Load(phase);
    if (!payload.ok()) {
      if (payload.status().code() != StatusCode::kNotFound) {
        COLSCOPE_LOG(Warn)
            << "cannot resume phase " << CheckpointPhaseToString(phase)
            << ": " << payload.status().ToString() << "; recomputing";
      }
      return std::nullopt;
    }
    return std::move(payload).value();
  };

  const auto mark_resumed = [&](CheckpointPhase phase) {
    ++run.phases_resumed;
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter("pipeline.phases_resumed").Increment();
    }
    COLSCOPE_LOG(Info) << "resumed phase " << CheckpointPhaseToString(phase)
                       << " from checkpoint in " << store->dir();
  };

  /// Persists a completed phase. Failures degrade to a warning — a run
  /// that cannot checkpoint should still finish.
  const auto maybe_write = [&](CheckpointPhase phase,
                               const std::string& payload) {
    if (!store.has_value()) return;
    const Status written = store->Write(phase, payload);
    if (!written.ok()) {
      COLSCOPE_LOG(Warn) << "checkpoint write failed: "
                         << written.ToString();
    }
  };

  /// The crash_after_phase test hook: fail exactly where a real crash
  /// would be nastiest — after the phase committed its checkpoint.
  const auto maybe_crash = [&](const char* phase) -> Status {
    if (options_.crash_after_phase == phase) {
      return Status::Internal(
          StrFormat("injected crash after phase %s", phase));
    }
    return Status::Ok();
  };

  // Phase I: signatures. Cancellation stays a phase-boundary affair
  // here: the encode runs to completion (its pool tasks write disjoint
  // rows), so the checkpoint below never sees a partial matrix.
  {
    PhaseTimer timer(options_.metrics, options_.tracer, "signatures");
    bool resumed = false;
    if (std::optional<std::string> payload =
            try_load(CheckpointPhase::kSignatures)) {
      Result<scoping::SignatureSet> sigs =
          scoping::DeserializeSignatureSet(*payload);
      if (sigs.ok()) {
        run.signatures = std::move(sigs).value();
        mark_resumed(CheckpointPhase::kSignatures);
        resumed = true;
      } else {
        COLSCOPE_LOG(Warn) << "signature checkpoint did not deserialize: "
                           << sigs.status().ToString() << "; recomputing";
      }
    }
    if (!resumed) {
      bool built = false;
      if (memo.has_value()) {
        Result<scoping::SignatureSet> sigs =
            memo->BuildSignatures(options_.tracer, pool);
        if (sigs.ok()) {
          run.signatures = std::move(sigs).value();
          built = true;
        } else {
          // Cancelled/DeadlineExceeded mid-lookup stops the run cleanly;
          // anything else falls through to the uncached build.
          if (Status stop = interrupted(); !stop.ok()) {
            return finish_partial(std::move(stop));
          }
          COLSCOPE_LOG(Warn) << "cached signature build failed: "
                             << sigs.status().ToString() << "; recomputing";
        }
      }
      if (!built) {
        run.signatures = scoping::BuildSignatures(set, *encoder_, {},
                                                  options_.tracer, pool);
      }
      maybe_write(CheckpointPhase::kSignatures,
                  scoping::SerializeSignatureSet(run.signatures));
    }
  }
  run.phases_completed.push_back("signatures");
  COLSCOPE_RETURN_IF_ERROR(maybe_crash("signatures"));
  if (Status stop = interrupted(); !stop.ok()) {
    return finish_partial(std::move(stop));
  }

  switch (options_.scoper) {
    case ScoperKind::kNone:
      run.keep.assign(run.signatures.size(), true);
      break;
    case ScoperKind::kCollaborativePca: {
      // Phase II: fit (or restore) the per-schema local models.
      std::vector<scoping::LocalModel> models;
      {
        PhaseTimer fit_timer(options_.metrics, options_.tracer,
                             "local_models");
        bool models_resumed = false;
        if (std::optional<std::string> payload =
                try_load(CheckpointPhase::kLocalModels)) {
          Result<std::vector<scoping::LocalModel>> loaded =
              scoping::DeserializeLocalModelSet(*payload);
          if (loaded.ok() && loaded->size() == set.num_schemas()) {
            models = std::move(loaded).value();
            mark_resumed(CheckpointPhase::kLocalModels);
            models_resumed = true;
          } else {
            COLSCOPE_LOG(Warn)
                << "local-model checkpoint did not deserialize: "
                << (loaded.ok() ? "schema count mismatch"
                                : loaded.status().ToString())
                << "; recomputing";
          }
        }
        if (!models_resumed) {
          Result<std::vector<scoping::LocalModel>> fitted =
              [&]() -> Result<std::vector<scoping::LocalModel>> {
            obs::ScopedSpan span(options_.tracer, "pipeline.fit_local_models");
            span.AddArg("schemas", static_cast<long long>(set.num_schemas()));
            if (memo.has_value()) {
              return memo->FitLocalModels(run.signatures,
                                          options_.explained_variance, pool,
                                          options_.cancel);
            }
            if (pool != nullptr) {
              // One fit task per schema on the shared pool. A cancel that
              // trips mid-fit surfaces as a Cancelled status handled below.
              return scoping::FitLocalModelsOnPool(
                  run.signatures, set.num_schemas(),
                  options_.explained_variance, *pool, options_.cancel);
            }
            return scoping::FitLocalModels(run.signatures, set.num_schemas(),
                                           options_.explained_variance);
          }();
          if (!fitted.ok()) {
            if (fitted.status().code() == StatusCode::kCancelled) {
              if (options_.metrics != nullptr) {
                options_.metrics->GetCounter("pipeline.cancelled").Increment();
              }
              return finish_partial(fitted.status());
            }
            if (fitted.status().code() == StatusCode::kDeadlineExceeded) {
              if (options_.metrics != nullptr) {
                options_.metrics->GetCounter("pipeline.deadline_exceeded")
                    .Increment();
              }
              return finish_partial(fitted.status());
            }
            return fitted.status();
          }
          models = std::move(fitted).value();
          maybe_write(CheckpointPhase::kLocalModels,
                      scoping::SerializeLocalModelSet(models));
        }
      }  // fit_timer scope
      run.phases_completed.push_back("local_models");
      COLSCOPE_RETURN_IF_ERROR(maybe_crash("local_models"));
      if (Status stop = interrupted(); !stop.ok()) {
        return finish_partial(std::move(stop));
      }

      // Phase III: assess linkability, over the faulty transport when
      // exchange simulation is on. The keep-mask checkpoint is only
      // trusted for fault-free runs: an exchange run replays phase III
      // from the (restored) models so the degradation report is
      // regenerated rather than lost.
      PhaseTimer assess_timer(options_.metrics, options_.tracer,
                              "keep_mask");
      bool keep_resumed = false;
      if (!options_.exchange.enabled) {
        if (std::optional<std::string> payload =
                try_load(CheckpointPhase::kKeepMask)) {
          Result<std::vector<bool>> mask =
              scoping::DeserializeKeepMask(*payload);
          if (mask.ok() && mask->size() == run.signatures.size()) {
            run.keep = std::move(mask).value();
            mark_resumed(CheckpointPhase::kKeepMask);
            keep_resumed = true;
          } else {
            COLSCOPE_LOG(Warn)
                << "keep-mask checkpoint did not deserialize: "
                << (mask.ok() ? "element count mismatch"
                              : mask.status().ToString())
                << "; recomputing";
          }
        }
      }
      if (!keep_resumed) {
        Result<std::vector<bool>> keep =
            [&]() -> Result<std::vector<bool>> {
          if (options_.exchange.enabled) {
            // Exchange runs never cache the keep mask — phase III must
            // replay over the faulty transport so the degradation report
            // reflects this run, mirroring the checkpoint policy above.
            return ScopeViaExchange(run.signatures, set.num_schemas(),
                                    models, options_, options_.cancel,
                                    deadline, run);
          }
          obs::ScopedSpan span(options_.tracer, "pipeline.assess");
          if (memo.has_value()) {
            return memo->AssessAll(run.signatures, models);
          }
          return scoping::AssessAll(run.signatures, set.num_schemas(),
                                    models);
        }();
        if (!keep.ok()) {
          // Only the cached lookup path stops cooperatively here; the
          // exchange path keeps its own error semantics untouched.
          if (!options_.exchange.enabled &&
              (keep.status().code() == StatusCode::kCancelled ||
               keep.status().code() == StatusCode::kDeadlineExceeded)) {
            if (options_.metrics != nullptr) {
              options_.metrics
                  ->GetCounter(keep.status().code() == StatusCode::kCancelled
                                   ? "pipeline.cancelled"
                                   : "pipeline.deadline_exceeded")
                  .Increment();
            }
            return finish_partial(keep.status());
          }
          return keep.status();
        }
        run.keep = std::move(keep).value();
        maybe_write(CheckpointPhase::kKeepMask,
                    scoping::SerializeKeepMask(run.keep));
      }
      break;
    }
    case ScoperKind::kCollaborativeNeural: {
      PhaseTimer assess_timer(options_.metrics, options_.tracer,
                              "keep_mask");
      obs::ScopedSpan span(options_.tracer, "pipeline.assess");
      Result<std::vector<bool>> keep = scoping::CollaborativeScopingNeural(
          run.signatures, set.num_schemas(), options_.neural);
      if (!keep.ok()) return keep.status();
      run.keep = std::move(keep).value();
      break;
    }
    case ScoperKind::kGlobalScoping: {
      if (options_.detector == nullptr) {
        return Status::InvalidArgument(
            "global scoping requires PipelineOptions::detector");
      }
      if (options_.keep_portion < 0.0 || options_.keep_portion > 1.0) {
        return Status::InvalidArgument("keep portion must be in [0, 1]");
      }
      PhaseTimer assess_timer(options_.metrics, options_.tracer,
                              "keep_mask");
      obs::ScopedSpan span(options_.tracer, "pipeline.assess");
      run.keep = scoping::GlobalScoping(run.signatures, *options_.detector,
                                        options_.keep_portion);
      break;
    }
  }
  run.phases_completed.push_back("keep_mask");
  COLSCOPE_RETURN_IF_ERROR(maybe_crash("keep_mask"));
  if (Status stop = interrupted(); !stop.ok()) {
    return finish_partial(std::move(stop));
  }

  {
    PhaseTimer timer(options_.metrics, options_.tracer, "streamline");
    obs::ScopedSpan span(options_.tracer, "pipeline.streamline");
    run.streamlined =
        scoping::BuildStreamlinedSchemas(set, run.signatures, run.keep);
    span.AddArg("kept", static_cast<long long>(run.num_kept()));
  }
  run.phases_completed.push_back("streamline");
  {
    PhaseTimer timer(options_.metrics, options_.tracer, "match");
    obs::ScopedSpan span(options_.tracer, "pipeline.match");
    bool matched = false;
    if (memo.has_value() && !matcher.BlockCacheId().empty()) {
      // Per-source-pair similarity blocks: only blocks touching a dirty
      // source (or a changed keep slice) recompute on a warm run.
      Result<std::set<matching::ElementPair>> linked =
          memo->Match(run.signatures, run.keep, matcher);
      if (linked.ok()) {
        run.linkages = std::move(linked).value();
        matched = true;
      } else {
        if (Status stop = interrupted(); !stop.ok()) {
          return finish_partial(std::move(stop));
        }
        COLSCOPE_LOG(Warn) << "cached match failed: "
                           << linked.status().ToString() << "; rematching";
      }
    }
    if (!matched) {
      run.linkages = matcher.Match(run.signatures, run.keep);
    }
    span.AddArg("linkages", static_cast<long long>(run.linkages.size()));
  }
  run.phases_completed.push_back("match");
  if (truth != nullptr) {
    PhaseTimer timer(options_.metrics, options_.tracer, "evaluate");
    obs::ScopedSpan span(options_.tracer, "pipeline.evaluate");
    run.quality = eval::EvaluateMatching(
        run.linkages, *truth,
        set.TableCartesianSize() + set.AttributeCartesianSize());
    run.phases_completed.push_back("evaluate");
  }

  run_span.AddArg("elements", static_cast<long long>(run.keep.size()));
  run_span.AddArg("kept", static_cast<long long>(run.num_kept()));
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *options_.metrics;
    metrics.GetGauge("pipeline.schemas")
        .Set(static_cast<double>(set.num_schemas()));
    metrics.GetGauge("pipeline.elements")
        .Set(static_cast<double>(run.keep.size()));
    metrics.GetGauge("pipeline.kept")
        .Set(static_cast<double>(run.num_kept()));
    metrics.GetGauge("pipeline.pruned")
        .Set(static_cast<double>(run.num_pruned()));
    metrics.GetGauge("pipeline.linkages")
        .Set(static_cast<double>(run.linkages.size()));
    run.metrics = metrics.Snapshot();
  }
  return run;
}

}  // namespace colscope::pipeline
