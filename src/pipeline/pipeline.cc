#include "pipeline/pipeline.h"

#include "common/check.h"
#include "exchange/transport.h"
#include "scoping/collaborative.h"
#include "scoping/scoping.h"
#include "scoping/streamline.h"

namespace colscope::pipeline {

namespace {

/// Phase III over the simulated faulty transport: publish every fitted
/// model, fetch peers' models with retry, then apply the degradation
/// policy to whatever arrived. Fills `run.degradation` even when the
/// policy ultimately rejects the run's arrivals.
Result<std::vector<bool>> ScopeViaExchange(const scoping::SignatureSet& sigs,
                                           size_t num_schemas,
                                           const PipelineOptions& options,
                                           PipelineRun& run) {
  Result<std::vector<scoping::LocalModel>> models = [&] {
    obs::ScopedSpan span(options.tracer, "pipeline.fit_local_models");
    span.AddArg("schemas", static_cast<long long>(num_schemas));
    return scoping::FitLocalModels(sigs, num_schemas,
                                   options.explained_variance);
  }();
  if (!models.ok()) return models.status();

  exchange::InMemoryTransport transport{FaultInjector(options.exchange.faults)};
  Result<exchange::ExchangeResult> exchanged = [&] {
    obs::ScopedSpan span(options.tracer, "pipeline.exchange");
    span.AddArg("models", static_cast<long long>(models->size()));
    return exchange::ExchangeLocalModels(*models, transport,
                                         options.exchange.retry,
                                         options.exchange.faults.seed,
                                         options.metrics);
  }();
  if (!exchanged.ok()) return exchanged.status();

  run.degradation = exchange::BuildDegradationReport(
      *exchanged,
      scoping::DegradedPolicyToString(options.exchange.degraded.policy),
      num_schemas);
  obs::ScopedSpan span(options.tracer, "pipeline.assess");
  return scoping::AssessAllSparse(sigs, num_schemas, exchanged->arrived,
                                  options.exchange.degraded,
                                  options.metrics);
}

}  // namespace

size_t PipelineRun::num_kept() const {
  size_t n = 0;
  for (bool k : keep) n += k;
  return n;
}

Pipeline::Pipeline(const embed::SentenceEncoder* encoder,
                   PipelineOptions options)
    : encoder_(encoder), options_(options) {
  COLSCOPE_CHECK(encoder_ != nullptr);
}

Result<PipelineRun> Pipeline::Run(const schema::SchemaSet& set,
                                  const matching::Matcher& matcher,
                                  const datasets::GroundTruth* truth) const {
  if (set.num_schemas() < 2) {
    return Status::InvalidArgument("matching needs at least two schemas");
  }
  if (options_.exchange.enabled &&
      options_.scoper != ScoperKind::kCollaborativePca) {
    return Status::InvalidArgument(
        "model-exchange simulation requires the collaborative pca scoper");
  }
  PipelineRun run;
  obs::ScopedSpan run_span(options_.tracer, "pipeline.run");
  run_span.AddArg("schemas", static_cast<long long>(set.num_schemas()));
  run.signatures =
      scoping::BuildSignatures(set, *encoder_, {}, options_.tracer);

  switch (options_.scoper) {
    case ScoperKind::kNone:
      run.keep.assign(run.signatures.size(), true);
      break;
    case ScoperKind::kCollaborativePca: {
      Result<std::vector<bool>> keep = [&]() -> Result<std::vector<bool>> {
        if (options_.exchange.enabled) {
          return ScopeViaExchange(run.signatures, set.num_schemas(),
                                  options_, run);
        }
        // Fault-free phases II + III, each under its own span.
        Result<std::vector<scoping::LocalModel>> models = [&] {
          obs::ScopedSpan span(options_.tracer, "pipeline.fit_local_models");
          span.AddArg("schemas",
                      static_cast<long long>(set.num_schemas()));
          return scoping::FitLocalModels(run.signatures, set.num_schemas(),
                                         options_.explained_variance);
        }();
        if (!models.ok()) return models.status();
        obs::ScopedSpan span(options_.tracer, "pipeline.assess");
        return scoping::AssessAll(run.signatures, set.num_schemas(),
                                  *models);
      }();
      if (!keep.ok()) return keep.status();
      run.keep = std::move(keep).value();
      break;
    }
    case ScoperKind::kCollaborativeNeural: {
      obs::ScopedSpan span(options_.tracer, "pipeline.assess");
      Result<std::vector<bool>> keep = scoping::CollaborativeScopingNeural(
          run.signatures, set.num_schemas(), options_.neural);
      if (!keep.ok()) return keep.status();
      run.keep = std::move(keep).value();
      break;
    }
    case ScoperKind::kGlobalScoping: {
      if (options_.detector == nullptr) {
        return Status::InvalidArgument(
            "global scoping requires PipelineOptions::detector");
      }
      if (options_.keep_portion < 0.0 || options_.keep_portion > 1.0) {
        return Status::InvalidArgument("keep portion must be in [0, 1]");
      }
      obs::ScopedSpan span(options_.tracer, "pipeline.assess");
      run.keep = scoping::GlobalScoping(run.signatures, *options_.detector,
                                        options_.keep_portion);
      break;
    }
  }

  {
    obs::ScopedSpan span(options_.tracer, "pipeline.streamline");
    run.streamlined =
        scoping::BuildStreamlinedSchemas(set, run.signatures, run.keep);
    span.AddArg("kept", static_cast<long long>(run.num_kept()));
  }
  {
    obs::ScopedSpan span(options_.tracer, "pipeline.match");
    run.linkages = matcher.Match(run.signatures, run.keep);
    span.AddArg("linkages", static_cast<long long>(run.linkages.size()));
  }
  if (truth != nullptr) {
    obs::ScopedSpan span(options_.tracer, "pipeline.evaluate");
    run.quality = eval::EvaluateMatching(
        run.linkages, *truth,
        set.TableCartesianSize() + set.AttributeCartesianSize());
  }

  run_span.AddArg("elements", static_cast<long long>(run.keep.size()));
  run_span.AddArg("kept", static_cast<long long>(run.num_kept()));
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *options_.metrics;
    metrics.GetGauge("pipeline.schemas")
        .Set(static_cast<double>(set.num_schemas()));
    metrics.GetGauge("pipeline.elements")
        .Set(static_cast<double>(run.keep.size()));
    metrics.GetGauge("pipeline.kept")
        .Set(static_cast<double>(run.num_kept()));
    metrics.GetGauge("pipeline.pruned")
        .Set(static_cast<double>(run.num_pruned()));
    metrics.GetGauge("pipeline.linkages")
        .Set(static_cast<double>(run.linkages.size()));
    run.metrics = metrics.Snapshot();
  }
  return run;
}

}  // namespace colscope::pipeline
