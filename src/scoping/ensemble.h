#ifndef COLSCOPE_SCOPING_ENSEMBLE_H_
#define COLSCOPE_SCOPING_ENSEMBLE_H_

#include <vector>

#include "common/status.h"
#include "scoping/signatures.h"

namespace colscope::scoping {

/// Ensemble collaborative scoping over several explained-variance
/// levels. Section 4.1 notes that "several encoder-decoders can be
/// constructed with different explained variance values v" — this
/// utility operationalizes that: the assessment runs once per v and an
/// element is kept when at least `min_votes` of the runs accept it.
///   min_votes = 1          -> union (recall-oriented)
///   min_votes = |levels|   -> intersection (precision-oriented)
///   majority               -> balanced
struct EnsembleOptions {
  std::vector<double> variance_levels = {0.9, 0.8, 0.7, 0.6, 0.5};
  size_t min_votes = 3;
};

/// Runs the ensemble; returns the voted keep-mask in row order.
Result<std::vector<bool>> EnsembleCollaborativeScoping(
    const SignatureSet& signatures, size_t num_schemas,
    const EnsembleOptions& options = {});

/// Per-element vote counts (how many variance levels accepted each
/// element); exposed so callers can derive score-like rankings.
Result<std::vector<size_t>> CollaborativeVotes(
    const SignatureSet& signatures, size_t num_schemas,
    const std::vector<double>& variance_levels);

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_ENSEMBLE_H_
