#ifndef COLSCOPE_SCOPING_NEURAL_COLLABORATIVE_H_
#define COLSCOPE_SCOPING_NEURAL_COLLABORATIVE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "nn/network.h"
#include "scoping/signatures.h"

namespace colscope::scoping {

/// Configuration of a neural local encoder-decoder. The bottleneck width
/// plays the role the explained-variance target v plays for the PCA
/// model: it bounds how much of the local signature variance the model
/// can memorize, i.e. its generalization level.
struct NeuralLocalModelOptions {
  std::vector<size_t> hidden_dims = {100, 10, 100};
  int epochs = 60;
  double learning_rate = 1e-3;
  size_t batch_size = 16;
  uint64_t seed = 0xc011ab;
};

/// Non-linear local encoder-decoder — the paper's stated future-work
/// extension ("extend encoder-decoders in order to recognize non-linear
/// signature patterns", Section 5). A small autoencoder MLP replaces the
/// PCA of Algorithm 1; Definition 3 (linkability range = max training
/// reconstruction MSE) and Definition 4 (a foreign element is linkable
/// iff some foreign model reconstructs it within that range) carry over
/// unchanged. Duck-type compatible with LocalModel for AssessLinkability.
class NeuralLocalModel {
 public:
  /// Trains the autoencoder on one schema's signatures (Algorithm 1 with
  /// a neural encoder-decoder).
  static Result<NeuralLocalModel> Fit(const linalg::Matrix& local_signatures,
                                      const NeuralLocalModelOptions& options,
                                      int schema_index);

  /// Per-row reconstruction MSE of foreign signatures.
  linalg::Vector ReconstructionErrors(const linalg::Matrix& signatures) const;

  double ReconstructionError(const linalg::Vector& signature) const;

  int schema_index() const { return schema_index_; }
  double linkability_range() const { return linkability_range_; }

 private:
  NeuralLocalModel(std::shared_ptr<nn::Mlp> net, double range,
                   int schema_index)
      : net_(std::move(net)),
        linkability_range_(range),
        schema_index_(schema_index) {}

  // shared_ptr so models stay copyable like the PCA LocalModel; the
  // network is immutable after Fit (Predict does not learn).
  std::shared_ptr<nn::Mlp> net_;
  double linkability_range_;
  int schema_index_;
};

/// Full collaborative scoping with neural local models: fits one
/// autoencoder per schema and runs the distributed assessment
/// (Algorithm 2). Returns the keep-mask in signature row order.
Result<std::vector<bool>> CollaborativeScopingNeural(
    const SignatureSet& signatures, size_t num_schemas,
    const NeuralLocalModelOptions& options = {});

/// Phase II only, exposed for sweeps over the options.
Result<std::vector<NeuralLocalModel>> FitNeuralLocalModels(
    const SignatureSet& signatures, size_t num_schemas,
    const NeuralLocalModelOptions& options);

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_NEURAL_COLLABORATIVE_H_
