#ifndef COLSCOPE_SCOPING_EXPLAIN_H_
#define COLSCOPE_SCOPING_EXPLAIN_H_

#include <string>
#include <vector>

#include "scoping/collaborative.h"

namespace colscope::scoping {

/// One foreign model's verdict on one element.
struct ModelVerdict {
  int schema_index = -1;          ///< Whose model judged.
  double reconstruction_error = 0.0;
  double linkability_range = 0.0;  ///< That model's l_k.
  bool accepted = false;           ///< error <= range (Definition 4).

  /// error / range: < 1 accepted; how close a rejection was to passing.
  double margin() const {
    return linkability_range > 0.0
               ? reconstruction_error / linkability_range
               : (reconstruction_error == 0.0 ? 0.0 : 1e12);
  }
};

/// Full audit record for one schema element: every foreign model's
/// verdict plus the overall keep decision. Addresses the paper's stated
/// limitation that "elements classified as unlinkable need to be
/// carefully evaluated" — this is the evaluation surface.
struct ElementExplanation {
  schema::ElementRef ref;
  std::string text;               ///< Serialized element.
  bool kept = false;
  std::vector<ModelVerdict> verdicts;

  /// The most favourable verdict (smallest margin); nullptr when the
  /// element's schema had no foreign models.
  const ModelVerdict* BestVerdict() const;
};

/// Runs Algorithm 2 with full bookkeeping: one explanation per element,
/// in signature row order. `models` are the fitted local models of all
/// schemas (each element is judged by every model of a different
/// schema).
std::vector<ElementExplanation> ExplainLinkability(
    const SignatureSet& signatures, const std::vector<LocalModel>& models);

/// Human-readable one-element report, e.g.
///   "pruned  OC-MySQL.payments.amount  best: M[OC-HANA] err=1.3e-03
///    range=8.2e-04 margin=1.59".
std::string FormatExplanation(const ElementExplanation& explanation,
                              const schema::SchemaSet& set);

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_EXPLAIN_H_
