#ifndef COLSCOPE_SCOPING_STREAMLINE_H_
#define COLSCOPE_SCOPING_STREAMLINE_H_

#include <vector>

#include "schema/schema_set.h"
#include "scoping/signatures.h"

namespace colscope::scoping {

/// Materializes the streamlined schemas S' = {S'_1, ..., S'_k}
/// (Definition 2) from a keep-mask in signature row order. An attribute
/// survives iff its element is kept; a table survives iff its table
/// element is kept OR it still contains surviving attributes (the table
/// shell is needed as a container — pruning it would orphan them).
schema::SchemaSet BuildStreamlinedSchemas(const schema::SchemaSet& original,
                                          const SignatureSet& signatures,
                                          const std::vector<bool>& keep);

/// Number of kept elements in the mask.
size_t CountKept(const std::vector<bool>& keep);

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_STREAMLINE_H_
