#include "scoping/calibration.h"

#include <algorithm>

#include "scoping/collaborative.h"

namespace colscope::scoping {

namespace {

double JaccardAgreement(const std::vector<bool>& a,
                        const std::vector<bool>& b) {
  size_t intersection = 0, uni = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    intersection += (a[i] && b[i]);
    uni += (a[i] || b[i]);
  }
  // Two empty masks agree perfectly.
  return uni == 0 ? 1.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

}  // namespace

Result<CalibrationResult> CalibrateVariance(const SignatureSet& signatures,
                                            size_t num_schemas,
                                            const std::vector<double>& grid) {
  if (grid.size() < 3) {
    return Status::InvalidArgument("calibration grid needs >= 3 values");
  }
  if (!std::is_sorted(grid.begin(), grid.end())) {
    return Status::InvalidArgument("calibration grid must be ascending");
  }

  std::vector<std::vector<bool>> masks;
  masks.reserve(grid.size());
  for (double v : grid) {
    Result<std::vector<bool>> keep =
        CollaborativeScoping(signatures, num_schemas, v);
    if (!keep.ok()) return keep.status();
    masks.push_back(std::move(keep).value());
  }

  CalibrationResult out;
  out.grid = grid;
  out.stabilities.assign(grid.size(), 0.0);
  double best = -1.0;
  for (size_t i = 1; i + 1 < grid.size(); ++i) {
    const double stability =
        0.5 * (JaccardAgreement(masks[i], masks[i - 1]) +
               JaccardAgreement(masks[i], masks[i + 1]));
    out.stabilities[i] = stability;
    // Prefer the higher v on ties: stricter pruning at equal stability.
    if (stability >= best) {
      best = stability;
      out.v = grid[i];
      out.stability = stability;
    }
  }
  return out;
}

}  // namespace colscope::scoping
