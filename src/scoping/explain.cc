#include "scoping/explain.h"

#include <algorithm>

#include "common/strings.h"

namespace colscope::scoping {

const ModelVerdict* ElementExplanation::BestVerdict() const {
  const ModelVerdict* best = nullptr;
  for (const ModelVerdict& v : verdicts) {
    if (best == nullptr || v.margin() < best->margin()) best = &v;
  }
  return best;
}

std::vector<ElementExplanation> ExplainLinkability(
    const SignatureSet& signatures, const std::vector<LocalModel>& models) {
  std::vector<ElementExplanation> out(signatures.size());
  for (size_t i = 0; i < signatures.size(); ++i) {
    out[i].ref = signatures.refs[i];
    out[i].text = signatures.texts[i];
  }
  for (const LocalModel& model : models) {
    const linalg::Vector errors =
        model.ReconstructionErrors(signatures.signatures);
    for (size_t i = 0; i < signatures.size(); ++i) {
      if (signatures.refs[i].schema == model.schema_index()) continue;
      ModelVerdict verdict;
      verdict.schema_index = model.schema_index();
      verdict.reconstruction_error = errors[i];
      verdict.linkability_range = model.linkability_range();
      verdict.accepted = errors[i] <= model.linkability_range();
      out[i].kept = out[i].kept || verdict.accepted;
      out[i].verdicts.push_back(verdict);
    }
  }
  return out;
}

std::string FormatExplanation(const ElementExplanation& explanation,
                              const schema::SchemaSet& set) {
  std::string out = explanation.kept ? "linkable " : "pruned   ";
  out += set.QualifiedName(explanation.ref);
  const ModelVerdict* best = explanation.BestVerdict();
  if (best != nullptr) {
    out += StrFormat("  best: M[%s] err=%.2e range=%.2e margin=%.2f",
                     set.schema(best->schema_index).name().c_str(),
                     best->reconstruction_error, best->linkability_range,
                     best->margin());
  } else {
    out += "  (no foreign models)";
  }
  return out;
}

}  // namespace colscope::scoping
