#include "scoping/io_util.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/strings.h"

namespace colscope::scoping::io {

bool ParseFiniteDouble(const std::string& token, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0' &&
         end != token.c_str() && std::isfinite(out);
}

bool ParseSize(const std::string& token, size_t& out) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') return false;
  out = static_cast<size_t>(value);
  return static_cast<unsigned long long>(out) == value;
}

Status ParseVectorLine(const std::string& line, size_t count,
                       linalg::Vector& out) {
  const std::vector<std::string> tokens = SplitString(line, " \t");
  if (tokens.size() != count) {
    return Status::InvalidArgument(
        StrFormat("expected %zu values, found %zu", count, tokens.size()));
  }
  out.resize(count);
  for (size_t i = 0; i < count; ++i) {
    if (!ParseFiniteDouble(tokens[i], out[i])) {
      return Status::InvalidArgument("malformed number: " + tokens[i]);
    }
  }
  return Status::Ok();
}

void AppendVector(std::string& out, const linalg::Vector& v) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ' ';
    out += StrFormat("%.17g", v[i]);
  }
  out += '\n';
}

}  // namespace colscope::scoping::io
