#include "scoping/signature_io.h"

#include <climits>
#include <cstdlib>
#include <sstream>

#include "common/strings.h"
#include "scoping/io_util.h"

namespace colscope::scoping {

namespace {

using io::AppendVector;
using io::ParseSize;
using io::ParseVectorLine;

constexpr char kSignatureHeader[] = "colscope-signature-set v1";
constexpr char kMaskHeader[] = "colscope-keep-mask v1";

// Checkpoints are read back from disk after arbitrary interference, so
// the declared shape bounds every allocation: element count and dims are
// capped individually and jointly before the matrix is sized.
constexpr size_t kMaxElements = size_t{1} << 20;
constexpr size_t kMaxDims = size_t{1} << 20;
constexpr size_t kMaxTotalValues = size_t{1} << 26;

/// Escapes a serialized element text for a single-line "text" record.
std::string EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Inverse of EscapeText; false on a dangling or unknown escape.
bool UnescapeText(const std::string& escaped, std::string& out) {
  out.clear();
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out.push_back(escaped[i]);
      continue;
    }
    if (i + 1 >= escaped.size()) return false;
    switch (escaped[++i]) {
      case '\\':
        out.push_back('\\');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        return false;
    }
  }
  return true;
}

/// Parses a decimal int in [-1, INT_MAX] (ElementRef uses -1 for "the
/// table itself" / "unset"); false on garbage or out-of-range values.
bool ParseRefIndex(const std::string& token, int& out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') return false;
  if (value < -1 || value > INT_MAX) return false;
  out = static_cast<int>(value);
  return true;
}

}  // namespace

std::string SerializeSignatureSet(const SignatureSet& set) {
  std::string out;
  out += kSignatureHeader;
  out += '\n';
  out += StrFormat("elements %zu\n", set.size());
  out += StrFormat("dims %zu\n", set.signatures.cols());
  for (const schema::ElementRef& ref : set.refs) {
    out += StrFormat("ref %d %d %d\n", ref.schema, ref.table, ref.attribute);
  }
  for (const std::string& text : set.texts) {
    out += "text ";
    out += EscapeText(text);
    out += '\n';
  }
  for (size_t r = 0; r < set.signatures.rows(); ++r) {
    out += "row ";
    AppendVector(out, set.signatures.Row(r));
  }
  return out;
}

Result<SignatureSet> DeserializeSignatureSet(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) ||
      StripAsciiWhitespace(line) != kSignatureHeader) {
    return Status::InvalidArgument(
        "missing or unsupported signature-set header");
  }

  size_t elements = 0, dims = 0;
  bool seen_elements = false, seen_dims = false;
  SignatureSet set;
  size_t refs_read = 0, texts_read = 0, rows_read = 0;

  while (std::getline(in, line)) {
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    const size_t space = stripped.find(' ');
    const std::string key(stripped.substr(0, space));
    const std::string value(
        space == std::string_view::npos ? "" : stripped.substr(space + 1));

    if (key == "elements") {
      if (seen_elements) {
        return Status::InvalidArgument("duplicate elements line");
      }
      if (!ParseSize(value, elements) || elements > kMaxElements) {
        return Status::InvalidArgument(
            StrFormat("elements must be in [0, %zu], got: %s", kMaxElements,
                      value.c_str()));
      }
      seen_elements = true;
    } else if (key == "dims") {
      if (seen_dims) return Status::InvalidArgument("duplicate dims line");
      if (!seen_elements) {
        return Status::InvalidArgument("elements must precede dims");
      }
      if (!ParseSize(value, dims) || dims > kMaxDims ||
          (elements > 0 && dims > 0 && dims > kMaxTotalValues / elements)) {
        return Status::InvalidArgument(
            StrFormat("dims out of range for %zu elements: %s", elements,
                      value.c_str()));
      }
      seen_dims = true;
      set.refs.reserve(elements);
      set.texts.reserve(elements);
      set.signatures = linalg::Matrix(elements, dims);
    } else if (key == "ref") {
      if (!seen_dims || refs_read >= elements) {
        return Status::InvalidArgument("more ref lines than elements");
      }
      const std::vector<std::string> tokens = SplitString(value, " \t");
      schema::ElementRef ref;
      if (tokens.size() != 3 || !ParseRefIndex(tokens[0], ref.schema) ||
          !ParseRefIndex(tokens[1], ref.table) ||
          !ParseRefIndex(tokens[2], ref.attribute)) {
        return Status::InvalidArgument("malformed ref line: " + value);
      }
      set.refs.push_back(ref);
      ++refs_read;
    } else if (key == "text") {
      if (!seen_dims || texts_read >= elements) {
        return Status::InvalidArgument("more text lines than elements");
      }
      // The raw (unstripped) remainder preserves interior whitespace; a
      // "text" record's payload starts right after the first space.
      const size_t key_at = line.find("text");
      const std::string payload = line.size() > key_at + 5
                                      ? line.substr(key_at + 5)
                                      : std::string();
      std::string unescaped;
      if (!UnescapeText(payload, unescaped)) {
        return Status::InvalidArgument("malformed text escape: " + value);
      }
      set.texts.push_back(std::move(unescaped));
      ++texts_read;
    } else if (key == "row") {
      if (!seen_dims || rows_read >= elements) {
        return Status::InvalidArgument("more row lines than elements");
      }
      linalg::Vector row;
      COLSCOPE_RETURN_IF_ERROR(ParseVectorLine(value, dims, row));
      set.signatures.SetRow(rows_read++, row);
    } else {
      return Status::InvalidArgument("unknown key: " + key);
    }
  }

  if (!seen_elements || !seen_dims) {
    return Status::InvalidArgument("missing elements/dims declaration");
  }
  if (refs_read != elements || texts_read != elements ||
      rows_read != elements) {
    return Status::InvalidArgument(StrFormat(
        "expected %zu refs/texts/rows, found %zu/%zu/%zu", elements,
        refs_read, texts_read, rows_read));
  }
  return set;
}

std::string SerializeKeepMask(const std::vector<bool>& keep) {
  std::string out;
  out += kMaskHeader;
  out += '\n';
  out += StrFormat("elements %zu\n", keep.size());
  out += "mask ";
  for (bool k : keep) out.push_back(k ? '1' : '0');
  out += '\n';
  return out;
}

Result<std::vector<bool>> DeserializeKeepMask(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || StripAsciiWhitespace(line) != kMaskHeader) {
    return Status::InvalidArgument("missing or unsupported keep-mask header");
  }
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("missing elements count");
  }
  std::vector<std::string> tokens =
      SplitString(StripAsciiWhitespace(line), " \t");
  size_t elements = 0;
  if (tokens.size() != 2 || tokens[0] != "elements" ||
      !ParseSize(tokens[1], elements) || elements > kMaxElements) {
    return Status::InvalidArgument("malformed elements count line");
  }
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("missing mask line");
  }
  const std::string_view mask_line = StripAsciiWhitespace(line);
  if (!StartsWith(mask_line, "mask")) {
    return Status::InvalidArgument("missing mask line");
  }
  const std::string_view bits =
      elements == 0 ? std::string_view() : mask_line.substr(5);
  if (elements > 0 && (mask_line.size() < 5 || mask_line[4] != ' ')) {
    return Status::InvalidArgument("malformed mask line");
  }
  if (bits.size() != elements) {
    return Status::InvalidArgument(
        StrFormat("mask declares %zu elements, found %zu bits", elements,
                  bits.size()));
  }
  std::vector<bool> keep(elements, false);
  for (size_t i = 0; i < elements; ++i) {
    if (bits[i] == '1') {
      keep[i] = true;
    } else if (bits[i] != '0') {
      return Status::InvalidArgument(
          StrFormat("mask bit %zu is not 0/1", i));
    }
  }
  while (std::getline(in, line)) {
    if (!StripAsciiWhitespace(line).empty()) {
      return Status::InvalidArgument("trailing garbage after mask");
    }
  }
  return keep;
}

}  // namespace colscope::scoping
