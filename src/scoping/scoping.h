#ifndef COLSCOPE_SCOPING_SCOPING_H_
#define COLSCOPE_SCOPING_SCOPING_H_

#include <vector>

#include "linalg/matrix.h"
#include "outlier/oda.h"
#include "scoping/signatures.h"

namespace colscope::scoping {

/// Global *Scoping* baseline (Section 2.4, Traeger et al. 2025):
/// (1) rank all signatures with one ODA over the unified set,
/// (2) sort ascending by outlier score,
/// (3) keep the p-portion with the lowest scores as linkable.
///
/// Returns a keep-mask aligned with `scores`: keep[i] == true means
/// element i is predicted linkable. p = 1 keeps everything (S' == S);
/// p = 0 keeps nothing (S' empty). Ties broken by original index
/// (stable), matching a stable sort over (score, index).
std::vector<bool> ScopeByScores(const linalg::Vector& scores, double p);

/// Convenience: runs `detector` on the unified signature matrix and
/// scopes with threshold p.
std::vector<bool> GlobalScoping(const SignatureSet& signatures,
                                const outlier::OutlierDetector& detector,
                                double p);

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_SCOPING_H_
