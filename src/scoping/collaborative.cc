#include "scoping/collaborative.h"

#include <algorithm>
#include <optional>

#include "common/thread_pool.h"
#include "linalg/stats.h"

namespace colscope::scoping {

Result<LocalModel> LocalModel::Fit(const linalg::Matrix& local_signatures,
                                   double v, int schema_index) {
  if (local_signatures.rows() == 0) {
    return Status::InvalidArgument("schema has no signatures");
  }
  Result<linalg::PcaModel> pca =
      linalg::PcaModel::FitWithVariance(local_signatures, v);
  if (!pca.ok()) return pca.status();

  // Definition 3: l_k = max training reconstruction error.
  const linalg::Vector errors = pca->ReconstructionErrors(local_signatures);
  const double range = *std::max_element(errors.begin(), errors.end());
  return LocalModel(std::move(pca).value(), range, schema_index);
}

Result<LocalModel> LocalModel::FromParts(linalg::PcaModel pca,
                                         double linkability_range,
                                         int schema_index) {
  if (linkability_range < 0.0) {
    return Status::InvalidArgument("linkability range must be >= 0");
  }
  return LocalModel(std::move(pca), linkability_range, schema_index);
}

double LocalModel::ReconstructionError(
    const linalg::Vector& signature) const {
  return pca_.ReconstructionError(signature);
}

linalg::Vector LocalModel::ReconstructionErrors(
    const linalg::Matrix& signatures) const {
  return pca_.ReconstructionErrors(signatures);
}

bool LocalModel::Recognizes(const linalg::Vector& signature) const {
  return ReconstructionError(signature) <= linkability_range_;
}

std::vector<bool> AssessLinkability(const linalg::Matrix& local_signatures,
                                    int own_schema_index,
                                    const std::vector<LocalModel>& models) {
  std::vector<bool> linkable(local_signatures.rows(), false);
  for (const LocalModel& model : models) {
    if (model.schema_index() == own_schema_index) continue;
    const linalg::Vector errors =
        model.ReconstructionErrors(local_signatures);
    for (size_t i = 0; i < errors.size(); ++i) {
      if (errors[i] <= model.linkability_range()) linkable[i] = true;
    }
  }
  return linkable;
}

Result<std::vector<LocalModel>> FitLocalModels(const SignatureSet& signatures,
                                               size_t num_schemas, double v) {
  std::vector<LocalModel> models;
  models.reserve(num_schemas);
  for (size_t s = 0; s < num_schemas; ++s) {
    Result<LocalModel> model = LocalModel::Fit(
        signatures.SchemaSignatures(static_cast<int>(s)), v,
        static_cast<int>(s));
    if (!model.ok()) return model.status();
    models.push_back(std::move(model).value());
  }
  return models;
}

Result<std::vector<LocalModel>> FitLocalModelsParallel(
    const SignatureSet& signatures, size_t num_schemas, double v,
    size_t num_threads) {
  std::vector<std::optional<LocalModel>> slots(num_schemas);
  std::vector<Status> statuses(num_schemas);
  {
    ThreadPool pool(num_threads);
    pool.ParallelFor(num_schemas, [&](size_t s) {
      Result<LocalModel> model = LocalModel::Fit(
          signatures.SchemaSignatures(static_cast<int>(s)), v,
          static_cast<int>(s));
      if (model.ok()) {
        slots[s] = std::move(model).value();
      } else {
        statuses[s] = model.status();
      }
    });
  }
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  std::vector<LocalModel> models;
  models.reserve(num_schemas);
  for (auto& slot : slots) models.push_back(std::move(*slot));
  return models;
}

std::vector<bool> AssessAll(const SignatureSet& signatures,
                            size_t num_schemas,
                            const std::vector<LocalModel>& models) {
  std::vector<bool> keep(signatures.size(), false);
  for (size_t s = 0; s < num_schemas; ++s) {
    const int schema = static_cast<int>(s);
    const std::vector<size_t> rows = signatures.RowsOfSchema(schema);
    const linalg::Matrix local = signatures.SchemaSignatures(schema);
    const std::vector<bool> linkable =
        AssessLinkability(local, schema, models);
    for (size_t i = 0; i < rows.size(); ++i) keep[rows[i]] = linkable[i];
  }
  return keep;
}

Result<std::vector<bool>> CollaborativeScoping(const SignatureSet& signatures,
                                               size_t num_schemas, double v) {
  Result<std::vector<LocalModel>> models =
      FitLocalModels(signatures, num_schemas, v);
  if (!models.ok()) return models.status();
  return AssessAll(signatures, num_schemas, *models);
}

}  // namespace colscope::scoping
