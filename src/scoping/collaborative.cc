#include "scoping/collaborative.h"

#include <algorithm>
#include <cstdlib>
#include <optional>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "linalg/stats.h"
#include "obs/metrics.h"
#include "obs/thread_pool_metrics.h"

namespace colscope::scoping {

Result<LocalModel> LocalModel::Fit(const linalg::Matrix& local_signatures,
                                   double v, int schema_index) {
  if (local_signatures.rows() == 0) {
    return Status::InvalidArgument("schema has no signatures");
  }
  Result<linalg::PcaModel> pca =
      linalg::PcaModel::FitWithVariance(local_signatures, v);
  if (!pca.ok()) return pca.status();

  // Definition 3: l_k = max training reconstruction error.
  const linalg::Vector errors = pca->ReconstructionErrors(local_signatures);
  const double range = *std::max_element(errors.begin(), errors.end());
  return LocalModel(std::move(pca).value(), range, schema_index);
}

Result<LocalModel> LocalModel::FromParts(linalg::PcaModel pca,
                                         double linkability_range,
                                         int schema_index) {
  if (linkability_range < 0.0) {
    return Status::InvalidArgument("linkability range must be >= 0");
  }
  return LocalModel(std::move(pca), linkability_range, schema_index);
}

double LocalModel::ReconstructionError(
    const linalg::Vector& signature) const {
  return pca_.ReconstructionError(signature);
}

linalg::Vector LocalModel::ReconstructionErrors(
    const linalg::Matrix& signatures) const {
  return pca_.ReconstructionErrors(signatures);
}

bool LocalModel::Recognizes(const linalg::Vector& signature) const {
  return ReconstructionError(signature) <= linkability_range_;
}

std::vector<bool> AssessLinkability(const linalg::Matrix& local_signatures,
                                    int own_schema_index,
                                    const std::vector<LocalModel>& models) {
  std::vector<bool> linkable(local_signatures.rows(), false);
  for (const LocalModel& model : models) {
    if (model.schema_index() == own_schema_index) continue;
    const linalg::Vector errors =
        model.ReconstructionErrors(local_signatures);
    for (size_t i = 0; i < errors.size(); ++i) {
      if (errors[i] <= model.linkability_range()) linkable[i] = true;
    }
  }
  return linkable;
}

const char* DegradedPolicyToString(DegradedPolicy policy) {
  switch (policy) {
    case DegradedPolicy::kFailClosed:
      return "fail_closed";
    case DegradedPolicy::kKeepAll:
      return "keep_all";
    case DegradedPolicy::kQuorum:
      return "quorum";
  }
  return "unknown";
}

Result<DegradedOptions> ParseDegradedPolicy(const std::string& spec) {
  DegradedOptions options;
  if (spec == "fail-closed" || spec == "fail_closed") {
    options.policy = DegradedPolicy::kFailClosed;
    return options;
  }
  if (spec == "keep-all" || spec == "keep_all") {
    options.policy = DegradedPolicy::kKeepAll;
    return options;
  }
  const std::string quorum_prefix = "quorum";
  if (spec.rfind(quorum_prefix, 0) == 0) {
    options.policy = DegradedPolicy::kQuorum;
    options.quorum = 1;
    if (spec.size() > quorum_prefix.size()) {
      if (spec[quorum_prefix.size()] != ':') {
        return Status::InvalidArgument("malformed quorum spec: " + spec);
      }
      const std::string count = spec.substr(quorum_prefix.size() + 1);
      char* end = nullptr;
      const long long q = std::strtoll(count.c_str(), &end, 10);
      if (end == count.c_str() || *end != '\0' || q < 1) {
        return Status::InvalidArgument("quorum must be a positive integer: " +
                                       spec);
      }
      options.quorum = static_cast<size_t>(q);
    }
    return options;
  }
  return Status::InvalidArgument(
      "unknown exchange policy (want fail-closed|keep-all|quorum[:N]): " +
      spec);
}

Result<std::vector<bool>> AssessLinkabilityDegraded(
    const linalg::Matrix& local_signatures, int own_schema_index,
    const std::vector<LocalModel>& arrived, size_t expected_peers,
    const DegradedOptions& options) {
  size_t foreign = 0;
  for (const LocalModel& model : arrived) {
    if (model.schema_index() != own_schema_index) ++foreign;
  }
  switch (options.policy) {
    case DegradedPolicy::kFailClosed:
      if (foreign < expected_peers) {
        return Status::Unavailable(StrFormat(
            "schema %d reached only %zu of %zu peer models "
            "(policy fail_closed)",
            own_schema_index, foreign, expected_peers));
      }
      break;
    case DegradedPolicy::kKeepAll:
      if (foreign == 0) {
        // All peers unreachable: fall back to the traditional pipeline
        // for this schema — keep every element (Figure 2, no pruning).
        return std::vector<bool>(local_signatures.rows(), true);
      }
      break;
    case DegradedPolicy::kQuorum:
      if (foreign < options.quorum) {
        return Status::Unavailable(StrFormat(
            "schema %d reached only %zu peer models, quorum is %zu",
            own_schema_index, foreign, options.quorum));
      }
      break;
  }
  return AssessLinkability(local_signatures, own_schema_index, arrived);
}

Result<std::vector<LocalModel>> FitLocalModels(const SignatureSet& signatures,
                                               size_t num_schemas, double v) {
  std::vector<LocalModel> models;
  models.reserve(num_schemas);
  for (size_t s = 0; s < num_schemas; ++s) {
    Result<LocalModel> model = LocalModel::Fit(
        signatures.SchemaSignatures(static_cast<int>(s)), v,
        static_cast<int>(s));
    if (!model.ok()) return model.status();
    models.push_back(std::move(model).value());
  }
  return models;
}

Result<std::vector<LocalModel>> FitLocalModelsOnPool(
    const SignatureSet& signatures, size_t num_schemas, double v,
    ThreadPool& pool, const CancellationToken* cancel) {
  std::vector<std::optional<LocalModel>> slots(num_schemas);
  std::vector<Status> statuses(num_schemas);
  const Status pool_status = pool.ParallelFor(
      num_schemas,
      [&](size_t s) {
        Result<LocalModel> model = LocalModel::Fit(
            signatures.SchemaSignatures(static_cast<int>(s)), v,
            static_cast<int>(s));
        if (model.ok()) {
          slots[s] = std::move(model).value();
        } else {
          statuses[s] = model.status();
        }
      },
      cancel);
  if (!pool_status.ok()) return pool_status;
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  std::vector<LocalModel> models;
  models.reserve(num_schemas);
  for (auto& slot : slots) models.push_back(std::move(*slot));
  return models;
}

Result<std::vector<LocalModel>> FitLocalModelsParallel(
    const SignatureSet& signatures, size_t num_schemas, double v,
    size_t num_threads, obs::MetricsRegistry* metrics,
    const CancellationToken* cancel) {
  std::optional<obs::ThreadPoolMetrics> pool_metrics;
  if (metrics != nullptr) pool_metrics.emplace(metrics, "scoping.fit_pool");
  ThreadPool pool(num_threads, pool_metrics ? &*pool_metrics : nullptr);
  return FitLocalModelsOnPool(signatures, num_schemas, v, pool, cancel);
}

std::vector<bool> AssessAll(const SignatureSet& signatures,
                            size_t num_schemas,
                            const std::vector<LocalModel>& models) {
  std::vector<bool> keep(signatures.size(), false);
  for (size_t s = 0; s < num_schemas; ++s) {
    const int schema = static_cast<int>(s);
    const std::vector<size_t> rows = signatures.RowsOfSchema(schema);
    const linalg::Matrix local = signatures.SchemaSignatures(schema);
    const std::vector<bool> linkable =
        AssessLinkability(local, schema, models);
    for (size_t i = 0; i < rows.size(); ++i) keep[rows[i]] = linkable[i];
  }
  return keep;
}

Result<std::vector<bool>> AssessAllSparse(
    const SignatureSet& signatures, size_t num_schemas,
    const std::vector<std::vector<LocalModel>>& arrived_per_schema,
    const DegradedOptions& options, obs::MetricsRegistry* metrics) {
  if (arrived_per_schema.size() != num_schemas) {
    return Status::InvalidArgument(
        StrFormat("expected %zu per-schema model sets, got %zu", num_schemas,
                  arrived_per_schema.size()));
  }
  std::vector<bool> keep(signatures.size(), false);
  const size_t expected_peers = num_schemas > 0 ? num_schemas - 1 : 0;
  for (size_t s = 0; s < num_schemas; ++s) {
    const int schema = static_cast<int>(s);
    const std::vector<size_t> rows = signatures.RowsOfSchema(schema);
    const linalg::Matrix local = signatures.SchemaSignatures(schema);
    Result<std::vector<bool>> linkable = AssessLinkabilityDegraded(
        local, schema, arrived_per_schema[s], expected_peers, options);
    if (!linkable.ok()) return linkable.status();
    for (size_t i = 0; i < rows.size(); ++i) keep[rows[i]] = (*linkable)[i];
  }
  if (metrics != nullptr) {
    const char* policy = DegradedPolicyToString(options.policy);
    size_t kept = 0;
    for (bool k : keep) kept += k;
    metrics->GetCounter(StrFormat("scoping.kept.%s", policy))
        .Increment(kept);
    metrics->GetCounter(StrFormat("scoping.pruned.%s", policy))
        .Increment(keep.size() - kept);
  }
  return keep;
}

Result<std::vector<bool>> CollaborativeScoping(const SignatureSet& signatures,
                                               size_t num_schemas, double v) {
  Result<std::vector<LocalModel>> models =
      FitLocalModels(signatures, num_schemas, v);
  if (!models.ok()) return models.status();
  return AssessAll(signatures, num_schemas, *models);
}

}  // namespace colscope::scoping
