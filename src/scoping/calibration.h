#ifndef COLSCOPE_SCOPING_CALIBRATION_H_
#define COLSCOPE_SCOPING_CALIBRATION_H_

#include <vector>

#include "common/status.h"
#include "scoping/signatures.h"

namespace colscope::scoping {

/// Unsupervised selection of the global explained variance v — the
/// knob Section 4.4 discusses ("the ideal value for v is unknown and
/// varies between the matching scenarios"; experiments put the sweet
/// spot in [0.6, 0.95]). The heuristic: sweep v over `grid` and pick
/// the value whose keep-mask is most *stable* under perturbation of v
/// (highest mean Jaccard agreement with its grid neighbours). Plateaus
/// of the kept-set indicate a scale at which the linkable core is
/// insensitive to the generalization level — fluctuation zones (Figures
/// 5b/6b) are avoided.
struct CalibrationResult {
  double v = 0.8;
  double stability = 0.0;  ///< Mean neighbour Jaccard at the chosen v.
  std::vector<double> grid;
  std::vector<double> stabilities;  ///< Aligned with grid (ends = 0-pad).
};

/// Runs the sweep and returns the most stable v. `grid` must be sorted
/// ascending with at least 3 values; the default covers the paper's
/// recommended band.
Result<CalibrationResult> CalibrateVariance(
    const SignatureSet& signatures, size_t num_schemas,
    const std::vector<double>& grid = {0.5, 0.55, 0.6, 0.65, 0.7, 0.75,
                                       0.8, 0.85, 0.9, 0.95});

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_CALIBRATION_H_
