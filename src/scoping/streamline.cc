#include "scoping/streamline.h"

#include <map>
#include <set>

#include "common/check.h"

namespace colscope::scoping {

size_t CountKept(const std::vector<bool>& keep) {
  size_t n = 0;
  for (bool k : keep) n += k;
  return n;
}

schema::SchemaSet BuildStreamlinedSchemas(const schema::SchemaSet& original,
                                          const SignatureSet& signatures,
                                          const std::vector<bool>& keep) {
  COLSCOPE_CHECK(signatures.size() == keep.size());

  // Collect kept element refs per schema.
  std::set<schema::ElementRef> kept_refs;
  for (size_t i = 0; i < keep.size(); ++i) {
    if (keep[i]) kept_refs.insert(signatures.refs[i]);
  }

  std::vector<schema::Schema> streamlined;
  for (size_t s = 0; s < original.num_schemas(); ++s) {
    const schema::Schema& source = original.schema(static_cast<int>(s));
    schema::Schema out(source.name());
    for (size_t t = 0; t < source.tables().size(); ++t) {
      const schema::Table& table = source.tables()[t];
      schema::Table kept_table;
      kept_table.name = table.name;
      for (size_t a = 0; a < table.attributes.size(); ++a) {
        if (kept_refs.count(schema::AttributeRef(
                static_cast<int>(s), static_cast<int>(t),
                static_cast<int>(a))) > 0) {
          kept_table.attributes.push_back(table.attributes[a]);
        }
      }
      const bool table_kept =
          kept_refs.count(schema::TableRef(static_cast<int>(s),
                                           static_cast<int>(t))) > 0;
      if (table_kept || !kept_table.attributes.empty()) {
        COLSCOPE_CHECK(out.AddTable(std::move(kept_table)).ok());
      }
    }
    streamlined.push_back(std::move(out));
  }
  return schema::SchemaSet(std::move(streamlined));
}

}  // namespace colscope::scoping
