#include "scoping/model_io.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/strings.h"

namespace colscope::scoping {

namespace {

constexpr char kHeader[] = "colscope-local-model v1";

/// Parses one double strictly; false on trailing garbage or range error.
bool ParseDouble(const std::string& token, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0' &&
         end != token.c_str();
}

/// Parses a line of `count` doubles into `out`.
Status ParseVectorLine(const std::string& line, size_t count,
                       linalg::Vector& out) {
  const std::vector<std::string> tokens = SplitString(line, " \t");
  if (tokens.size() != count) {
    return Status::InvalidArgument(
        StrFormat("expected %zu values, found %zu", count, tokens.size()));
  }
  out.resize(count);
  for (size_t i = 0; i < count; ++i) {
    if (!ParseDouble(tokens[i], out[i])) {
      return Status::InvalidArgument("malformed number: " + tokens[i]);
    }
  }
  return Status::Ok();
}

void AppendVector(std::string& out, const linalg::Vector& v) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ' ';
    out += StrFormat("%.17g", v[i]);
  }
  out += '\n';
}

}  // namespace

std::string SerializeLocalModel(const LocalModel& model) {
  const linalg::PcaModel& pca = model.pca();
  std::string out;
  out += kHeader;
  out += '\n';
  out += StrFormat("schema %d\n", model.schema_index());
  out += StrFormat("dims %zu\n", pca.dims());
  out += StrFormat("components %zu\n", pca.n_components());
  out += StrFormat("range %.17g\n", model.linkability_range());
  out += "mean ";
  AppendVector(out, pca.mean());
  for (size_t k = 0; k < pca.n_components(); ++k) {
    out += "pc ";
    AppendVector(out, pca.components().Row(k));
  }
  return out;
}

Result<LocalModel> DeserializeLocalModel(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  if (!std::getline(in, line) || StripAsciiWhitespace(line) != kHeader) {
    return Status::InvalidArgument("missing or unsupported model header");
  }

  int schema_index = -1;
  size_t dims = 0, components = 0;
  double range = -1.0;
  linalg::Vector mean;
  linalg::Matrix pcs;
  size_t pcs_read = 0;

  while (std::getline(in, line)) {
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    const size_t space = stripped.find(' ');
    const std::string key(stripped.substr(0, space));
    const std::string value(
        space == std::string_view::npos ? "" : stripped.substr(space + 1));

    if (key == "schema") {
      schema_index = std::atoi(value.c_str());
    } else if (key == "dims") {
      dims = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (key == "components") {
      components = static_cast<size_t>(std::atoll(value.c_str()));
      if (dims == 0) {
        return Status::InvalidArgument("dims must precede components");
      }
      pcs = linalg::Matrix(components, dims);
    } else if (key == "range") {
      if (!ParseDouble(value, range)) {
        return Status::InvalidArgument("malformed range: " + value);
      }
    } else if (key == "mean") {
      if (dims == 0) {
        return Status::InvalidArgument("dims must precede mean");
      }
      COLSCOPE_RETURN_IF_ERROR(ParseVectorLine(value, dims, mean));
    } else if (key == "pc") {
      if (pcs_read >= components) {
        return Status::InvalidArgument("more pc lines than components");
      }
      linalg::Vector row;
      COLSCOPE_RETURN_IF_ERROR(ParseVectorLine(value, dims, row));
      pcs.SetRow(pcs_read++, row);
    } else {
      return Status::InvalidArgument("unknown key: " + key);
    }
  }

  if (mean.size() != dims || dims == 0) {
    return Status::InvalidArgument("missing or malformed mean");
  }
  if (pcs_read != components || components == 0) {
    return Status::InvalidArgument(
        StrFormat("expected %zu pc lines, found %zu", components, pcs_read));
  }
  if (range < 0.0) {
    return Status::InvalidArgument("missing linkability range");
  }
  Result<linalg::PcaModel> pca =
      linalg::PcaModel::FromParts(std::move(mean), std::move(pcs));
  if (!pca.ok()) return pca.status();
  return LocalModel::FromParts(std::move(pca).value(), range, schema_index);
}

}  // namespace colscope::scoping
