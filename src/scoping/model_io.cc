#include "scoping/model_io.h"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <sstream>

#include "common/strings.h"
#include "scoping/io_util.h"

namespace colscope::scoping {

namespace {

using io::AppendVector;
using io::ParseFiniteDouble;
using io::ParseSize;
using io::ParseVectorLine;

constexpr char kHeader[] = "colscope-local-model v1";
constexpr char kSetHeader[] = "colscope-model-set v1";

// A deserialized model is exchanged over an untrusted transport, so its
// declared shape bounds what we are willing to allocate: dims and
// components are capped individually and jointly (the pc matrix is
// dims * components doubles) before any allocation happens.
constexpr size_t kMaxDims = size_t{1} << 20;
constexpr size_t kMaxComponents = size_t{1} << 16;
constexpr size_t kMaxTotalValues = size_t{1} << 24;
// Sanity cap on the number of models one set may declare (one model per
// participating schema; far beyond any realistic federation).
constexpr size_t kMaxModelsPerSet = size_t{1} << 16;

/// Parses a decimal int in [-1, INT_MAX] (−1 is the "anonymous peer"
/// schema index); false on garbage or out-of-range values.
bool ParseSchemaIndex(const std::string& token, int& out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') return false;
  if (value < -1 || value > INT_MAX) return false;
  out = static_cast<int>(value);
  return true;
}

}  // namespace

std::string SerializeLocalModel(const LocalModel& model) {
  const linalg::PcaModel& pca = model.pca();
  std::string out;
  out += kHeader;
  out += '\n';
  out += StrFormat("schema %d\n", model.schema_index());
  out += StrFormat("dims %zu\n", pca.dims());
  out += StrFormat("components %zu\n", pca.n_components());
  out += StrFormat("range %.17g\n", model.linkability_range());
  out += "mean ";
  AppendVector(out, pca.mean());
  for (size_t k = 0; k < pca.n_components(); ++k) {
    out += "pc ";
    AppendVector(out, pca.components().Row(k));
  }
  return out;
}

Result<LocalModel> DeserializeLocalModel(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  if (!std::getline(in, line) || StripAsciiWhitespace(line) != kHeader) {
    return Status::InvalidArgument("missing or unsupported model header");
  }

  int schema_index = -1;
  size_t dims = 0, components = 0;
  double range = -1.0;
  bool seen_schema = false, seen_dims = false, seen_components = false,
       seen_range = false, seen_mean = false;
  linalg::Vector mean;
  linalg::Matrix pcs;
  size_t pcs_read = 0;

  while (std::getline(in, line)) {
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    const size_t space = stripped.find(' ');
    const std::string key(stripped.substr(0, space));
    const std::string value(
        space == std::string_view::npos ? "" : stripped.substr(space + 1));

    if (key == "schema") {
      if (seen_schema) {
        return Status::InvalidArgument("duplicate schema line");
      }
      if (!ParseSchemaIndex(value, schema_index)) {
        return Status::InvalidArgument("malformed schema index: " + value);
      }
      seen_schema = true;
    } else if (key == "dims") {
      if (seen_dims) return Status::InvalidArgument("duplicate dims line");
      if (!ParseSize(value, dims) || dims == 0 || dims > kMaxDims) {
        return Status::InvalidArgument(
            StrFormat("dims must be in [1, %zu], got: %s", kMaxDims,
                      value.c_str()));
      }
      seen_dims = true;
    } else if (key == "components") {
      if (seen_components) {
        return Status::InvalidArgument("duplicate components line");
      }
      if (!seen_dims) {
        return Status::InvalidArgument("dims must precede components");
      }
      if (!ParseSize(value, components) || components == 0 ||
          components > kMaxComponents ||
          components > kMaxTotalValues / dims) {
        return Status::InvalidArgument(
            StrFormat("components out of range for dims %zu: %s", dims,
                      value.c_str()));
      }
      seen_components = true;
      pcs = linalg::Matrix(components, dims);
    } else if (key == "range") {
      if (seen_range) return Status::InvalidArgument("duplicate range line");
      if (!ParseFiniteDouble(value, range) || range < 0.0) {
        return Status::InvalidArgument("malformed range: " + value);
      }
      seen_range = true;
    } else if (key == "mean") {
      if (seen_mean) return Status::InvalidArgument("duplicate mean line");
      if (!seen_dims) {
        return Status::InvalidArgument("dims must precede mean");
      }
      COLSCOPE_RETURN_IF_ERROR(ParseVectorLine(value, dims, mean));
      seen_mean = true;
    } else if (key == "pc") {
      if (!seen_components || pcs_read >= components) {
        return Status::InvalidArgument("more pc lines than components");
      }
      linalg::Vector row;
      COLSCOPE_RETURN_IF_ERROR(ParseVectorLine(value, dims, row));
      pcs.SetRow(pcs_read++, row);
    } else {
      return Status::InvalidArgument("unknown key: " + key);
    }
  }

  if (!seen_mean) {
    return Status::InvalidArgument("missing or malformed mean");
  }
  if (!seen_components || pcs_read != components) {
    return Status::InvalidArgument(
        StrFormat("expected %zu pc lines, found %zu", components, pcs_read));
  }
  if (!seen_range) {
    return Status::InvalidArgument("missing linkability range");
  }
  Result<linalg::PcaModel> pca =
      linalg::PcaModel::FromParts(std::move(mean), std::move(pcs));
  if (!pca.ok()) return pca.status();
  return LocalModel::FromParts(std::move(pca).value(), range, schema_index);
}

std::string SerializeLocalModelSet(const std::vector<LocalModel>& models) {
  std::string out;
  out += kSetHeader;
  out += '\n';
  out += StrFormat("models %zu\n", models.size());
  for (const LocalModel& model : models) {
    out += SerializeLocalModel(model);
  }
  return out;
}

Result<std::vector<LocalModel>> DeserializeLocalModelSet(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || StripAsciiWhitespace(line) != kSetHeader) {
    return Status::InvalidArgument("missing or unsupported model-set header");
  }
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("missing models count");
  }
  const std::vector<std::string> tokens =
      SplitString(StripAsciiWhitespace(line), " \t");
  size_t declared = 0;
  if (tokens.size() != 2 || tokens[0] != "models" ||
      !ParseSize(tokens[1], declared) || declared > kMaxModelsPerSet) {
    return Status::InvalidArgument("malformed models count line");
  }

  // Split the remainder on per-model header lines; each block is handed
  // to the (hardened) single-model parser.
  std::vector<std::string> blocks;
  std::string current;
  bool in_block = false;
  while (std::getline(in, line)) {
    if (StripAsciiWhitespace(line) == kHeader) {
      if (in_block) blocks.push_back(std::move(current));
      current.clear();
      in_block = true;
    } else if (!in_block && !StripAsciiWhitespace(line).empty()) {
      return Status::InvalidArgument(
          "garbage between models count and first model header");
    }
    if (in_block) {
      current += line;
      current += '\n';
    }
  }
  if (in_block) blocks.push_back(std::move(current));

  if (blocks.size() != declared) {
    return Status::InvalidArgument(
        StrFormat("model set declares %zu models, found %zu", declared,
                  blocks.size()));
  }
  std::vector<LocalModel> models;
  models.reserve(blocks.size());
  for (const std::string& block : blocks) {
    Result<LocalModel> model = DeserializeLocalModel(block);
    if (!model.ok()) return model.status();
    models.push_back(std::move(model).value());
  }
  return models;
}

}  // namespace colscope::scoping
