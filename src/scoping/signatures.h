#ifndef COLSCOPE_SCOPING_SIGNATURES_H_
#define COLSCOPE_SCOPING_SIGNATURES_H_

#include <string>
#include <vector>

#include "embed/encoder.h"
#include "linalg/matrix.h"
#include "schema/schema_set.h"
#include "schema/serialize.h"

namespace colscope {
class ThreadPool;
}  // namespace colscope

namespace colscope::obs {
class Tracer;
}  // namespace colscope::obs

namespace colscope::scoping {

/// Phase (I) output — the serialized and encoded schema elements of a
/// multi-source schema set. Row i of `signatures` is the signature of
/// `refs[i]`, whose serialized text is `texts[i]`; rows follow the
/// SchemaSet flattened order, so masks/labels/scores indexed by row align
/// with SchemaSet::elements().
struct SignatureSet {
  std::vector<schema::ElementRef> refs;
  std::vector<std::string> texts;
  linalg::Matrix signatures;

  size_t size() const { return refs.size(); }

  /// Row indices belonging to one schema.
  std::vector<size_t> RowsOfSchema(int schema_index) const;

  /// Signature submatrix of one schema (rows in flattened order).
  linalg::Matrix SchemaSignatures(int schema_index) const;
};

/// Serializes (T^a, T^t) and encodes (E) every element of `set` — the
/// "Local Signatures" phase applied to all schemas with the globally
/// agreed serialization and encoder (Section 3, phase I).
/// `serialize_options` controls instance-sample inclusion (off by
/// default, per the paper's metadata-only setting). A non-null `tracer`
/// wraps the two sub-stages in "pipeline.serialize" / "pipeline.embed"
/// spans annotated with element counts. A non-null `pool` encodes the
/// serialized elements in parallel; the signature matrix is
/// byte-identical to a serial build at any thread count (each worker
/// writes only its own row).
SignatureSet BuildSignatures(const schema::SchemaSet& set,
                             const embed::SentenceEncoder& encoder,
                             const schema::SerializeOptions&
                                 serialize_options = {},
                             obs::Tracer* tracer = nullptr,
                             ThreadPool* pool = nullptr);

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_SIGNATURES_H_
