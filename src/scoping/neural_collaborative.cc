#include "scoping/neural_collaborative.h"

#include <algorithm>

#include "linalg/stats.h"

namespace colscope::scoping {

Result<NeuralLocalModel> NeuralLocalModel::Fit(
    const linalg::Matrix& local_signatures,
    const NeuralLocalModelOptions& options, int schema_index) {
  if (local_signatures.rows() == 0) {
    return Status::InvalidArgument("schema has no signatures");
  }
  if (options.hidden_dims.empty()) {
    return Status::InvalidArgument("autoencoder needs >= 1 hidden layer");
  }

  std::vector<size_t> dims;
  dims.push_back(local_signatures.cols());
  dims.insert(dims.end(), options.hidden_dims.begin(),
              options.hidden_dims.end());
  dims.push_back(local_signatures.cols());

  // Mix the schema index into the seed so the distributed models are
  // independently initialized, like independently-owned deployments.
  auto net = std::make_shared<nn::Mlp>(
      dims, options.seed + 0x9e3779b9u * static_cast<uint64_t>(schema_index));
  nn::TrainOptions train;
  train.epochs = options.epochs;
  train.learning_rate = options.learning_rate;
  train.batch_size = options.batch_size;
  net->Fit(local_signatures, local_signatures, train);

  const linalg::Vector errors = linalg::RowwiseMse(
      local_signatures, net->Predict(local_signatures));
  const double range = *std::max_element(errors.begin(), errors.end());
  return NeuralLocalModel(std::move(net), range, schema_index);
}

linalg::Vector NeuralLocalModel::ReconstructionErrors(
    const linalg::Matrix& signatures) const {
  return linalg::RowwiseMse(signatures, net_->Predict(signatures));
}

double NeuralLocalModel::ReconstructionError(
    const linalg::Vector& signature) const {
  linalg::Matrix one(1, signature.size());
  one.SetRow(0, signature);
  return ReconstructionErrors(one)[0];
}

Result<std::vector<NeuralLocalModel>> FitNeuralLocalModels(
    const SignatureSet& signatures, size_t num_schemas,
    const NeuralLocalModelOptions& options) {
  std::vector<NeuralLocalModel> models;
  models.reserve(num_schemas);
  for (size_t s = 0; s < num_schemas; ++s) {
    Result<NeuralLocalModel> model = NeuralLocalModel::Fit(
        signatures.SchemaSignatures(static_cast<int>(s)), options,
        static_cast<int>(s));
    if (!model.ok()) return model.status();
    models.push_back(std::move(model).value());
  }
  return models;
}

Result<std::vector<bool>> CollaborativeScopingNeural(
    const SignatureSet& signatures, size_t num_schemas,
    const NeuralLocalModelOptions& options) {
  Result<std::vector<NeuralLocalModel>> models =
      FitNeuralLocalModels(signatures, num_schemas, options);
  if (!models.ok()) return models.status();

  std::vector<bool> keep(signatures.size(), false);
  for (size_t s = 0; s < num_schemas; ++s) {
    const int schema = static_cast<int>(s);
    const std::vector<size_t> rows = signatures.RowsOfSchema(schema);
    const linalg::Matrix local = signatures.SchemaSignatures(schema);
    for (const NeuralLocalModel& model : *models) {
      if (model.schema_index() == schema) continue;
      const linalg::Vector errors = model.ReconstructionErrors(local);
      for (size_t i = 0; i < rows.size(); ++i) {
        if (errors[i] <= model.linkability_range()) keep[rows[i]] = true;
      }
    }
  }
  return keep;
}

}  // namespace colscope::scoping
