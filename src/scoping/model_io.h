#ifndef COLSCOPE_SCOPING_MODEL_IO_H_
#define COLSCOPE_SCOPING_MODEL_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "scoping/collaborative.h"

namespace colscope::scoping {

/// Serializes a local model M_k = {mu_k, PC_k, l_k} to a portable text
/// format. This is the artifact organizations exchange in collaborative
/// scoping — the schemas themselves never leave their owner (Section 3,
/// phase III: "does not exchange tables and attributes among the
/// schemas, but the self-trained encoder-decoders").
///
/// Format (line oriented, locale-independent %.17g doubles):
///   colscope-local-model v1
///   schema <index>
///   dims <d>
///   components <n>
///   range <l_k>
///   mean <d doubles>
///   pc <d doubles>          (n lines, one principal component each)
std::string SerializeLocalModel(const LocalModel& model);

/// Parses a model serialized by SerializeLocalModel. Fails with
/// InvalidArgument on version/shape mismatches or malformed numbers.
Result<LocalModel> DeserializeLocalModel(const std::string& text);

/// Serializes the whole phase-II model set (one model per schema) as a
/// single artifact — the form the pipeline checkpoints between phases:
///   colscope-model-set v1
///   models <n>
///   <n SerializeLocalModel blocks>
std::string SerializeLocalModelSet(const std::vector<LocalModel>& models);

/// Parses a model set written by SerializeLocalModelSet with the same
/// hardened discipline as DeserializeLocalModel: a wrong header, a
/// declared count that does not match the blocks present, or any
/// malformed member model fails the whole set.
Result<std::vector<LocalModel>> DeserializeLocalModelSet(
    const std::string& text);

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_MODEL_IO_H_
