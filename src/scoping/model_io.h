#ifndef COLSCOPE_SCOPING_MODEL_IO_H_
#define COLSCOPE_SCOPING_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "scoping/collaborative.h"

namespace colscope::scoping {

/// Serializes a local model M_k = {mu_k, PC_k, l_k} to a portable text
/// format. This is the artifact organizations exchange in collaborative
/// scoping — the schemas themselves never leave their owner (Section 3,
/// phase III: "does not exchange tables and attributes among the
/// schemas, but the self-trained encoder-decoders").
///
/// Format (line oriented, locale-independent %.17g doubles):
///   colscope-local-model v1
///   schema <index>
///   dims <d>
///   components <n>
///   range <l_k>
///   mean <d doubles>
///   pc <d doubles>          (n lines, one principal component each)
std::string SerializeLocalModel(const LocalModel& model);

/// Parses a model serialized by SerializeLocalModel. Fails with
/// InvalidArgument on version/shape mismatches or malformed numbers.
Result<LocalModel> DeserializeLocalModel(const std::string& text);

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_MODEL_IO_H_
