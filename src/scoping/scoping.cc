#include "scoping/scoping.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace colscope::scoping {

std::vector<bool> ScopeByScores(const linalg::Vector& scores, double p) {
  COLSCOPE_CHECK(p >= 0.0 && p <= 1.0);
  const size_t n = scores.size();
  const size_t keep_count = static_cast<size_t>(
      std::llround(p * static_cast<double>(n)));

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  std::vector<bool> keep(n, false);
  for (size_t i = 0; i < std::min(keep_count, n); ++i) keep[order[i]] = true;
  return keep;
}

std::vector<bool> GlobalScoping(const SignatureSet& signatures,
                                const outlier::OutlierDetector& detector,
                                double p) {
  return ScopeByScores(detector.Scores(signatures.signatures), p);
}

}  // namespace colscope::scoping
