#ifndef COLSCOPE_SCOPING_IO_UTIL_H_
#define COLSCOPE_SCOPING_IO_UTIL_H_

#include <string>

#include "common/status.h"
#include "linalg/matrix.h"

namespace colscope::scoping::io {

/// Shared parsing discipline of the text artifacts this library
/// exchanges and checkpoints (local models, signature sets, keep masks).
/// Every artifact crosses an untrusted boundary — a faulty transport or
/// a half-written checkpoint — so parsing is strict: finite-only
/// numbers, no trailing garbage, overflow-checked sizes.

/// Parses one double strictly; false on trailing garbage, range error,
/// or non-finite value (NaN/Inf never appear in a valid artifact and
/// would poison every downstream computation).
bool ParseFiniteDouble(const std::string& token, double& out);

/// Parses a strictly non-negative decimal integer; false on sign,
/// trailing garbage, or overflow.
bool ParseSize(const std::string& token, size_t& out);

/// Parses a line of exactly `count` whitespace-separated doubles.
Status ParseVectorLine(const std::string& line, size_t count,
                       linalg::Vector& out);

/// Appends `v` as %.17g doubles (round-trip exact) plus a newline.
void AppendVector(std::string& out, const linalg::Vector& v);

}  // namespace colscope::scoping::io

#endif  // COLSCOPE_SCOPING_IO_UTIL_H_
