#ifndef COLSCOPE_SCOPING_SIGNATURE_IO_H_
#define COLSCOPE_SCOPING_SIGNATURE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "scoping/signatures.h"

namespace colscope::scoping {

/// Serializes a phase-I SignatureSet (refs, serialized texts, and the
/// signature matrix) to the checkpointable text format:
///   colscope-signature-set v1
///   elements <n>
///   dims <d>
///   ref <schema> <table> <attribute>     (n lines)
///   text <escaped serialized text>       (n lines; \n, \r, \\ escaped)
///   row <d doubles>                      (n lines, %.17g round-trip exact)
/// Doubles round-trip exactly, so a resumed run computes on bit-identical
/// signatures — the property the byte-identical-report guarantee needs.
std::string SerializeSignatureSet(const SignatureSet& set);

/// Parses a signature set with the same hardened discipline as the model
/// deserializer: finite-only numbers, overflow-checked allocation caps on
/// the declared shape, duplicate/trailing-garbage rejection.
Result<SignatureSet> DeserializeSignatureSet(const std::string& text);

/// Serializes a phase-III keep mask (linkability verdicts in signature
/// row order):
///   colscope-keep-mask v1
///   elements <n>
///   mask <n characters, each '0' or '1'>
std::string SerializeKeepMask(const std::vector<bool>& keep);

/// Parses a keep mask; fails on shape mismatch or any character outside
/// {'0','1'}.
Result<std::vector<bool>> DeserializeKeepMask(const std::string& text);

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_SIGNATURE_IO_H_
