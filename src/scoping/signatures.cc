#include "scoping/signatures.h"

#include "obs/trace.h"
#include "schema/serialize.h"

namespace colscope::scoping {

std::vector<size_t> SignatureSet::RowsOfSchema(int schema_index) const {
  std::vector<size_t> rows;
  for (size_t i = 0; i < refs.size(); ++i) {
    if (refs[i].schema == schema_index) rows.push_back(i);
  }
  return rows;
}

linalg::Matrix SignatureSet::SchemaSignatures(int schema_index) const {
  const std::vector<size_t> rows = RowsOfSchema(schema_index);
  linalg::Matrix out(rows.size(), signatures.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    out.SetRow(i, signatures.Row(rows[i]));
  }
  return out;
}

SignatureSet BuildSignatures(const schema::SchemaSet& set,
                             const embed::SentenceEncoder& encoder,
                             const schema::SerializeOptions&
                                 serialize_options,
                             obs::Tracer* tracer, ThreadPool* pool) {
  SignatureSet out;
  {
    obs::ScopedSpan span(tracer, "pipeline.serialize");
    for (size_t s = 0; s < set.num_schemas(); ++s) {
      const auto serialized =
          schema::SerializeSchema(set.schema(static_cast<int>(s)),
                                  static_cast<int>(s), serialize_options);
      for (const auto& element : serialized) {
        out.refs.push_back(element.ref);
        out.texts.push_back(element.text);
      }
    }
    span.AddArg("elements", static_cast<long long>(out.refs.size()));
  }
  {
    obs::ScopedSpan span(tracer, "pipeline.embed");
    out.signatures = encoder.EncodeAll(out.texts, pool);
    span.AddArg("elements", static_cast<long long>(out.refs.size()));
    span.AddArg("dims", static_cast<long long>(out.signatures.cols()));
  }
  return out;
}

}  // namespace colscope::scoping
