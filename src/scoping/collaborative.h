#ifndef COLSCOPE_SCOPING_COLLABORATIVE_H_
#define COLSCOPE_SCOPING_COLLABORATIVE_H_

#include <vector>

#include "common/status.h"
#include "linalg/pca.h"
#include "scoping/signatures.h"

namespace colscope::scoping {

/// The distributed local model M_k = {mu_k, PC_k, l_k} of Algorithm 1:
/// a PCA encoder-decoder fitted on one schema's own signatures at the
/// globally agreed explained-variance level v, plus the local
/// linkability range l_k (Definition 3 — the maximum training
/// reconstruction error). Only this model is exchanged between schemas,
/// never the signatures themselves.
class LocalModel {
 public:
  /// Algorithm 1: fits the encoder-decoder on `local_signatures` (the
  /// signatures of schema `schema_index`) with explained-variance target
  /// `v` in (0, 1].
  static Result<LocalModel> Fit(const linalg::Matrix& local_signatures,
                                double v, int schema_index);

  /// Reassembles a model from exchanged parts (see scoping/model_io.h).
  static Result<LocalModel> FromParts(linalg::PcaModel pca,
                                      double linkability_range,
                                      int schema_index);

  /// Reconstruction MSE of a foreign signature through this model
  /// (the M_m(e) score of Definition 4).
  double ReconstructionError(const linalg::Vector& signature) const;

  /// Per-row reconstruction MSE for a batch of foreign signatures.
  linalg::Vector ReconstructionErrors(const linalg::Matrix& signatures) const;

  /// Definition 4: true iff `signature` reconstructs within the local
  /// linkability range [0, l_k].
  bool Recognizes(const linalg::Vector& signature) const;

  int schema_index() const { return schema_index_; }
  double linkability_range() const { return linkability_range_; }
  const linalg::PcaModel& pca() const { return pca_; }

 private:
  LocalModel(linalg::PcaModel pca, double range, int schema_index)
      : pca_(std::move(pca)),
        linkability_range_(range),
        schema_index_(schema_index) {}

  linalg::PcaModel pca_;
  double linkability_range_;
  int schema_index_;
};

/// Algorithm 2 for one schema: assesses every row of `local_signatures`
/// against the models of the *other* schemas; a row is linkable if at
/// least one foreign model reconstructs it within its linkability range.
/// Models whose schema_index equals `own_schema_index` are skipped.
std::vector<bool> AssessLinkability(const linalg::Matrix& local_signatures,
                                    int own_schema_index,
                                    const std::vector<LocalModel>& models);

/// Full collaborative scoping (phases II + III) over a signature set:
/// fits one local model per schema at explained variance `v` and runs the
/// distributed linkability assessment. Returns the keep-mask in signature
/// row order (true = linkable, i.e. kept in the streamlined schemas S').
Result<std::vector<bool>> CollaborativeScoping(const SignatureSet& signatures,
                                               size_t num_schemas, double v);

/// The fitted models of phase II, exposed for callers that sweep v or
/// inspect n_comp / l_k per schema.
Result<std::vector<LocalModel>> FitLocalModels(const SignatureSet& signatures,
                                               size_t num_schemas, double v);

/// Phase II in parallel: one task per schema, mirroring the paper's
/// observation that "the computation of the self-supervised
/// encoder-decoder ... takes place in parallel at each local schema"
/// (Section 3). `num_threads` 0 uses the hardware concurrency. Result
/// order and content are identical to FitLocalModels.
Result<std::vector<LocalModel>> FitLocalModelsParallel(
    const SignatureSet& signatures, size_t num_schemas, double v,
    size_t num_threads = 0);

/// Phase III given prefitted models.
std::vector<bool> AssessAll(const SignatureSet& signatures,
                            size_t num_schemas,
                            const std::vector<LocalModel>& models);

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_COLLABORATIVE_H_
