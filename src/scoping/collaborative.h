#ifndef COLSCOPE_SCOPING_COLLABORATIVE_H_
#define COLSCOPE_SCOPING_COLLABORATIVE_H_

#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "linalg/pca.h"
#include "scoping/signatures.h"

namespace colscope {
class ThreadPool;
}  // namespace colscope

namespace colscope::obs {
class MetricsRegistry;
}  // namespace colscope::obs

namespace colscope::scoping {

/// The distributed local model M_k = {mu_k, PC_k, l_k} of Algorithm 1:
/// a PCA encoder-decoder fitted on one schema's own signatures at the
/// globally agreed explained-variance level v, plus the local
/// linkability range l_k (Definition 3 — the maximum training
/// reconstruction error). Only this model is exchanged between schemas,
/// never the signatures themselves.
class LocalModel {
 public:
  /// Algorithm 1: fits the encoder-decoder on `local_signatures` (the
  /// signatures of schema `schema_index`) with explained-variance target
  /// `v` in (0, 1].
  static Result<LocalModel> Fit(const linalg::Matrix& local_signatures,
                                double v, int schema_index);

  /// Reassembles a model from exchanged parts (see scoping/model_io.h).
  static Result<LocalModel> FromParts(linalg::PcaModel pca,
                                      double linkability_range,
                                      int schema_index);

  /// Reconstruction MSE of a foreign signature through this model
  /// (the M_m(e) score of Definition 4).
  double ReconstructionError(const linalg::Vector& signature) const;

  /// Per-row reconstruction MSE for a batch of foreign signatures.
  linalg::Vector ReconstructionErrors(const linalg::Matrix& signatures) const;

  /// Definition 4: true iff `signature` reconstructs within the local
  /// linkability range [0, l_k].
  bool Recognizes(const linalg::Vector& signature) const;

  int schema_index() const { return schema_index_; }
  double linkability_range() const { return linkability_range_; }
  const linalg::PcaModel& pca() const { return pca_; }

 private:
  LocalModel(linalg::PcaModel pca, double range, int schema_index)
      : pca_(std::move(pca)),
        linkability_range_(range),
        schema_index_(schema_index) {}

  linalg::PcaModel pca_;
  double linkability_range_;
  int schema_index_;
};

/// Algorithm 2 for one schema: assesses every row of `local_signatures`
/// against the models of the *other* schemas; a row is linkable if at
/// least one foreign model reconstructs it within its linkability range.
/// Models whose schema_index equals `own_schema_index` are skipped.
std::vector<bool> AssessLinkability(const linalg::Matrix& local_signatures,
                                    int own_schema_index,
                                    const std::vector<LocalModel>& models);

/// What collaborative scoping does when peer models are missing — e.g.
/// lost on the exchange transport (see exchange/) or withheld by a
/// participant.
enum class DegradedPolicy {
  /// Error out unless every expected foreign model is present (the
  /// pre-fault-tolerance behavior).
  kFailClosed,
  /// Schemas with *no* reachable peers fall back to the traditional
  /// Figure-2 pipeline (keep everything); schemas with partial arrivals
  /// assess against the models that did arrive.
  kKeepAll,
  /// Proceed for a schema only when at least `quorum` foreign models
  /// arrived; error otherwise.
  kQuorum,
};

/// Canonical lower-snake name of `policy` ("fail_closed", ...).
const char* DegradedPolicyToString(DegradedPolicy policy);

struct DegradedOptions {
  DegradedPolicy policy = DegradedPolicy::kFailClosed;
  /// Minimum arrived foreign models per schema under kQuorum.
  size_t quorum = 1;
};

/// Parses a CLI-style policy spec: "fail-closed", "keep-all", or
/// "quorum[:N]" (N defaults to 1).
Result<DegradedOptions> ParseDegradedPolicy(const std::string& spec);

/// Algorithm 2 for one schema over a possibly-incomplete model set.
/// `arrived` holds the foreign models that reached this schema (own
/// models are skipped as in AssessLinkability); `expected_peers` is how
/// many foreign models a fault-free exchange would have delivered. The
/// policy decides between assessing, keeping everything, and erroring.
Result<std::vector<bool>> AssessLinkabilityDegraded(
    const linalg::Matrix& local_signatures, int own_schema_index,
    const std::vector<LocalModel>& arrived, size_t expected_peers,
    const DegradedOptions& options);

/// Full collaborative scoping (phases II + III) over a signature set:
/// fits one local model per schema at explained variance `v` and runs the
/// distributed linkability assessment. Returns the keep-mask in signature
/// row order (true = linkable, i.e. kept in the streamlined schemas S').
Result<std::vector<bool>> CollaborativeScoping(const SignatureSet& signatures,
                                               size_t num_schemas, double v);

/// The fitted models of phase II, exposed for callers that sweep v or
/// inspect n_comp / l_k per schema.
Result<std::vector<LocalModel>> FitLocalModels(const SignatureSet& signatures,
                                               size_t num_schemas, double v);

/// Phase II in parallel: one task per schema, mirroring the paper's
/// observation that "the computation of the self-supervised
/// encoder-decoder ... takes place in parallel at each local schema"
/// (Section 3). `num_threads` 0 uses the hardware concurrency. Result
/// order and content are identical to FitLocalModels.
/// When `metrics` is non-null the worker pool reports queue-depth and
/// task-latency under "scoping.fit_pool.*" (see obs::ThreadPoolMetrics).
/// A non-null `cancel` token makes the fit cooperative: once it trips no
/// new per-schema fits start and the call returns Cancelled.
Result<std::vector<LocalModel>> FitLocalModelsParallel(
    const SignatureSet& signatures, size_t num_schemas, double v,
    size_t num_threads = 0, obs::MetricsRegistry* metrics = nullptr,
    const CancellationToken* cancel = nullptr);

/// Phase II on a caller-supplied pool (e.g. the pipeline's run-wide
/// pool, shared with the encode and match phases); otherwise identical
/// to FitLocalModelsParallel.
Result<std::vector<LocalModel>> FitLocalModelsOnPool(
    const SignatureSet& signatures, size_t num_schemas, double v,
    ThreadPool& pool, const CancellationToken* cancel = nullptr);

/// Phase III given prefitted models.
std::vector<bool> AssessAll(const SignatureSet& signatures,
                            size_t num_schemas,
                            const std::vector<LocalModel>& models);

/// Phase III over a sparse model set: `arrived_per_schema[k]` holds the
/// foreign models consumer schema k obtained (each consumer may have a
/// different subset after a faulty exchange). The degradation policy in
/// `options` decides how schemas with missing peers are handled.
/// When `metrics` is non-null the assessment emits per-policy pruning
/// counters: "scoping.kept.<policy>" and "scoping.pruned.<policy>".
Result<std::vector<bool>> AssessAllSparse(
    const SignatureSet& signatures, size_t num_schemas,
    const std::vector<std::vector<LocalModel>>& arrived_per_schema,
    const DegradedOptions& options, obs::MetricsRegistry* metrics = nullptr);

}  // namespace colscope::scoping

#endif  // COLSCOPE_SCOPING_COLLABORATIVE_H_
