#include "scoping/ensemble.h"

#include "scoping/collaborative.h"

namespace colscope::scoping {

Result<std::vector<size_t>> CollaborativeVotes(
    const SignatureSet& signatures, size_t num_schemas,
    const std::vector<double>& variance_levels) {
  if (variance_levels.empty()) {
    return Status::InvalidArgument("ensemble needs >= 1 variance level");
  }
  std::vector<size_t> votes(signatures.size(), 0);
  for (double v : variance_levels) {
    Result<std::vector<bool>> keep =
        CollaborativeScoping(signatures, num_schemas, v);
    if (!keep.ok()) return keep.status();
    for (size_t i = 0; i < votes.size(); ++i) votes[i] += (*keep)[i];
  }
  return votes;
}

Result<std::vector<bool>> EnsembleCollaborativeScoping(
    const SignatureSet& signatures, size_t num_schemas,
    const EnsembleOptions& options) {
  if (options.min_votes == 0 ||
      options.min_votes > options.variance_levels.size()) {
    return Status::InvalidArgument(
        "min_votes must be in [1, |variance_levels|]");
  }
  Result<std::vector<size_t>> votes =
      CollaborativeVotes(signatures, num_schemas, options.variance_levels);
  if (!votes.ok()) return votes.status();
  std::vector<bool> keep(votes->size(), false);
  for (size_t i = 0; i < votes->size(); ++i) {
    keep[i] = (*votes)[i] >= options.min_votes;
  }
  return keep;
}

}  // namespace colscope::scoping
