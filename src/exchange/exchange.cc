#include "exchange/exchange.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "scoping/model_io.h"

namespace colscope::exchange {

namespace {

/// Simulated-ms buckets for exchange.fetch_ms: base latency (~1ms)
/// through deadline-sized waits.
std::vector<double> FetchMsBuckets() {
  return obs::ExponentialBuckets(1.0, 4.0, 8);
}

/// Folds one finished fetch into the exchange.* instruments. All values
/// are simulated-clock derived, so identical runs produce identical
/// metrics bytes.
void EmitFetchMetrics(const FetchOutcome& outcome,
                      obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("exchange.fetches").Increment();
  metrics->GetCounter("exchange.attempts")
      .Increment(static_cast<uint64_t>(outcome.attempts));
  if (outcome.attempts > 1) {
    metrics->GetCounter("exchange.retries")
        .Increment(static_cast<uint64_t>(outcome.attempts - 1));
  }
  if (!outcome.status.ok()) {
    metrics->GetCounter("exchange.fetch_failures").Increment();
  }
  for (FaultKind fault : outcome.faults) {
    if (fault == FaultKind::kNone) continue;
    metrics
        ->GetCounter(std::string("exchange.faults.") +
                     FaultKindToString(fault))
        .Increment();
  }
  metrics->GetHistogram("exchange.fetch_ms", FetchMsBuckets())
      .Observe(outcome.elapsed_ms);
}

/// Deterministic backoff jitter factor in [1 - jitter, 1 + jitter] for
/// one (publisher, consumer, attempt) triple.
double JitterFactor(uint64_t seed, int publisher, int consumer, int attempt,
                    double jitter) {
  if (jitter <= 0.0) return 1.0;
  uint64_t state = seed;
  state += 0xd6e8feb86659fd93ULL * (static_cast<uint64_t>(publisher) + 1);
  SplitMix64(state);
  state += 0xa0761d6478bd642fULL * (static_cast<uint64_t>(consumer) + 1);
  SplitMix64(state);
  state += 0xe7037ed1a0b428dbULL * (static_cast<uint64_t>(attempt) + 1);
  Rng rng(SplitMix64(state));
  return 1.0 - jitter + 2.0 * jitter * rng.NextDouble();
}

}  // namespace

FetchOutcome FetchModelWithRetry(const ModelTransport& transport,
                                 int publisher, int consumer,
                                 const RetryPolicy& policy,
                                 uint64_t backoff_seed,
                                 obs::MetricsRegistry* metrics,
                                 const CancellationToken* cancel) {
  FetchOutcome outcome;
  Status last_error = Status::Unavailable("fetch never attempted");
  const int max_attempts = std::max(policy.max_attempts, 1);
  // Single exit point for the accounting so every return path hits the
  // exchange.* instruments exactly once.
  auto finish = [&]() -> FetchOutcome {
    EmitFetchMetrics(outcome, metrics);
    return std::move(outcome);
  };

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (cancel != nullptr && cancel->cancelled()) {
      outcome.status = Status::Cancelled(StrFormat(
          "fetch of schema %d model cancelled before attempt %d", publisher,
          attempt + 1));
      return finish();
    }
    const FetchResponse response =
        transport.Fetch(publisher, consumer, attempt);
    ++outcome.attempts;
    outcome.faults.push_back(response.fault);

    // The attempt consumes simulated time whether or not it succeeds; a
    // response that lands past the deadline is a timeout even if the
    // payload was intact (this is how kDelay faults kill fetches).
    if (outcome.elapsed_ms + response.latency_ms > policy.deadline_ms) {
      outcome.elapsed_ms = policy.deadline_ms;
      outcome.status = Status::DeadlineExceeded(StrFormat(
          "fetch of schema %d model exceeded %.0fms deadline on attempt %d",
          publisher, policy.deadline_ms, attempt + 1));
      return finish();
    }
    outcome.elapsed_ms += response.latency_ms;

    if (response.status.ok()) {
      Result<scoping::LocalModel> model =
          scoping::DeserializeLocalModel(response.payload);
      if (model.ok()) {
        outcome.model = std::move(model).value();
        outcome.status = Status::Ok();
        return finish();
      }
      // Truncated / corrupted payload: worth retrying, the next attempt
      // may arrive intact.
      last_error = model.status();
    } else {
      if (response.status.code() == StatusCode::kNotFound) {
        // Permanent: the peer never published. Retrying cannot help.
        outcome.status = response.status;
        return finish();
      }
      last_error = response.status;
    }

    if (attempt + 1 < max_attempts) {
      if (cancel != nullptr && cancel->cancelled()) {
        outcome.status = Status::Cancelled(StrFormat(
            "fetch of schema %d model cancelled after attempt %d", publisher,
            attempt + 1));
        return finish();
      }
      double backoff = policy.initial_backoff_ms;
      for (int i = 0; i < attempt; ++i) backoff *= policy.backoff_multiplier;
      backoff = std::min(backoff, policy.max_backoff_ms);
      backoff *= JitterFactor(backoff_seed, publisher, consumer, attempt,
                              policy.jitter);
      if (outcome.elapsed_ms + backoff > policy.deadline_ms) {
        outcome.elapsed_ms = policy.deadline_ms;
        outcome.status = Status::DeadlineExceeded(StrFormat(
            "backoff after attempt %d would exceed the %.0fms deadline",
            attempt + 1, policy.deadline_ms));
        return finish();
      }
      outcome.elapsed_ms += backoff;
      // Indices, attempt ordinal, and fault kind only — no times or
      // endpoints — so repeat runs dump identical flight bytes.
      obs::FlightRecorder::Global().Record(
          "retry",
          StrFormat("publisher=%d consumer=%d attempt=%d fault=%s",
                    publisher, consumer, attempt + 1,
                    FaultKindToString(outcome.faults.back())));
      COLSCOPE_LOG(Debug) << "exchange retry: consumer=" << consumer
                          << " publisher=" << publisher << " attempt="
                          << attempt + 1 << "/" << max_attempts
                          << " backoff_ms=" << backoff << " fault="
                          << FaultKindToString(response.fault) << " error=\""
                          << last_error.ToString() << "\"";
    }
  }
  outcome.status = last_error;
  COLSCOPE_LOG(Debug) << "exchange fetch failed: consumer=" << consumer
                      << " publisher=" << publisher << " attempts="
                      << outcome.attempts << " error=\""
                      << last_error.ToString() << "\"";
  return finish();
}

Result<ExchangeResult> ExchangeLocalModels(
    const std::vector<scoping::LocalModel>& models, ModelTransport& transport,
    const RetryPolicy& policy, uint64_t backoff_seed,
    obs::MetricsRegistry* metrics, const CancellationToken* cancel,
    Deadline run_deadline) {
  if (metrics != nullptr) {
    // Pre-register the headline counters so a healthy run still exports
    // them (as zeroes) instead of omitting the keys.
    metrics->GetCounter("exchange.fetches");
    metrics->GetCounter("exchange.retries");
    metrics->GetCounter("exchange.fetch_failures");
  }
  for (const scoping::LocalModel& model : models) {
    COLSCOPE_RETURN_IF_ERROR(
        transport.Publish(model.schema_index(), SerializeLocalModel(model)));
  }

  ExchangeResult result;
  result.arrived.resize(models.size());
  // Simulated transport time already spent this exchange, charged against
  // the run deadline: the transport clock is simulated, so the run clock
  // does not see it advance on its own.
  double sim_elapsed_ms = 0.0;
  for (size_t c = 0; c < models.size(); ++c) {
    const int consumer = models[c].schema_index();
    for (size_t p = 0; p < models.size(); ++p) {
      if (p == c) continue;
      const int publisher = models[p].schema_index();
      PeerFetchRecord record;
      record.publisher = publisher;
      record.consumer = consumer;

      Status skip_reason;
      if (cancel != nullptr && cancel->cancelled()) {
        result.aborted = "cancelled";
        skip_reason = Status::Cancelled("run cancelled before this fetch");
      } else if (!run_deadline.infinite() &&
                 run_deadline.remaining_ms() - sim_elapsed_ms <= 0.0) {
        result.aborted = "run_deadline_exceeded";
        skip_reason = Status::DeadlineExceeded(
            "run deadline exhausted before this fetch");
      }
      if (!skip_reason.ok()) {
        record.skipped = true;
        record.error = skip_reason.ToString();
        if (metrics != nullptr) {
          metrics->GetCounter("exchange.fetches_skipped").Increment();
        }
        result.fetches.push_back(std::move(record));
        continue;
      }

      // Derive this fetch's deadline from whatever run budget is left.
      RetryPolicy effective = policy;
      if (!run_deadline.infinite()) {
        effective.deadline_ms = std::min(
            policy.deadline_ms, run_deadline.remaining_ms() - sim_elapsed_ms);
      }
      FetchOutcome outcome =
          FetchModelWithRetry(transport, publisher, consumer, effective,
                              backoff_seed, metrics, cancel);
      sim_elapsed_ms += outcome.elapsed_ms;
      record.attempts = outcome.attempts;
      record.elapsed_ms = outcome.elapsed_ms;
      record.ok = outcome.status.ok();
      record.faults = std::move(outcome.faults);
      if (record.ok) {
        result.arrived[c].push_back(std::move(*outcome.model));
      } else {
        record.error = outcome.status.ToString();
      }
      result.fetches.push_back(std::move(record));
    }
  }
  return result;
}

DegradationReport BuildDegradationReport(const ExchangeResult& result,
                                         std::string policy_name,
                                         size_t num_schemas) {
  std::vector<size_t> arrived_per_schema;
  arrived_per_schema.reserve(result.arrived.size());
  for (const auto& models : result.arrived) {
    arrived_per_schema.push_back(models.size());
  }
  return BuildDegradationReport(result.fetches, arrived_per_schema,
                                std::move(policy_name), num_schemas,
                                result.aborted);
}

DegradationReport BuildDegradationReport(
    const std::vector<PeerFetchRecord>& fetches,
    const std::vector<size_t>& arrived_per_schema, std::string policy_name,
    size_t num_schemas, std::string aborted) {
  DegradationReport report;
  report.policy = std::move(policy_name);
  report.num_schemas = num_schemas;
  report.total_fetches = fetches.size();
  report.aborted = std::move(aborted);
  for (const PeerFetchRecord& fetch : fetches) {
    if (fetch.skipped) ++report.skipped_fetches;
    report.total_attempts += static_cast<size_t>(fetch.attempts);
    if (fetch.attempts > 1) {
      report.total_retries += static_cast<size_t>(fetch.attempts - 1);
    }
    report.simulated_ms += fetch.elapsed_ms;
    for (FaultKind fault : fetch.faults) {
      report.fault_counts[static_cast<size_t>(fault)] += 1;
    }
    if (!fetch.ok) {
      ++report.failed_fetches;
      report.peers_lost.emplace_back(fetch.consumer, fetch.publisher);
    }
  }
  report.arrived_per_schema = arrived_per_schema;
  return report;
}

std::string FormatDegradationReport(const DegradationReport& report) {
  std::string out = StrFormat(
      "policy=%s schemas=%zu fetches=%zu failed=%zu attempts=%zu "
      "retries=%zu simulated_ms=%.3f faults[drop=%zu delay=%zu "
      "truncate=%zu corrupt=%zu stale=%zu]",
      report.policy.c_str(), report.num_schemas, report.total_fetches,
      report.failed_fetches, report.total_attempts, report.total_retries,
      report.simulated_ms,
      report.fault_counts[static_cast<size_t>(FaultKind::kDrop)],
      report.fault_counts[static_cast<size_t>(FaultKind::kDelay)],
      report.fault_counts[static_cast<size_t>(FaultKind::kTruncate)],
      report.fault_counts[static_cast<size_t>(FaultKind::kCorrupt)],
      report.fault_counts[static_cast<size_t>(FaultKind::kStale)]);
  if (report.skipped_fetches > 0) {
    out += StrFormat(" skipped=%zu", report.skipped_fetches);
  }
  if (!report.aborted.empty()) {
    out += StrFormat(" aborted=%s", report.aborted.c_str());
  }
  if (!report.peers_lost.empty()) {
    out += " lost=";
    for (size_t i = 0; i < report.peers_lost.size(); ++i) {
      if (i > 0) out += ',';
      out += StrFormat("%d<-%d", report.peers_lost[i].first,
                       report.peers_lost[i].second);
    }
  }
  return out;
}

}  // namespace colscope::exchange
