#ifndef COLSCOPE_EXCHANGE_TRANSPORT_H_
#define COLSCOPE_EXCHANGE_TRANSPORT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"

namespace colscope::exchange {

/// Outcome of one transport-level fetch attempt. `status` is Ok when a
/// payload arrived (possibly truncated, corrupted, or stale — the
/// payload-mutating faults deliberately do not fail at the transport
/// layer, exactly like a real network: the receiver must detect them by
/// parsing). `latency_ms` is simulated wall time and is charged against
/// the caller's deadline even for failed attempts.
struct FetchResponse {
  Status status;
  std::string payload;
  double latency_ms = 0.0;
  FaultKind fault = FaultKind::kNone;
};

/// The peer-to-peer medium over which schemas exchange serialized local
/// models (Section 3, phase III): each participant publishes its own
/// model and fetches the others'. Implementations must be deterministic
/// for identical call arguments so degraded runs reproduce exactly.
class ModelTransport {
 public:
  virtual ~ModelTransport() = default;

  /// Publishes a new version of `publisher`'s serialized model.
  virtual Status Publish(int publisher, std::string payload) = 0;

  /// Fetch attempt `attempt` (0-based) of `consumer` requesting
  /// `publisher`'s latest model.
  virtual FetchResponse Fetch(int publisher, int consumer,
                              int attempt) const = 0;
};

/// In-process transport: a versioned blackboard of published models with
/// an optional deterministic FaultInjector between publisher and
/// consumer. Keeps every published version so kStale faults can serve
/// the oldest one.
class InMemoryTransport : public ModelTransport {
 public:
  InMemoryTransport() = default;
  explicit InMemoryTransport(FaultInjector injector)
      : injector_(std::move(injector)) {}

  Status Publish(int publisher, std::string payload) override;
  FetchResponse Fetch(int publisher, int consumer,
                      int attempt) const override;

  /// Number of versions `publisher` has published.
  size_t NumVersions(int publisher) const;

 private:
  std::map<int, std::vector<std::string>> versions_;
  std::optional<FaultInjector> injector_;
};

}  // namespace colscope::exchange

#endif  // COLSCOPE_EXCHANGE_TRANSPORT_H_
