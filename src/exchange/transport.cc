#include "exchange/transport.h"

#include "common/strings.h"

namespace colscope::exchange {

Status InMemoryTransport::Publish(int publisher, std::string payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("refusing to publish an empty model");
  }
  versions_[publisher].push_back(std::move(payload));
  return Status::Ok();
}

FetchResponse InMemoryTransport::Fetch(int publisher, int consumer,
                                       int attempt) const {
  FetchResponse response;
  const auto it = versions_.find(publisher);
  if (it == versions_.end() || it->second.empty()) {
    response.status = Status::NotFound(
        StrFormat("no model published for schema %d", publisher));
    return response;
  }
  response.payload = it->second.back();

  if (!injector_.has_value()) {
    response.latency_ms = 0.0;
    return response;
  }

  const FaultInjector::Decision decision = injector_->Decide(
      static_cast<uint64_t>(publisher), static_cast<uint64_t>(consumer),
      static_cast<uint64_t>(attempt), response.payload.size());
  response.latency_ms = decision.latency_ms;
  response.fault = decision.kind;
  switch (decision.kind) {
    case FaultKind::kNone:
    case FaultKind::kDelay:  // Latency already charged by the decision.
      break;
    case FaultKind::kDrop:
      response.payload.clear();
      response.status = Status::Unavailable(
          StrFormat("model of schema %d dropped in transit", publisher));
      break;
    case FaultKind::kTruncate:
      response.payload.resize(decision.truncate_at);
      break;
    case FaultKind::kCorrupt:
      if (!response.payload.empty()) {
        response.payload[decision.corrupt_pos] =
            static_cast<char>(response.payload[decision.corrupt_pos] ^
                              decision.corrupt_mask);
      }
      break;
    case FaultKind::kStale:
      response.payload = it->second.front();
      break;
  }
  return response;
}

size_t InMemoryTransport::NumVersions(int publisher) const {
  const auto it = versions_.find(publisher);
  return it == versions_.end() ? 0 : it->second.size();
}

}  // namespace colscope::exchange
