#ifndef COLSCOPE_EXCHANGE_EXCHANGE_H_
#define COLSCOPE_EXCHANGE_EXCHANGE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"
#include "exchange/transport.h"
#include "scoping/collaborative.h"

namespace colscope::obs {
class MetricsRegistry;
}  // namespace colscope::obs

namespace colscope::exchange {

/// Retry discipline of one model fetch: exponential backoff with
/// deterministic jitter and a per-fetch deadline on the simulated
/// transport clock. A fetch fails when the deadline is exhausted or
/// `max_attempts` attempts have all failed, whichever comes first.
struct RetryPolicy {
  int max_attempts = 4;
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Backoff jitter as a fraction: each wait is scaled by a
  /// deterministic factor in [1 - jitter, 1 + jitter].
  double jitter = 0.2;
  /// Total simulated time budget of one fetch (attempts + backoffs).
  double deadline_ms = 5000.0;
};

/// Everything one fetch produced: the deserialized model when it
/// succeeded, plus attempt/latency/fault accounting either way.
struct FetchOutcome {
  Status status;
  std::optional<scoping::LocalModel> model;
  int attempts = 0;
  /// Simulated elapsed time: attempt latencies plus backoff waits.
  double elapsed_ms = 0.0;
  /// Fault observed on each attempt (kNone for healthy attempts).
  std::vector<FaultKind> faults;
};

/// Fetches `publisher`'s model on behalf of `consumer`, retrying on
/// drops, timeouts, and payloads that fail to deserialize (truncation /
/// corruption). `backoff_seed` drives the jitter deterministically.
/// When `metrics` is non-null the fetch emits exchange.* counters
/// (fetches, attempts, retries, failures, per-fault counts) plus the
/// exchange.fetch_ms histogram of simulated elapsed time; each retry is
/// additionally logged at Debug level (attempt #, backoff delay, fault).
FetchOutcome FetchModelWithRetry(const ModelTransport& transport,
                                 int publisher, int consumer,
                                 const RetryPolicy& policy,
                                 uint64_t backoff_seed,
                                 obs::MetricsRegistry* metrics = nullptr);

/// Accounting record of one (consumer <- publisher) fetch.
struct PeerFetchRecord {
  int publisher = 0;
  int consumer = 0;
  int attempts = 0;
  double elapsed_ms = 0.0;
  bool ok = false;
  std::string error;  ///< Final status string when !ok.
  std::vector<FaultKind> faults;
};

/// Result of a full all-pairs model exchange. `arrived[k]` holds the
/// foreign models consumer schema k managed to obtain — possibly fewer
/// than num_schemas - 1 under faults; degraded-mode scoping
/// (scoping::AssessAllSparse) decides what to do with the gaps.
struct ExchangeResult {
  std::vector<std::vector<scoping::LocalModel>> arrived;
  std::vector<PeerFetchRecord> fetches;  ///< Deterministic order.
};

/// Phase III over a faulty medium: publishes every model in `models` to
/// `transport`, then each schema fetches every other schema's model with
/// retry/backoff. Fetch failures are recorded, never fatal — the caller
/// applies its degradation policy to the (possibly sparse) arrivals.
Result<ExchangeResult> ExchangeLocalModels(
    const std::vector<scoping::LocalModel>& models, ModelTransport& transport,
    const RetryPolicy& policy, uint64_t backoff_seed = 0,
    obs::MetricsRegistry* metrics = nullptr);

/// Observability record of one degraded run: what the exchange lost,
/// how hard it retried, which faults it survived, and which policy
/// decided the outcome. Threaded into PipelineRun and the JSON report.
struct DegradationReport {
  std::string policy;
  size_t num_schemas = 0;
  size_t total_fetches = 0;
  size_t failed_fetches = 0;
  size_t total_attempts = 0;
  size_t total_retries = 0;
  /// Total simulated transport time across all fetches.
  double simulated_ms = 0.0;
  /// Faults observed across all attempts, indexed by FaultKind.
  std::array<size_t, kNumFaultKinds> fault_counts{};
  /// (consumer, publisher) pairs whose fetch ultimately failed.
  std::vector<std::pair<int, int>> peers_lost;
  /// Foreign models that arrived per consumer schema.
  std::vector<size_t> arrived_per_schema;
};

/// Summarizes an exchange under `policy_name` into a report.
DegradationReport BuildDegradationReport(const ExchangeResult& result,
                                         std::string policy_name,
                                         size_t num_schemas);

/// One-line human-readable summary ("policy=keep_all fetches=12 ...").
/// Byte-stable for identical reports.
std::string FormatDegradationReport(const DegradationReport& report);

}  // namespace colscope::exchange

#endif  // COLSCOPE_EXCHANGE_EXCHANGE_H_
