#ifndef COLSCOPE_EXCHANGE_EXCHANGE_H_
#define COLSCOPE_EXCHANGE_EXCHANGE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injector.h"
#include "common/status.h"
#include "exchange/transport.h"
#include "scoping/collaborative.h"

namespace colscope::obs {
class MetricsRegistry;
}  // namespace colscope::obs

namespace colscope::exchange {

/// Retry discipline of one model fetch: exponential backoff with
/// deterministic jitter and a per-fetch deadline on the simulated
/// transport clock. A fetch fails when the deadline is exhausted or
/// `max_attempts` attempts have all failed, whichever comes first.
struct RetryPolicy {
  int max_attempts = 4;
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Backoff jitter as a fraction: each wait is scaled by a
  /// deterministic factor in [1 - jitter, 1 + jitter].
  double jitter = 0.2;
  /// Total simulated time budget of one fetch (attempts + backoffs).
  double deadline_ms = 5000.0;
};

/// Everything one fetch produced: the deserialized model when it
/// succeeded, plus attempt/latency/fault accounting either way.
struct FetchOutcome {
  Status status;
  std::optional<scoping::LocalModel> model;
  int attempts = 0;
  /// Simulated elapsed time: attempt latencies plus backoff waits.
  double elapsed_ms = 0.0;
  /// Fault observed on each attempt (kNone for healthy attempts).
  std::vector<FaultKind> faults;
};

/// Fetches `publisher`'s model on behalf of `consumer`, retrying on
/// drops, timeouts, and payloads that fail to deserialize (truncation /
/// corruption). `backoff_seed` drives the jitter deterministically.
/// When `metrics` is non-null the fetch emits exchange.* counters
/// (fetches, attempts, retries, failures, per-fault counts) plus the
/// exchange.fetch_ms histogram of simulated elapsed time; each retry is
/// additionally logged at Debug level (attempt #, backoff delay, fault).
/// A non-null `cancel` token aborts the retry loop cooperatively: it is
/// checked before each attempt and before each backoff wait, and a
/// tripped token ends the fetch with a Cancelled status instead of
/// burning the remaining attempts.
FetchOutcome FetchModelWithRetry(const ModelTransport& transport,
                                 int publisher, int consumer,
                                 const RetryPolicy& policy,
                                 uint64_t backoff_seed,
                                 obs::MetricsRegistry* metrics = nullptr,
                                 const CancellationToken* cancel = nullptr);

/// Accounting record of one (consumer <- publisher) fetch.
struct PeerFetchRecord {
  int publisher = 0;
  int consumer = 0;
  int attempts = 0;
  double elapsed_ms = 0.0;
  bool ok = false;
  /// True when the fetch was never issued because the run was cancelled
  /// or its deadline budget ran out before this pair's turn.
  bool skipped = false;
  std::string error;  ///< Final status string when !ok.
  std::vector<FaultKind> faults;
};

/// Result of a full all-pairs model exchange. `arrived[k]` holds the
/// foreign models consumer schema k managed to obtain — possibly fewer
/// than num_schemas - 1 under faults; degraded-mode scoping
/// (scoping::AssessAllSparse) decides what to do with the gaps.
struct ExchangeResult {
  std::vector<std::vector<scoping::LocalModel>> arrived;
  std::vector<PeerFetchRecord> fetches;  ///< Deterministic order.
  /// Why the exchange stopped early: "" (ran to completion),
  /// "cancelled", or "run_deadline_exceeded".
  std::string aborted;
};

/// Phase III over a faulty medium: publishes every model in `models` to
/// `transport`, then each schema fetches every other schema's model with
/// retry/backoff. Fetch failures are recorded, never fatal — the caller
/// applies its degradation policy to the (possibly sparse) arrivals.
///
/// `run_deadline` is the enclosing run's time budget: each fetch's
/// effective deadline is the smaller of the policy's per-fetch deadline
/// and the run budget remaining after the simulated transport time
/// already spent, so a run-level deadline bounds the whole phase, not
/// just one fetch. A non-null `cancel` token stops issuing new fetches
/// (and aborts in-flight retry loops) once tripped. Either way the
/// un-issued fetches are recorded as skipped, never fatal.
Result<ExchangeResult> ExchangeLocalModels(
    const std::vector<scoping::LocalModel>& models, ModelTransport& transport,
    const RetryPolicy& policy, uint64_t backoff_seed = 0,
    obs::MetricsRegistry* metrics = nullptr,
    const CancellationToken* cancel = nullptr,
    Deadline run_deadline = Deadline());

/// The full effective exchange + transport configuration of one run —
/// fault-injector seed included — echoed into the JSON report so any
/// degraded run can be reproduced from the report alone: the profile,
/// retry discipline, policy, and (for distributed runs) the schema ->
/// worker ownership map are everything the fault stream is a function
/// of.
struct ExchangeConfigEcho {
  /// "in_memory" or "tcp".
  std::string transport;
  FaultProfile faults;
  RetryPolicy retry;
  std::string policy;
  size_t quorum = 0;
  /// Distributed runs: schema index -> owning worker "host:port", in
  /// schema order. Empty for in-memory runs.
  std::vector<std::pair<int, std::string>> owners;
};

/// Observability record of one degraded run: what the exchange lost,
/// how hard it retried, which faults it survived, and which policy
/// decided the outcome. Threaded into PipelineRun and the JSON report.
struct DegradationReport {
  std::string policy;
  size_t num_schemas = 0;
  size_t total_fetches = 0;
  size_t failed_fetches = 0;
  /// Fetches never issued because the run was cancelled or out of
  /// deadline budget (subset of failed_fetches).
  size_t skipped_fetches = 0;
  size_t total_attempts = 0;
  size_t total_retries = 0;
  /// Early-termination cause copied from ExchangeResult::aborted; empty
  /// when the exchange ran to completion.
  std::string aborted;
  /// Total simulated transport time across all fetches.
  double simulated_ms = 0.0;
  /// Faults observed across all attempts, indexed by FaultKind.
  std::array<size_t, kNumFaultKinds> fault_counts{};
  /// (consumer, publisher) pairs whose fetch ultimately failed.
  std::vector<std::pair<int, int>> peers_lost;
  /// Foreign models that arrived per consumer schema.
  std::vector<size_t> arrived_per_schema;
};

/// Summarizes an exchange under `policy_name` into a report.
DegradationReport BuildDegradationReport(const ExchangeResult& result,
                                         std::string policy_name,
                                         size_t num_schemas);

/// Same summary over a bare record set — the form a distributed
/// coordinator holds after merging workers' partial reductions, where no
/// ExchangeResult (with its materialized model lists) ever exists.
DegradationReport BuildDegradationReport(
    const std::vector<PeerFetchRecord>& fetches,
    const std::vector<size_t>& arrived_per_schema, std::string policy_name,
    size_t num_schemas, std::string aborted = "");

/// One-line human-readable summary ("policy=keep_all fetches=12 ...").
/// Byte-stable for identical reports.
std::string FormatDegradationReport(const DegradationReport& report);

}  // namespace colscope::exchange

#endif  // COLSCOPE_EXCHANGE_EXCHANGE_H_
