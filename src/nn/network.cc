#include "nn/network.h"

#include <cmath>

#include "common/check.h"

namespace colscope::nn {

DenseLayer::DenseLayer(size_t in_dim, size_t out_dim, bool relu, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      relu_(relu),
      weights_(in_dim, out_dim),
      biases_(out_dim, 0.0),
      grad_w_(in_dim, out_dim),
      grad_b_(out_dim, 0.0),
      m_w_(in_dim, out_dim),
      v_w_(in_dim, out_dim),
      m_b_(out_dim, 0.0),
      v_b_(out_dim, 0.0) {
  // He initialization suits the ReLU hidden layers.
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (size_t i = 0; i < in_dim; ++i) {
    for (size_t j = 0; j < out_dim; ++j) {
      weights_(i, j) = scale * rng.NextGaussian();
    }
  }
}

linalg::Matrix DenseLayer::Forward(const linalg::Matrix& x) {
  COLSCOPE_CHECK(x.cols() == in_dim_);
  input_ = x;
  pre_act_ = x.Multiply(weights_);
  for (size_t r = 0; r < pre_act_.rows(); ++r) {
    double* row = pre_act_.RowPtr(r);
    for (size_t c = 0; c < out_dim_; ++c) row[c] += biases_[c];
  }
  if (!relu_) return pre_act_;
  linalg::Matrix out = pre_act_;
  for (double& v : out.data()) v = v > 0.0 ? v : 0.0;
  return out;
}

linalg::Matrix DenseLayer::Backward(const linalg::Matrix& grad_out) {
  COLSCOPE_CHECK(grad_out.rows() == input_.rows());
  COLSCOPE_CHECK(grad_out.cols() == out_dim_);
  linalg::Matrix grad = grad_out;
  if (relu_) {
    for (size_t i = 0; i < grad.data().size(); ++i) {
      if (pre_act_.data()[i] <= 0.0) grad.data()[i] = 0.0;
    }
  }
  // dW = x^T grad; db = column sums of grad; dx = grad W^T.
  grad_w_ = input_.Transposed().Multiply(grad);
  std::fill(grad_b_.begin(), grad_b_.end(), 0.0);
  for (size_t r = 0; r < grad.rows(); ++r) {
    const double* row = grad.RowPtr(r);
    for (size_t c = 0; c < out_dim_; ++c) grad_b_[c] += row[c];
  }
  return grad.Multiply(weights_.Transposed());
}

void DenseLayer::AdamStep(double learning_rate, double beta1, double beta2,
                          double epsilon, int64_t step) {
  const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
  const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
  auto update = [&](double& param, double grad, double& m, double& v) {
    m = beta1 * m + (1.0 - beta1) * grad;
    v = beta2 * v + (1.0 - beta2) * grad * grad;
    const double m_hat = m / bc1;
    const double v_hat = v / bc2;
    param -= learning_rate * m_hat / (std::sqrt(v_hat) + epsilon);
  };
  for (size_t i = 0; i < weights_.data().size(); ++i) {
    update(weights_.data()[i], grad_w_.data()[i], m_w_.data()[i],
           v_w_.data()[i]);
  }
  for (size_t j = 0; j < out_dim_; ++j) {
    update(biases_[j], grad_b_[j], m_b_[j], v_b_[j]);
  }
}

Mlp::Mlp(const std::vector<size_t>& layer_dims, uint64_t seed) {
  COLSCOPE_CHECK(layer_dims.size() >= 2);
  Rng rng(seed);
  for (size_t i = 0; i + 1 < layer_dims.size(); ++i) {
    const bool relu = (i + 2 < layer_dims.size());  // Linear output layer.
    layers_.emplace_back(layer_dims[i], layer_dims[i + 1], relu, rng);
  }
}

linalg::Matrix Mlp::Predict(const linalg::Matrix& x) {
  linalg::Matrix h = x;
  for (DenseLayer& layer : layers_) h = layer.Forward(h);
  return h;
}

double Mlp::TrainEpoch(const linalg::Matrix& x, const linalg::Matrix& target,
                       const TrainOptions& options) {
  COLSCOPE_CHECK(x.rows() == target.rows());
  const size_t n = x.rows();
  const size_t batch = options.batch_size == 0 ? n : options.batch_size;
  double loss_sum = 0.0;
  size_t loss_count = 0;

  for (size_t start = 0; start < n; start += batch) {
    const size_t end = std::min(n, start + batch);
    const size_t bs = end - start;
    linalg::Matrix xb(bs, x.cols());
    linalg::Matrix tb(bs, target.cols());
    for (size_t r = 0; r < bs; ++r) {
      xb.SetRow(r, x.Row(start + r));
      tb.SetRow(r, target.Row(start + r));
    }

    // Forward.
    linalg::Matrix h = xb;
    for (DenseLayer& layer : layers_) h = layer.Forward(h);

    // MSE loss and gradient dL/dy = 2 (y - t) / (bs * dims).
    const double denom =
        static_cast<double>(bs) * static_cast<double>(h.cols());
    linalg::Matrix grad(h.rows(), h.cols());
    double loss = 0.0;
    for (size_t i = 0; i < h.data().size(); ++i) {
      const double diff = h.data()[i] - tb.data()[i];
      loss += diff * diff;
      grad.data()[i] = 2.0 * diff / denom;
    }
    loss_sum += loss / denom;
    ++loss_count;

    // Backward + Adam.
    for (size_t i = layers_.size(); i-- > 0;) {
      grad = layers_[i].Backward(grad);
    }
    ++adam_step_;
    for (DenseLayer& layer : layers_) {
      layer.AdamStep(options.learning_rate, options.beta1, options.beta2,
                     options.epsilon, adam_step_);
    }
  }
  return loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
}

double Mlp::Fit(const linalg::Matrix& x, const linalg::Matrix& target,
                const TrainOptions& options) {
  double loss = 0.0;
  for (int e = 0; e < options.epochs; ++e) {
    loss = TrainEpoch(x, target, options);
  }
  return loss;
}

}  // namespace colscope::nn
