#ifndef COLSCOPE_NN_NETWORK_H_
#define COLSCOPE_NN_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace colscope::nn {

/// One fully-connected layer with optional ReLU, trained with Adam.
/// Weights are (in x out), row-major; forward is y = act(x W + b).
class DenseLayer {
 public:
  /// He-initialized weights; biases start at zero.
  DenseLayer(size_t in_dim, size_t out_dim, bool relu, Rng& rng);

  /// Forward pass for a batch (rows = samples). Caches the pre-activation
  /// and input needed by Backward.
  linalg::Matrix Forward(const linalg::Matrix& x);

  /// Backward pass: receives dL/dy, returns dL/dx, and accumulates
  /// parameter gradients for the following AdamStep.
  linalg::Matrix Backward(const linalg::Matrix& grad_out);

  /// Applies one Adam update with the accumulated gradients.
  void AdamStep(double learning_rate, double beta1, double beta2,
                double epsilon, int64_t step);

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  bool relu_;
  linalg::Matrix weights_;     // in x out.
  linalg::Vector biases_;      // out.
  linalg::Matrix grad_w_;
  linalg::Vector grad_b_;
  linalg::Matrix m_w_, v_w_;   // Adam moments for weights.
  linalg::Vector m_b_, v_b_;   // Adam moments for biases.
  linalg::Matrix input_;       // Cached forward input.
  linalg::Matrix pre_act_;     // Cached pre-activation.
};

/// Training hyperparameters (Adam + MSE, matching the paper's Keras
/// configuration in Section 4.1).
struct TrainOptions {
  int epochs = 50;
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  size_t batch_size = 32;
};

/// A small fully-connected multi-layer perceptron. Used by the
/// autoencoder ODA baseline with the paper's 768|100|10|100|768 layout
/// (hidden layers ReLU, linear output), but usable as a generic
/// regression network.
class Mlp {
 public:
  /// `layer_dims` lists every layer width including input and output,
  /// e.g. {768, 100, 10, 100, 768}. All layers but the last use ReLU.
  Mlp(const std::vector<size_t>& layer_dims, uint64_t seed);

  /// Forward pass without caching gradients (inference).
  linalg::Matrix Predict(const linalg::Matrix& x);

  /// One epoch of minibatch MSE training against `target`; returns the
  /// epoch's mean MSE loss. Deterministic batch order (no shuffling
  /// randomness beyond the seeded constructor) for reproducibility.
  double TrainEpoch(const linalg::Matrix& x, const linalg::Matrix& target,
                    const TrainOptions& options);

  /// Runs `options.epochs` epochs; returns the final epoch loss.
  double Fit(const linalg::Matrix& x, const linalg::Matrix& target,
             const TrainOptions& options);

  size_t input_dim() const { return layers_.front().in_dim(); }
  size_t output_dim() const { return layers_.back().out_dim(); }

 private:
  std::vector<DenseLayer> layers_;
  int64_t adam_step_ = 0;
};

}  // namespace colscope::nn

#endif  // COLSCOPE_NN_NETWORK_H_
