#ifndef COLSCOPE_ER_RECORD_SCOPING_H_
#define COLSCOPE_ER_RECORD_SCOPING_H_

#include <set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "embed/encoder.h"
#include "er/entity_set.h"
#include "linalg/matrix.h"

namespace colscope::er {

/// Identifies one record across sources: (source index, record index).
struct RecordRef {
  int source = -1;
  int record = -1;

  friend bool operator==(const RecordRef& a, const RecordRef& b) {
    return a.source == b.source && a.record == b.record;
  }
  friend bool operator<(const RecordRef& a, const RecordRef& b) {
    if (a.source != b.source) return a.source < b.source;
    return a.record < b.record;
  }
};

/// Phase-I analogue for records: every record of every source,
/// serialized and encoded.
struct RecordSignatureSet {
  std::vector<RecordRef> refs;
  std::vector<std::string> texts;
  linalg::Matrix signatures;

  size_t size() const { return refs.size(); }
  std::vector<size_t> RowsOfSource(int source) const;
  linalg::Matrix SourceSignatures(int source) const;
};

/// Serializes and encodes all records of all sources.
RecordSignatureSet BuildRecordSignatures(
    const std::vector<EntitySet>& sources,
    const embed::SentenceEncoder& encoder);

/// Collaborative scoping transplanted to records: each source
/// self-trains a PCA encoder-decoder on its own record signatures
/// (Algorithm 1), and a record is kept iff some *other* source's model
/// reconstructs it within that model's linkability range (Definition 4)
/// — i.e. it plausibly has a duplicate elsewhere. Returns the keep-mask
/// in signature row order.
Result<std::vector<bool>> CollaborativeRecordScoping(
    const RecordSignatureSet& signatures, size_t num_sources, double v);

/// A candidate duplicate pair across sources.
using RecordPair = std::pair<RecordRef, RecordRef>;

/// DeepBlocker-style blocking: for every (ordered) source pair, retrieve
/// each active record's top-k nearest records in the other source via an
/// exact flat-L2 index; the union of retrievals is the candidate set.
std::set<RecordPair> BlockTopK(const RecordSignatureSet& signatures,
                               const std::vector<bool>& active, size_t top_k);

}  // namespace colscope::er

#endif  // COLSCOPE_ER_RECORD_SCOPING_H_
