#include "er/entity_set.h"

namespace colscope::er {

std::string Record::FieldValue(std::string_view field) const {
  for (const auto& [name, value] : fields) {
    if (name == field) return value;
  }
  return "";
}

Status EntitySet::Add(Record record) {
  if (FindById(record.id) != nullptr) {
    return Status::AlreadyExists("duplicate record id: " + record.id);
  }
  records_.push_back(std::move(record));
  return Status::Ok();
}

const Record* EntitySet::FindById(std::string_view id) const {
  for (const Record& r : records_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

std::string SerializeRecord(const Record& record) {
  std::string out;
  for (const auto& [field, value] : record.fields) {
    if (!out.empty()) out += ' ';
    out += field;
    out += ' ';
    out += value;
  }
  return out;
}

}  // namespace colscope::er
