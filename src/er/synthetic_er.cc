#include "er/synthetic_er.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace colscope::er {

namespace {

constexpr const char* kFirst[] = {"michael", "sarah", "james",  "ana",
                                  "wei",     "fatima", "lucas",  "ingrid",
                                  "mateo",   "yuki",   "amara",  "viktor"};
constexpr const char* kLast[] = {"scott",  "bluth",  "nguyen", "garcia",
                                 "kim",    "olsen",  "costa",  "meyer",
                                 "tanaka", "haddad", "novak",  "weber"};
constexpr const char* kCity[] = {"berlin", "paris",  "oslo",  "nantes",
                                 "boston", "kyoto",  "porto", "vienna"};
constexpr const char* kStreet[] = {"oak", "royale", "ring", "luna",
                                   "monte", "birch", "elm", "cedar"};

/// Per-source field-name dialects (schema heterogeneity at the record
/// level).
struct Dialect {
  const char* name;
  const char* city;
  const char* street;
  const char* phone;
};
constexpr Dialect kDialects[] = {
    {"name", "city", "street", "phone"},
    {"full_name", "town", "address", "telephone"},
    {"customer_name", "locality", "road", "mobile"},
    {"person", "city_name", "street_name", "tel"},
};

/// Unrelated noise domains per source.
constexpr const char* kNoiseDomains[][4] = {
    {"species", "habitat", "diet", "lifespan"},
    {"mineral", "hardness", "luster", "cleavage"},
    {"asteroid", "orbit", "albedo", "diameter"},
    {"verb", "tense", "mood", "conjugation"},
};
constexpr const char* kNoiseValues[] = {
    "xq1", "zr9", "kv3", "wp7", "nj2", "bd8", "fh4", "tm6"};

/// Random small perturbation of a value: drop a char, duplicate a char,
/// or leave as is — the typo model.
std::string Perturb(const std::string& value, Rng& rng) {
  if (value.size() < 3) return value;
  switch (rng.NextBounded(3)) {
    case 0: {  // Drop one character.
      const size_t pos = 1 + rng.NextBounded(value.size() - 2);
      return value.substr(0, pos) + value.substr(pos + 1);
    }
    case 1: {  // Duplicate one character.
      const size_t pos = rng.NextBounded(value.size());
      return value.substr(0, pos + 1) + value.substr(pos);
    }
    default:
      return value;
  }
}

}  // namespace

std::set<RecordRef> ErScenario::MatchableRecords() const {
  std::set<RecordRef> out;
  for (const auto& [a, b] : duplicates) {
    out.insert(a);
    out.insert(b);
  }
  return out;
}

ErScenario BuildSyntheticErScenario(const SyntheticErOptions& options) {
  COLSCOPE_CHECK(options.num_sources >= 2);
  Rng rng(options.seed);
  ErScenario scenario;
  scenario.sources.reserve(options.num_sources);
  for (size_t s = 0; s < options.num_sources; ++s) {
    scenario.sources.emplace_back(StrFormat("SRC%zu", s));
  }

  // Materialize entities.
  std::vector<std::vector<RecordRef>> placements(options.entities);
  for (size_t e = 0; e < options.entities; ++e) {
    const std::string first = kFirst[rng.NextBounded(std::size(kFirst))];
    const std::string last = kLast[rng.NextBounded(std::size(kLast))];
    const std::string city = kCity[rng.NextBounded(std::size(kCity))];
    const std::string street =
        StrFormat("%zu %s st", 1 + rng.NextBounded(99),
                  kStreet[rng.NextBounded(std::size(kStreet))]);
    const std::string phone = StrFormat("+%zu %zu", 1 + rng.NextBounded(99),
                                        100000 + rng.NextBounded(899999));

    std::vector<size_t> targets;
    for (size_t s = 0; s < options.num_sources; ++s) {
      if (rng.NextDouble() < options.coverage) targets.push_back(s);
    }
    while (targets.size() < 2) {
      const size_t s = rng.NextBounded(options.num_sources);
      if (std::find(targets.begin(), targets.end(), s) == targets.end()) {
        targets.push_back(s);
      }
    }
    for (size_t s : targets) {
      const Dialect& d = kDialects[s % std::size(kDialects)];
      Record record;
      record.id = StrFormat("e%zu_s%zu", e, s);
      record.fields = {
          {d.name, Perturb(first + " " + last, rng)},
          {d.city, city},
          {d.street, Perturb(street, rng)},
          {d.phone, phone},
      };
      placements[e].push_back(
          {static_cast<int>(s),
           static_cast<int>(scenario.sources[s].size())});
      COLSCOPE_CHECK(scenario.sources[s].Add(std::move(record)).ok());
    }
  }

  // Noise records from per-source unrelated domains.
  for (size_t s = 0; s < options.num_sources; ++s) {
    const auto& domain = kNoiseDomains[s % std::size(kNoiseDomains)];
    for (size_t n = 0; n < options.noise_per_source; ++n) {
      Record record;
      record.id = StrFormat("noise%zu_s%zu", n, s);
      for (size_t f = 0; f < 4; ++f) {
        record.fields.emplace_back(
            domain[f], kNoiseValues[rng.NextBounded(std::size(kNoiseValues))]);
      }
      COLSCOPE_CHECK(scenario.sources[s].Add(std::move(record)).ok());
    }
  }

  // Ground truth: all cross-source pairs of each entity's placements.
  for (const auto& refs : placements) {
    for (size_t i = 0; i < refs.size(); ++i) {
      for (size_t j = i + 1; j < refs.size(); ++j) {
        RecordRef a = refs[i];
        RecordRef b = refs[j];
        if (b < a) std::swap(a, b);
        scenario.duplicates.insert({a, b});
      }
    }
  }
  return scenario;
}

}  // namespace colscope::er
