#ifndef COLSCOPE_ER_SYNTHETIC_ER_H_
#define COLSCOPE_ER_SYNTHETIC_ER_H_

#include <cstdint>
#include <set>
#include <vector>

#include "er/record_scoping.h"

namespace colscope::er {

/// Parameters of the synthetic entity-resolution workload: `entities`
/// real-world entities, each materialized (with field renamings and
/// value perturbations) in a random subset of the `num_sources` sources;
/// plus `noise_per_source` records from per-source unrelated domains
/// (the unlinkable overhead of the record world).
struct SyntheticErOptions {
  size_t num_sources = 3;
  size_t entities = 30;
  /// Probability an entity is materialized in a given source (each
  /// entity is forced into at least two sources).
  double coverage = 0.7;
  size_t noise_per_source = 15;
  uint64_t seed = 0xe2;
};

/// An ER workload: the sources plus the ground-truth cross-source
/// duplicate pairs (canonical order).
struct ErScenario {
  std::vector<EntitySet> sources;
  std::set<RecordPair> duplicates;

  /// Refs of records that have at least one cross-source duplicate.
  std::set<RecordRef> MatchableRecords() const;
};

ErScenario BuildSyntheticErScenario(const SyntheticErOptions& options);

}  // namespace colscope::er

#endif  // COLSCOPE_ER_SYNTHETIC_ER_H_
