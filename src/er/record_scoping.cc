#include "er/record_scoping.h"

#include <algorithm>

#include "matching/flat_index.h"
#include "scoping/collaborative.h"

namespace colscope::er {

std::vector<size_t> RecordSignatureSet::RowsOfSource(int source) const {
  std::vector<size_t> rows;
  for (size_t i = 0; i < refs.size(); ++i) {
    if (refs[i].source == source) rows.push_back(i);
  }
  return rows;
}

linalg::Matrix RecordSignatureSet::SourceSignatures(int source) const {
  const std::vector<size_t> rows = RowsOfSource(source);
  linalg::Matrix out(rows.size(), signatures.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    out.SetRow(i, signatures.Row(rows[i]));
  }
  return out;
}

RecordSignatureSet BuildRecordSignatures(
    const std::vector<EntitySet>& sources,
    const embed::SentenceEncoder& encoder) {
  RecordSignatureSet out;
  for (size_t s = 0; s < sources.size(); ++s) {
    for (size_t r = 0; r < sources[s].records().size(); ++r) {
      out.refs.push_back({static_cast<int>(s), static_cast<int>(r)});
      out.texts.push_back(SerializeRecord(sources[s].records()[r]));
    }
  }
  out.signatures = encoder.EncodeAll(out.texts);
  return out;
}

Result<std::vector<bool>> CollaborativeRecordScoping(
    const RecordSignatureSet& signatures, size_t num_sources, double v) {
  // Phase II: one local model per source (reusing the schema-level
  // LocalModel — it operates on signature matrices).
  std::vector<scoping::LocalModel> models;
  models.reserve(num_sources);
  for (size_t s = 0; s < num_sources; ++s) {
    Result<scoping::LocalModel> model = scoping::LocalModel::Fit(
        signatures.SourceSignatures(static_cast<int>(s)), v,
        static_cast<int>(s));
    if (!model.ok()) return model.status();
    models.push_back(std::move(model).value());
  }
  // Phase III.
  std::vector<bool> keep(signatures.size(), false);
  for (size_t s = 0; s < num_sources; ++s) {
    const int source = static_cast<int>(s);
    const auto rows = signatures.RowsOfSource(source);
    const linalg::Matrix local = signatures.SourceSignatures(source);
    const auto linkable =
        scoping::AssessLinkability(local, source, models);
    for (size_t i = 0; i < rows.size(); ++i) keep[rows[i]] = linkable[i];
  }
  return keep;
}

std::set<RecordPair> BlockTopK(const RecordSignatureSet& signatures,
                               const std::vector<bool>& active,
                               size_t top_k) {
  std::set<RecordPair> out;
  int max_source = -1;
  for (const RecordRef& ref : signatures.refs) {
    max_source = std::max(max_source, ref.source);
  }
  // Active rows per source.
  std::vector<std::vector<size_t>> source_rows(max_source + 1);
  for (size_t i = 0; i < signatures.size(); ++i) {
    if (active[i]) source_rows[signatures.refs[i].source].push_back(i);
  }
  for (int target = 0; target <= max_source; ++target) {
    const auto& target_rows = source_rows[target];
    if (target_rows.empty()) continue;
    linalg::Matrix vectors(target_rows.size(), signatures.signatures.cols());
    for (size_t i = 0; i < target_rows.size(); ++i) {
      vectors.SetRow(i, signatures.signatures.Row(target_rows[i]));
    }
    const matching::FlatL2Index index(std::move(vectors));
    for (int source = 0; source <= max_source; ++source) {
      if (source == target) continue;
      for (size_t query_row : source_rows[source]) {
        for (size_t hit :
             index.Search(signatures.signatures.Row(query_row), top_k)) {
          RecordRef a = signatures.refs[query_row];
          RecordRef b = signatures.refs[target_rows[hit]];
          if (b < a) std::swap(a, b);
          out.insert({a, b});
        }
      }
    }
  }
  return out;
}

}  // namespace colscope::er
