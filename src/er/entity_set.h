#ifndef COLSCOPE_ER_ENTITY_SET_H_
#define COLSCOPE_ER_ENTITY_SET_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace colscope::er {

/// One entity record: a stable id plus ordered (field, value) pairs.
/// The entity-resolution analogue of a schema element.
struct Record {
  std::string id;
  std::vector<std::pair<std::string, std::string>> fields;

  /// Value of `field`, or "" when absent.
  std::string FieldValue(std::string_view field) const;
};

/// A named collection of records from one source — the analogue of one
/// local schema in the paper's future-work direction ("experiment with
/// the overall applicability in entity resolution", Section 5; the
/// record-level problem is the authors' earlier Collective Scoping
/// work [44]).
class EntitySet {
 public:
  EntitySet() = default;
  explicit EntitySet(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Record>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// Appends a record; duplicate ids within one set are rejected.
  Status Add(Record record);

  const Record* FindById(std::string_view id) const;

 private:
  std::string name_;
  std::vector<Record> records_;
};

/// Serializes a record into the text sequence the sentence encoder
/// consumes: "field value field value ...". Field names carry the
/// semantics (like attribute names in T^a); values disambiguate the
/// entity.
std::string SerializeRecord(const Record& record);

}  // namespace colscope::er

#endif  // COLSCOPE_ER_ENTITY_SET_H_
