#ifndef COLSCOPE_SCHEMA_SCHEMA_SET_H_
#define COLSCOPE_SCHEMA_SCHEMA_SET_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "schema/schema.h"

namespace colscope::schema {

/// The multi-source schema set S = {S_1, ..., S_k} plus a flattened,
/// stable enumeration of every element (table or attribute) across all
/// schemas. The flattened order is: schema 0's tables, schema 0's
/// attributes, schema 1's tables, ... — matching SerializeSchema, so a
/// signature matrix row i always corresponds to element(i).
class SchemaSet {
 public:
  SchemaSet() = default;
  explicit SchemaSet(std::vector<Schema> schemas);

  const std::vector<Schema>& schemas() const { return schemas_; }
  const Schema& schema(int index) const { return schemas_[index]; }
  size_t num_schemas() const { return schemas_.size(); }

  /// All elements across all schemas in flattened order.
  const std::vector<ElementRef>& elements() const { return elements_; }
  size_t num_elements() const { return elements_.size(); }

  /// Elements of one schema, in flattened order.
  std::vector<ElementRef> ElementsOfSchema(int schema_index) const;

  /// Flattened index of `ref` (inverse of elements()[i]); -1 if absent.
  int IndexOf(const ElementRef& ref) const;

  /// Human-readable qualified name: "SCHEMA.TABLE" or
  /// "SCHEMA.TABLE.ATTRIBUTE".
  std::string QualifiedName(const ElementRef& ref) const;

  /// Resolves "TABLE" or "TABLE.ATTRIBUTE" inside the named schema.
  Result<ElementRef> Resolve(std::string_view schema_name,
                             std::string_view dotted_path) const;

  /// Sum over schema pairs of |tables_k| x |tables_m| — the table-pair
  /// Cartesian product size of Table 3.
  size_t TableCartesianSize() const;

  /// Sum over schema pairs of |attrs_k| x |attrs_m| — the attribute-pair
  /// Cartesian product size of Table 3.
  size_t AttributeCartesianSize() const;

 private:
  std::vector<Schema> schemas_;
  std::vector<ElementRef> elements_;
};

}  // namespace colscope::schema

#endif  // COLSCOPE_SCHEMA_SCHEMA_SET_H_
