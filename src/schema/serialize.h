#ifndef COLSCOPE_SCHEMA_SERIALIZE_H_
#define COLSCOPE_SCHEMA_SERIALIZE_H_

#include <string>
#include <vector>

#include "schema/schema.h"

namespace colscope::schema {

/// Serialization options. The paper's default is metadata-only;
/// Section 2.3 shows that appending instance samples ("NAME CLIENT
/// (Michael Scott)") shifts similarities both ways and reduced overall
/// matching quality in its prior work, so it stays opt-in.
struct SerializeOptions {
  bool include_instance_samples = false;
  size_t max_samples = 3;
};

/// T^a of Section 2.3: serializes attribute metadata into the text
/// sequence "NAME TABLE TYPE [PRIMARY KEY|FOREIGN KEY]", e.g.
/// "CID CLIENT NUMBER PRIMARY KEY"; with instance samples enabled,
/// "NAME CLIENT VARCHAR (Michael Scott)".
std::string SerializeAttribute(const Attribute& attribute,
                               const SerializeOptions& options = {});

/// T^t of Section 2.3: serializes table metadata into
/// "TABLE [ATTR1, ATTR2, ...]", e.g. "CLIENT [CID, NAME, ADDRESS, PHONE]".
std::string SerializeTable(const Table& table);

/// One serialized schema element paired with its identity; order within a
/// schema is: all tables first (schema order), then all attributes
/// (table order, then column order).
struct SerializedElement {
  ElementRef ref;
  std::string text;
};

/// Serializes every table and attribute of `schema` (Alg. 1 line 1),
/// using `schema_index` to stamp the ElementRefs.
std::vector<SerializedElement> SerializeSchema(
    const Schema& schema, int schema_index,
    const SerializeOptions& options = {});

}  // namespace colscope::schema

#endif  // COLSCOPE_SCHEMA_SERIALIZE_H_
