#include "schema/serialize.h"

#include <algorithm>

namespace colscope::schema {

std::string SerializeAttribute(const Attribute& attribute,
                               const SerializeOptions& options) {
  std::string out = attribute.name;
  out += ' ';
  out += attribute.table_name;
  out += ' ';
  out += attribute.raw_type.empty() ? DataTypeToString(attribute.type)
                                    : attribute.raw_type;
  if (attribute.constraint != Constraint::kNone) {
    out += ' ';
    out += ConstraintToString(attribute.constraint);
  }
  if (options.include_instance_samples && !attribute.samples.empty()) {
    out += " (";
    const size_t count = std::min(options.max_samples,
                                  attribute.samples.size());
    for (size_t i = 0; i < count; ++i) {
      if (i > 0) out += ", ";
      out += attribute.samples[i];
    }
    out += ')';
  }
  return out;
}

std::string SerializeTable(const Table& table) {
  std::string out = table.name;
  out += " [";
  for (size_t i = 0; i < table.attributes.size(); ++i) {
    if (i > 0) out += ", ";
    out += table.attributes[i].name;
  }
  out += ']';
  return out;
}

std::vector<SerializedElement> SerializeSchema(
    const Schema& schema, int schema_index, const SerializeOptions& options) {
  std::vector<SerializedElement> out;
  out.reserve(schema.num_elements());
  const auto& tables = schema.tables();
  for (size_t t = 0; t < tables.size(); ++t) {
    out.push_back({TableRef(schema_index, static_cast<int>(t)),
                   SerializeTable(tables[t])});
  }
  for (size_t t = 0; t < tables.size(); ++t) {
    for (size_t a = 0; a < tables[t].attributes.size(); ++a) {
      out.push_back({AttributeRef(schema_index, static_cast<int>(t),
                                  static_cast<int>(a)),
                     SerializeAttribute(tables[t].attributes[a], options)});
    }
  }
  return out;
}

}  // namespace colscope::schema
