#include "schema/fingerprint.h"

#include "common/checksum.h"

namespace colscope::schema {

namespace {

// Domain separators: an element text that happens to equal a whole-schema
// chain's input must not collide with it.
constexpr char kElementDomain[] = "colscope-element-fingerprint v1";
constexpr char kSchemaDomain[] = "colscope-schema-fingerprint v1";

}  // namespace

uint64_t ElementFingerprint(const SerializedElement& element) {
  return Fnv1a64(element.text, Fnv1a64(kElementDomain));
}

uint64_t SerializedElementsFingerprint(
    const std::vector<SerializedElement>& elements) {
  uint64_t h = Fnv1a64(kSchemaDomain);
  for (const SerializedElement& element : elements) {
    // Chain the text plus a separator so ["AB","C"] and ["A","BC"]
    // cannot collide.
    h = Fnv1a64(element.text, h);
    h = Fnv1a64("\x1f", h);
  }
  return h;
}

uint64_t SchemaContentFingerprint(const Schema& schema,
                                  const SerializeOptions& options) {
  // The schema index only stamps ElementRefs, which the fingerprint
  // ignores — index 0 keeps the result position-independent.
  return SerializedElementsFingerprint(
      SerializeSchema(schema, /*schema_index=*/0, options));
}

}  // namespace colscope::schema
