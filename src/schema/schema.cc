#include "schema/schema.h"

#include "common/strings.h"

namespace colscope::schema {

DataType ParseDataType(std::string_view raw_type) {
  std::string t = ToLowerAscii(raw_type);
  // Strip a precision suffix: varchar2(40) -> varchar2.
  const size_t paren = t.find('(');
  if (paren != std::string::npos) t.resize(paren);

  if (t == "varchar" || t == "varchar2" || t == "nvarchar" || t == "char" ||
      t == "nchar" || t == "text" || t == "mediumtext" || t == "longtext" ||
      t == "clob" || t == "string") {
    return DataType::kString;
  }
  if (t == "int" || t == "integer" || t == "bigint" || t == "smallint" ||
      t == "tinyint" || t == "serial") {
    return DataType::kInteger;
  }
  if (t == "number" || t == "numeric" || t == "decimal" || t == "float" ||
      t == "double" || t == "real") {
    return DataType::kDecimal;
  }
  if (t == "date") return DataType::kDate;
  if (t == "datetime" || t == "timestamp" || t == "seconddate") {
    return DataType::kDateTime;
  }
  if (t == "boolean" || t == "bool" || t == "bit") return DataType::kBoolean;
  if (t == "blob" || t == "bytea" || t == "binary" || t == "varbinary" ||
      t == "image") {
    return DataType::kBlob;
  }
  return DataType::kUnknown;
}

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kUnknown:
      return "UNKNOWN";
    case DataType::kString:
      return "STRING";
    case DataType::kInteger:
      return "INTEGER";
    case DataType::kDecimal:
      return "DECIMAL";
    case DataType::kDate:
      return "DATE";
    case DataType::kDateTime:
      return "DATETIME";
    case DataType::kBoolean:
      return "BOOLEAN";
    case DataType::kBlob:
      return "BLOB";
  }
  return "UNKNOWN";
}

const char* ConstraintToString(Constraint c) {
  switch (c) {
    case Constraint::kNone:
      return "";
    case Constraint::kPrimaryKey:
      return "PRIMARY KEY";
    case Constraint::kForeignKey:
      return "FOREIGN KEY";
  }
  return "";
}

Status Schema::AddTable(Table table) {
  if (FindTable(table.name) != nullptr) {
    return Status::AlreadyExists("table already in schema: " + table.name);
  }
  tables_.push_back(std::move(table));
  return Status::Ok();
}

const Table* Schema::FindTable(std::string_view table_name) const {
  for (const Table& t : tables_) {
    if (t.name == table_name) return &t;
  }
  return nullptr;
}

const Attribute* Schema::FindAttribute(std::string_view table_name,
                                       std::string_view attribute_name) const {
  const Table* t = FindTable(table_name);
  if (t == nullptr) return nullptr;
  for (const Attribute& a : t->attributes) {
    if (a.name == attribute_name) return &a;
  }
  return nullptr;
}

size_t Schema::num_attributes() const {
  size_t n = 0;
  for (const Table& t : tables_) n += t.attributes.size();
  return n;
}

}  // namespace colscope::schema
