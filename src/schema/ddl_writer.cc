#include "schema/ddl_writer.h"

namespace colscope::schema {

std::string WriteTableDdl(const Table& table) {
  std::string out = "CREATE TABLE " + table.name + " (\n";
  for (size_t i = 0; i < table.attributes.size(); ++i) {
    const Attribute& attr = table.attributes[i];
    out += "  " + attr.name + " ";
    out += attr.raw_type.empty() ? DataTypeToString(attr.type)
                                 : attr.raw_type;
    if (attr.constraint == Constraint::kPrimaryKey) {
      out += " PRIMARY KEY";
    } else if (attr.constraint == Constraint::kForeignKey) {
      // The reference target is not retained (Section 2.3 drops it), so
      // a placeholder keeps the FOREIGN KEY marker round-trippable.
      out += " REFERENCES UNSPECIFIED";
    }
    if (i + 1 < table.attributes.size()) out += ",";
    out += "\n";
  }
  out += ");\n";
  return out;
}

std::string WriteDdl(const Schema& schema) {
  std::string out;
  out += "-- Schema: " + schema.name() + "\n";
  for (const Table& table : schema.tables()) {
    out += WriteTableDdl(table);
    out += "\n";
  }
  return out;
}

}  // namespace colscope::schema
