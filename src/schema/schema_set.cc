#include "schema/schema_set.h"

#include "common/strings.h"

namespace colscope::schema {

SchemaSet::SchemaSet(std::vector<Schema> schemas)
    : schemas_(std::move(schemas)) {
  for (size_t s = 0; s < schemas_.size(); ++s) {
    const Schema& schema = schemas_[s];
    for (size_t t = 0; t < schema.tables().size(); ++t) {
      elements_.push_back(TableRef(static_cast<int>(s), static_cast<int>(t)));
    }
    for (size_t t = 0; t < schema.tables().size(); ++t) {
      const Table& table = schema.tables()[t];
      for (size_t a = 0; a < table.attributes.size(); ++a) {
        elements_.push_back(AttributeRef(static_cast<int>(s),
                                         static_cast<int>(t),
                                         static_cast<int>(a)));
      }
    }
  }
}

std::vector<ElementRef> SchemaSet::ElementsOfSchema(int schema_index) const {
  std::vector<ElementRef> out;
  for (const ElementRef& ref : elements_) {
    if (ref.schema == schema_index) out.push_back(ref);
  }
  return out;
}

int SchemaSet::IndexOf(const ElementRef& ref) const {
  // Flattened order is deterministic; compute the offset directly.
  size_t offset = 0;
  for (int s = 0; s < ref.schema; ++s) offset += schemas_[s].num_elements();
  const Schema& schema = schemas_[ref.schema];
  if (ref.is_table()) {
    if (ref.table < 0 ||
        static_cast<size_t>(ref.table) >= schema.num_tables()) {
      return -1;
    }
    return static_cast<int>(offset) + ref.table;
  }
  offset += schema.num_tables();
  for (int t = 0; t < ref.table; ++t) {
    offset += schema.tables()[t].attributes.size();
  }
  if (ref.attribute < 0 ||
      static_cast<size_t>(ref.attribute) >=
          schema.tables()[ref.table].attributes.size()) {
    return -1;
  }
  return static_cast<int>(offset) + ref.attribute;
}

std::string SchemaSet::QualifiedName(const ElementRef& ref) const {
  const Schema& schema = schemas_[ref.schema];
  const Table& table = schema.tables()[ref.table];
  std::string out = schema.name() + "." + table.name;
  if (!ref.is_table()) {
    out += "." + table.attributes[ref.attribute].name;
  }
  return out;
}

Result<ElementRef> SchemaSet::Resolve(std::string_view schema_name,
                                      std::string_view dotted_path) const {
  int schema_index = -1;
  for (size_t s = 0; s < schemas_.size(); ++s) {
    if (schemas_[s].name() == schema_name) {
      schema_index = static_cast<int>(s);
      break;
    }
  }
  if (schema_index < 0) {
    return Status::NotFound("schema not found: " + std::string(schema_name));
  }
  const Schema& schema = schemas_[schema_index];
  const std::vector<std::string> parts = SplitString(dotted_path, ".");
  if (parts.empty() || parts.size() > 2) {
    return Status::InvalidArgument("path must be TABLE or TABLE.ATTRIBUTE: " +
                                   std::string(dotted_path));
  }
  for (size_t t = 0; t < schema.tables().size(); ++t) {
    const Table& table = schema.tables()[t];
    if (table.name != parts[0]) continue;
    if (parts.size() == 1) {
      return TableRef(schema_index, static_cast<int>(t));
    }
    for (size_t a = 0; a < table.attributes.size(); ++a) {
      if (table.attributes[a].name == parts[1]) {
        return AttributeRef(schema_index, static_cast<int>(t),
                            static_cast<int>(a));
      }
    }
    return Status::NotFound("attribute not found: " + std::string(dotted_path));
  }
  return Status::NotFound("table not found: " + std::string(dotted_path));
}

size_t SchemaSet::TableCartesianSize() const {
  size_t sum = 0;
  for (size_t a = 0; a < schemas_.size(); ++a) {
    for (size_t b = a + 1; b < schemas_.size(); ++b) {
      sum += schemas_[a].num_tables() * schemas_[b].num_tables();
    }
  }
  return sum;
}

size_t SchemaSet::AttributeCartesianSize() const {
  size_t sum = 0;
  for (size_t a = 0; a < schemas_.size(); ++a) {
    for (size_t b = a + 1; b < schemas_.size(); ++b) {
      sum += schemas_[a].num_attributes() * schemas_[b].num_attributes();
    }
  }
  return sum;
}

}  // namespace colscope::schema
