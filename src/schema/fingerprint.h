#ifndef COLSCOPE_SCHEMA_FINGERPRINT_H_
#define COLSCOPE_SCHEMA_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "schema/serialize.h"

namespace colscope::schema {

/// Stable content fingerprint of one serialized schema element: FNV-1a
/// over its T^a/T^t text, domain-separated from raw payload checksums.
/// Deliberately excludes the ElementRef — the fingerprint identifies
/// *what* the element says, not *where* it currently sits in a schema
/// set, so reordering sources or renaming the source file (the schema
/// name appears in no serialized text) never changes it.
uint64_t ElementFingerprint(const SerializedElement& element);

/// Chained FNV-1a over every serialized element of `schema` in the
/// canonical flattened order (tables first, then attributes in table /
/// column order — the exact order SerializeSchema emits and the encoder
/// consumes). Two schemas with identical metadata content fingerprint
/// identically regardless of their names; any edit to a table name,
/// attribute name, type, or constraint changes the fingerprint.
uint64_t SchemaContentFingerprint(const Schema& schema,
                                  const SerializeOptions& options = {});

/// SchemaContentFingerprint computed from an already-serialized element
/// list (avoids re-serializing when the caller holds the elements).
uint64_t SerializedElementsFingerprint(
    const std::vector<SerializedElement>& elements);

}  // namespace colscope::schema

#endif  // COLSCOPE_SCHEMA_FINGERPRINT_H_
