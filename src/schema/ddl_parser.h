#ifndef COLSCOPE_SCHEMA_DDL_PARSER_H_
#define COLSCOPE_SCHEMA_DDL_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "schema/schema.h"

namespace colscope::schema {

/// Parses a SQL DDL script consisting of CREATE TABLE statements into a
/// Schema named `schema_name`. Supports the subset of DDL that schema
/// metadata extraction needs:
///   * column definitions: NAME TYPE[(precision)] with optional
///     PRIMARY KEY, REFERENCES t(c), NOT NULL, DEFAULT <literal>,
///     UNIQUE, AUTO_INCREMENT / IDENTITY / GENERATED ... clauses;
///   * table-level PRIMARY KEY (...), FOREIGN KEY (...) REFERENCES ...,
///     UNIQUE (...), and CONSTRAINT <name> <clause> forms;
///   * `--` line comments and `/* */` block comments;
///   * quoted identifiers: "x", `x`, [x];
///   * statements other than CREATE TABLE are skipped.
/// Per Section 2.3, constraints are normalized to PRIMARY KEY /
/// FOREIGN KEY only (FK reference targets are dropped).
///
/// DDL often arrives from files and federated peers, so malformed input
/// is an InvalidArgument, never undefined behavior: embedded NUL bytes,
/// unterminated quoted identifiers, identifiers longer than
/// kMaxDdlIdentifierBytes, more than kMaxDdlColumnsPerTable columns in
/// one table, and scripts larger than kMaxDdlInputBytes are all
/// rejected with a descriptive error.
Result<Schema> ParseDdl(std::string_view ddl, std::string schema_name);

/// Hard caps enforced by ParseDdl (exposed for tests and callers that
/// want to pre-validate).
inline constexpr size_t kMaxDdlInputBytes = size_t{1} << 24;     // 16 MiB
inline constexpr size_t kMaxDdlIdentifierBytes = 8192;
inline constexpr size_t kMaxDdlColumnsPerTable = 4096;

}  // namespace colscope::schema

#endif  // COLSCOPE_SCHEMA_DDL_PARSER_H_
