#ifndef COLSCOPE_SCHEMA_DDL_PARSER_H_
#define COLSCOPE_SCHEMA_DDL_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "schema/schema.h"

namespace colscope::schema {

/// Parses a SQL DDL script consisting of CREATE TABLE statements into a
/// Schema named `schema_name`. Supports the subset of DDL that schema
/// metadata extraction needs:
///   * column definitions: NAME TYPE[(precision)] with optional
///     PRIMARY KEY, REFERENCES t(c), NOT NULL, DEFAULT <literal>,
///     UNIQUE, AUTO_INCREMENT / IDENTITY / GENERATED ... clauses;
///   * table-level PRIMARY KEY (...), FOREIGN KEY (...) REFERENCES ...,
///     UNIQUE (...), and CONSTRAINT <name> <clause> forms;
///   * `--` line comments and `/* */` block comments;
///   * quoted identifiers: "x", `x`, [x];
///   * statements other than CREATE TABLE are skipped.
/// Per Section 2.3, constraints are normalized to PRIMARY KEY /
/// FOREIGN KEY only (FK reference targets are dropped).
Result<Schema> ParseDdl(std::string_view ddl, std::string schema_name);

}  // namespace colscope::schema

#endif  // COLSCOPE_SCHEMA_DDL_PARSER_H_
