#ifndef COLSCOPE_SCHEMA_DDL_WRITER_H_
#define COLSCOPE_SCHEMA_DDL_WRITER_H_

#include <string>

#include "schema/schema.h"

namespace colscope::schema {

/// Renders a schema back to a SQL DDL script (CREATE TABLE statements).
/// Inverse of ParseDdl for the metadata this library retains: column
/// order, vendor type names (raw_type, falling back to the normalized
/// family), and PRIMARY KEY / FOREIGN KEY markers (FOREIGN KEY columns
/// get a `REFERENCES UNSPECIFIED` placeholder because the target is not
/// retained — Section 2.3 drops it).
/// `ParseDdl(WriteDdl(s), s.name())` reproduces `s` element-for-element.
std::string WriteDdl(const Schema& schema);

/// Renders one table.
std::string WriteTableDdl(const Table& table);

}  // namespace colscope::schema

#endif  // COLSCOPE_SCHEMA_DDL_WRITER_H_
