#include "schema/ddl_parser.h"

#include <vector>

#include "common/strings.h"

namespace colscope::schema {

namespace {

/// Token kinds produced by the lexer.
enum class TokKind { kIdent, kNumber, kPunct, kEnd };

struct Token {
  TokKind kind;
  std::string text;  // Identifier text is unquoted but case-preserved.
};

/// Minimal SQL lexer: identifiers (possibly quoted), numbers, and
/// single-character punctuation. Comments and whitespace are skipped.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Token Next() {
    SkipSpaceAndComments();
    if (pos_ >= input_.size()) return {TokKind::kEnd, ""};
    const char c = input_[pos_];
    if (c == '"' || c == '`' || c == '[') {
      return LexQuoted(c == '[' ? ']' : c);
    }
    if (IsIdentStart(c)) return LexIdent();
    if (IsDigit(c) || (c == '-' && pos_ + 1 < input_.size() &&
                       IsDigit(input_[pos_ + 1]))) {
      return LexNumber();
    }
    ++pos_;
    return {TokKind::kPunct, std::string(1, c)};
  }

  /// OK unless the input contained something no token can represent
  /// (unterminated quote, oversized identifier). Sticky: once set, the
  /// whole parse is rejected regardless of the tokens around it.
  const Status& status() const { return status_; }

 private:
  static bool IsDigit(char c) { return c >= '0' && c <= '9'; }
  static bool IsIdentStart(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  }
  static bool IsIdentChar(char c) {
    return IsIdentStart(c) || IsDigit(c) || c == '$' || c == '#';
  }

  void SkipSpaceAndComments() {
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '-') {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < input_.size() &&
               !(input_[pos_] == '*' && input_[pos_ + 1] == '/')) {
          ++pos_;
        }
        pos_ = (pos_ + 2 <= input_.size()) ? pos_ + 2 : input_.size();
      } else {
        break;
      }
    }
  }

  Token LexQuoted(char closer) {
    ++pos_;  // Skip the opening quote.
    std::string text;
    while (pos_ < input_.size() && input_[pos_] != closer) {
      text.push_back(input_[pos_++]);
    }
    if (pos_ >= input_.size()) {
      Fail(StrFormat("unterminated quoted identifier (missing '%c')",
                     closer));
    } else {
      ++pos_;  // Skip the closing quote.
    }
    return CheckedIdent(std::move(text));
  }

  Token LexIdent() {
    std::string text;
    while (pos_ < input_.size() && IsIdentChar(input_[pos_])) {
      text.push_back(input_[pos_++]);
    }
    return CheckedIdent(std::move(text));
  }

  Token CheckedIdent(std::string text) {
    if (text.size() > kMaxDdlIdentifierBytes) {
      Fail(StrFormat("identifier of %zu bytes exceeds the %zu-byte cap",
                     text.size(), kMaxDdlIdentifierBytes));
    }
    return {TokKind::kIdent, std::move(text)};
  }

  void Fail(std::string why) {
    if (status_.ok()) status_ = Status::InvalidArgument(std::move(why));
  }

  Token LexNumber() {
    std::string text;
    if (input_[pos_] == '-') text.push_back(input_[pos_++]);
    while (pos_ < input_.size() &&
           (IsDigit(input_[pos_]) || input_[pos_] == '.')) {
      text.push_back(input_[pos_++]);
    }
    return {TokKind::kNumber, text};
  }

  std::string_view input_;
  size_t pos_ = 0;
  Status status_;
};

/// Token stream with lookahead and keyword matching (case-insensitive).
class TokenStream {
 public:
  explicit TokenStream(std::string_view input) {
    Lexer lexer(input);
    for (;;) {
      Token t = lexer.Next();
      const bool end = t.kind == TokKind::kEnd;
      tokens_.push_back(std::move(t));
      if (end) break;
    }
    status_ = lexer.status();
  }

  /// Non-OK when the underlying script failed to lex; see Lexer::status.
  const Status& status() const { return status_; }

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Consume() {
    Token t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  /// True (and consumes) if the next token is the given keyword.
  bool ConsumeKeyword(std::string_view keyword) {
    if (IsKeyword(Peek(), keyword)) {
      Consume();
      return true;
    }
    return false;
  }
  bool ConsumePunct(char punct) {
    if (Peek().kind == TokKind::kPunct && Peek().text[0] == punct) {
      Consume();
      return true;
    }
    return false;
  }

  static bool IsKeyword(const Token& t, std::string_view keyword) {
    return t.kind == TokKind::kIdent &&
           ToLowerAscii(t.text) == ToLowerAscii(keyword);
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Status status_;
};

/// Skips a balanced parenthesized group; assumes '(' already consumed.
void SkipBalancedParens(TokenStream& ts) {
  int depth = 1;
  while (!ts.AtEnd() && depth > 0) {
    if (ts.ConsumePunct('(')) {
      ++depth;
    } else if (ts.ConsumePunct(')')) {
      --depth;
    } else {
      ts.Consume();
    }
  }
}

/// Marks the named columns of `table` with `constraint` (PK wins over FK).
void MarkColumns(Table& table, const std::vector<std::string>& columns,
                 Constraint constraint) {
  for (Attribute& attr : table.attributes) {
    for (const std::string& col : columns) {
      if (ToLowerAscii(attr.name) == ToLowerAscii(col)) {
        if (attr.constraint == Constraint::kPrimaryKey) continue;
        attr.constraint = constraint;
      }
    }
  }
}

/// Parses "(col, col, ...)" into names; returns false on malformed input.
bool ParseColumnList(TokenStream& ts, std::vector<std::string>& out) {
  if (!ts.ConsumePunct('(')) return false;
  for (;;) {
    if (ts.Peek().kind != TokKind::kIdent) return false;
    out.push_back(ts.Consume().text);
    if (ts.ConsumePunct(',')) continue;
    return ts.ConsumePunct(')');
  }
}

/// Parses one table-level constraint clause starting at PRIMARY/FOREIGN/
/// UNIQUE/CHECK/CONSTRAINT. Returns false if the clause is malformed.
bool ParseTableConstraint(TokenStream& ts, Table& table) {
  if (ts.ConsumeKeyword("constraint")) {
    if (ts.Peek().kind == TokKind::kIdent &&
        !TokenStream::IsKeyword(ts.Peek(), "primary") &&
        !TokenStream::IsKeyword(ts.Peek(), "foreign") &&
        !TokenStream::IsKeyword(ts.Peek(), "unique") &&
        !TokenStream::IsKeyword(ts.Peek(), "check")) {
      ts.Consume();  // The constraint's name.
    }
  }
  if (ts.ConsumeKeyword("primary")) {
    if (!ts.ConsumeKeyword("key")) return false;
    std::vector<std::string> cols;
    if (!ParseColumnList(ts, cols)) return false;
    MarkColumns(table, cols, Constraint::kPrimaryKey);
    return true;
  }
  if (ts.ConsumeKeyword("foreign")) {
    if (!ts.ConsumeKeyword("key")) return false;
    std::vector<std::string> cols;
    if (!ParseColumnList(ts, cols)) return false;
    MarkColumns(table, cols, Constraint::kForeignKey);
    // Optional REFERENCES target (+ cascade clauses) — skip to the end of
    // this clause (next top-level ',' or ')').
    return true;
  }
  if (ts.ConsumeKeyword("unique") || ts.ConsumeKeyword("check") ||
      ts.ConsumeKeyword("index") || ts.ConsumeKeyword("key")) {
    return true;  // Trailing tokens are skipped by the caller.
  }
  return false;
}

/// Parses one column definition: NAME TYPE[(p[,s])] [modifiers...].
Status ParseColumn(TokenStream& ts, Table& table) {
  if (ts.Peek().kind != TokKind::kIdent) {
    return Status::InvalidArgument("expected column name in table " +
                                   table.name);
  }
  Attribute attr;
  attr.name = ts.Consume().text;
  attr.table_name = table.name;
  if (ts.Peek().kind != TokKind::kIdent) {
    return Status::InvalidArgument("expected type for column " + attr.name);
  }
  attr.raw_type = ts.Consume().text;
  // Multi-word types: DOUBLE PRECISION, TIMESTAMP WITH TIME ZONE (the
  // WITH... part is consumed by the modifier loop below).
  if (TokenStream::IsKeyword({TokKind::kIdent, attr.raw_type}, "double") &&
      ts.ConsumeKeyword("precision")) {
    // Keep raw type as written.
  }
  if (ts.ConsumePunct('(')) SkipBalancedParens(ts);
  attr.type = ParseDataType(attr.raw_type);

  // Modifiers until the next top-level ',' or ')'.
  while (!ts.AtEnd()) {
    const Token& t = ts.Peek();
    if (t.kind == TokKind::kPunct && (t.text[0] == ',' || t.text[0] == ')')) {
      break;
    }
    if (ts.ConsumeKeyword("primary")) {
      if (ts.ConsumeKeyword("key")) attr.constraint = Constraint::kPrimaryKey;
      continue;
    }
    if (ts.ConsumeKeyword("references")) {
      if (attr.constraint != Constraint::kPrimaryKey) {
        attr.constraint = Constraint::kForeignKey;
      }
      if (ts.Peek().kind == TokKind::kIdent) ts.Consume();  // Target table.
      if (ts.ConsumePunct('(')) SkipBalancedParens(ts);
      continue;
    }
    if (ts.ConsumePunct('(')) {
      SkipBalancedParens(ts);
      continue;
    }
    ts.Consume();  // NOT NULL / DEFAULT x / UNIQUE / AUTO_INCREMENT / ...
  }
  table.attributes.push_back(std::move(attr));
  return Status::Ok();
}

/// Skips forward past the current statement's terminating ';'.
void SkipStatement(TokenStream& ts) {
  while (!ts.AtEnd()) {
    if (ts.ConsumePunct(';')) return;
    if (ts.ConsumePunct('(')) {
      SkipBalancedParens(ts);
      continue;
    }
    ts.Consume();
  }
}

}  // namespace

Result<Schema> ParseDdl(std::string_view ddl, std::string schema_name) {
  // Input-shape guards first: DDL arrives from files and peers, so an
  // adversarial or truncated script must become a clean error before
  // the lexer ever walks it.
  if (ddl.size() > kMaxDdlInputBytes) {
    return Status::InvalidArgument(
        StrFormat("DDL script of %zu bytes exceeds the %zu-byte cap",
                  ddl.size(), kMaxDdlInputBytes));
  }
  if (ddl.find('\0') != std::string_view::npos) {
    return Status::InvalidArgument(StrFormat(
        "DDL contains an embedded NUL byte at offset %zu", ddl.find('\0')));
  }
  Schema out(std::move(schema_name));
  TokenStream ts(ddl);
  if (!ts.status().ok()) return ts.status();

  while (!ts.AtEnd()) {
    if (!ts.ConsumeKeyword("create")) {
      SkipStatement(ts);
      continue;
    }
    if (!ts.ConsumeKeyword("table")) {
      SkipStatement(ts);  // CREATE INDEX / VIEW / ... — skipped.
      continue;
    }
    if (ts.ConsumeKeyword("if")) {  // IF NOT EXISTS
      ts.ConsumeKeyword("not");
      ts.ConsumeKeyword("exists");
    }
    if (ts.Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected table name after CREATE TABLE");
    }
    Table table;
    table.name = ts.Consume().text;
    // Qualified name schema.table: keep the last component.
    while (ts.ConsumePunct('.')) {
      if (ts.Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("malformed qualified table name");
      }
      table.name = ts.Consume().text;
    }
    if (!ts.ConsumePunct('(')) {
      return Status::InvalidArgument("expected '(' after table name " +
                                     table.name);
    }

    // Column and table-constraint entries.
    for (;;) {
      const Token& next = ts.Peek();
      if (TokenStream::IsKeyword(next, "primary") ||
          TokenStream::IsKeyword(next, "foreign") ||
          TokenStream::IsKeyword(next, "unique") ||
          TokenStream::IsKeyword(next, "check") ||
          TokenStream::IsKeyword(next, "constraint") ||
          TokenStream::IsKeyword(next, "index") ||
          (TokenStream::IsKeyword(next, "key") &&
           ts.Peek(1).kind == TokKind::kPunct)) {
        if (!ParseTableConstraint(ts, table)) {
          return Status::InvalidArgument("malformed constraint in table " +
                                         table.name);
        }
        // Skip clause remainder (REFERENCES targets, cascade rules, ...).
        while (!ts.AtEnd()) {
          const Token& t = ts.Peek();
          if (t.kind == TokKind::kPunct &&
              (t.text[0] == ',' || t.text[0] == ')')) {
            break;
          }
          if (ts.ConsumePunct('(')) {
            SkipBalancedParens(ts);
            continue;
          }
          ts.Consume();
        }
      } else {
        if (table.attributes.size() >= kMaxDdlColumnsPerTable) {
          return Status::InvalidArgument(
              StrFormat("table %s exceeds the %zu-column cap",
                        table.name.c_str(), kMaxDdlColumnsPerTable));
        }
        COLSCOPE_RETURN_IF_ERROR(ParseColumn(ts, table));
      }
      if (ts.ConsumePunct(',')) continue;
      if (ts.ConsumePunct(')')) break;
      return Status::InvalidArgument("expected ',' or ')' in table " +
                                     table.name);
    }
    SkipStatement(ts);  // Trailing table options + ';'.
    COLSCOPE_RETURN_IF_ERROR(out.AddTable(std::move(table)));
  }
  return out;
}

}  // namespace colscope::schema
