#ifndef COLSCOPE_SCHEMA_SCHEMA_H_
#define COLSCOPE_SCHEMA_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace colscope::schema {

/// Normalized SQL data-type family. Vendor type names (VARCHAR2, NUMBER,
/// NVARCHAR, ...) are kept verbatim in Attribute::raw_type; this enum is
/// the cross-vendor normalization used by tooling.
enum class DataType {
  kUnknown = 0,
  kString,
  kInteger,
  kDecimal,
  kDate,
  kDateTime,
  kBoolean,
  kBlob,
};

/// Best-effort mapping from a vendor type name to a DataType family.
DataType ParseDataType(std::string_view raw_type);

/// Printable name of a DataType family.
const char* DataTypeToString(DataType type);

/// Column constraint retained for serialization. Per Section 2.3 the
/// paper restricts constraints to PRIMARY KEY and FOREIGN KEY (without
/// the reference target).
enum class Constraint {
  kNone = 0,
  kPrimaryKey,
  kForeignKey,
};

const char* ConstraintToString(Constraint c);

/// Attribute metadata a_{k_j} = (an, tn, d, c), optionally carrying a
/// few instance value samples. Samples are empty in the metadata-only
/// setting the paper targets (privacy-preserving organizations / data
/// markets, Section 2.2) but can be attached where data access exists
/// (Section 2.3 discusses the trade-off).
struct Attribute {
  std::string name;        ///< Attribute name an_{k_j}.
  std::string table_name;  ///< Owning table name tn_{k_i}.
  std::string raw_type;    ///< Vendor type as written in the DDL.
  DataType type = DataType::kUnknown;
  Constraint constraint = Constraint::kNone;
  std::vector<std::string> samples;  ///< Optional instance samples.
};

/// Table t_{k_i}: a name plus an ordered attribute list.
struct Table {
  std::string name;
  std::vector<Attribute> attributes;
};

/// Relational schema S_k: a named, ordered set of tables.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Table>& tables() const { return tables_; }
  std::vector<Table>& mutable_tables() { return tables_; }

  /// Appends `table`; fails if a table of that name already exists.
  Status AddTable(Table table);

  /// Table lookup by exact name; nullptr when absent.
  const Table* FindTable(std::string_view table_name) const;

  /// Attribute lookup by table + attribute name; nullptr when absent.
  const Attribute* FindAttribute(std::string_view table_name,
                                 std::string_view attribute_name) const;

  /// Number of tables / attributes / schema elements (tables + attrs).
  size_t num_tables() const { return tables_.size(); }
  size_t num_attributes() const;
  size_t num_elements() const { return num_tables() + num_attributes(); }

 private:
  std::string name_;
  std::vector<Table> tables_;
};

/// Identifies one element (table or attribute) inside one schema of a
/// multi-source set: (schema index, table index, attribute index or -1
/// for the table itself). Ordering is lexicographic so ElementRef can key
/// ordered containers.
struct ElementRef {
  int schema = -1;
  int table = -1;
  int attribute = -1;  ///< -1 when the element is the table itself.

  bool is_table() const { return attribute < 0; }

  friend bool operator==(const ElementRef& a, const ElementRef& b) {
    return a.schema == b.schema && a.table == b.table &&
           a.attribute == b.attribute;
  }
  friend bool operator<(const ElementRef& a, const ElementRef& b) {
    if (a.schema != b.schema) return a.schema < b.schema;
    if (a.table != b.table) return a.table < b.table;
    return a.attribute < b.attribute;
  }
};

/// Makes a table reference / an attribute reference.
inline ElementRef TableRef(int schema, int table) {
  return ElementRef{schema, table, -1};
}
inline ElementRef AttributeRef(int schema, int table, int attribute) {
  return ElementRef{schema, table, attribute};
}

}  // namespace colscope::schema

#endif  // COLSCOPE_SCHEMA_SCHEMA_H_
